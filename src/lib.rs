//! # thymesim
//!
//! A characterization framework for **hardware memory disaggregation under
//! delay and contention** — a from-scratch Rust reproduction of the IPPS'22
//! paper of the same name (Patke et al.), which studied the open-source
//! ThymesisFlow POWER9/OpenCAPI prototype with an FPGA delay-injection
//! module.
//!
//! The hardware testbed is replaced by a deterministic discrete-event
//! simulation of the whole stack (cache hierarchy, AXI4-Stream NIC
//! pipelines, delay gate, 100 Gb/s link, lender memory bus, control plane),
//! and the paper's workloads — STREAM, a Redis-like KV store under a
//! memtier-style client, and Graph500 BFS/SSSP — run *for real* on top of
//! it: only time is simulated, the data movement and results are genuine.
//!
//! ## Quickstart
//!
//! ```
//! use thymesim::prelude::*;
//!
//! // Build a two-node testbed (borrower + lender) with a delay gate at
//! // PERIOD = 50 FPGA cycles, and run STREAM out of disaggregated memory.
//! let config = TestbedConfig::tiny().with_period(50);
//! let mut stream = StreamConfig::tiny();
//! stream.elements = 16_384; // doc-test scale
//! let report = run_stream_on_testbed(&config, &stream);
//! assert!(report.triad.bandwidth_gib_s > 0.0);
//! assert!(report.miss_latency_mean > thymesim::sim::Dur::us(10));
//! ```
//!
//! See the `examples/` directory for full scenarios and `thymesim-bench`'s
//! `repro` binary for regenerating every table and figure of the paper
//! (plus the beyond-rack extension experiments: switched-fabric
//! congestion, memory pooling, rack topologies, page-migration QoS,
//! calibration sensitivity, and contention-aware placement).
//!
//! Reliability tooling: link outages with repair, checksum-detected wire
//! corruption with retransmission budgets, machine-check monitoring, and
//! piecewise / distribution-driven delay schedules. Every run is exactly
//! reproducible from its configuration and seeds.

pub use thymesim_axi as axi;
pub use thymesim_core as core;
pub use thymesim_delay as delay;
pub use thymesim_fabric as fabric;
pub use thymesim_mem as mem;
pub use thymesim_net as net;
pub use thymesim_sim as sim;
pub use thymesim_workloads as workloads;

/// The most common entry points, re-exported flat.
pub mod prelude {
    pub use thymesim_core::prelude::*;
}
