//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations, checked through the public facade at small scale.

use proptest::prelude::*;
use thymesim::prelude::*;
use thymesim::sim::Time;

fn stream_cfg(elements: u64) -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = elements;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// More injected delay never speeds STREAM up, for arbitrary PERIOD
    /// pairs, and results stay correct.
    #[test]
    fn prop_latency_monotone_in_period(p1 in 1u64..150, dp in 1u64..150) {
        let p2 = p1 + dp;
        let cfg = stream_cfg(4096);
        let a = run_stream_on_testbed(&TestbedConfig::tiny().with_period(p1), &cfg);
        let b = run_stream_on_testbed(&TestbedConfig::tiny().with_period(p2), &cfg);
        prop_assert!(a.verified && b.verified);
        prop_assert!(
            b.miss_latency_mean >= a.miss_latency_mean,
            "PERIOD {} -> {} lowered latency {} -> {}",
            p1, p2, a.miss_latency_mean, b.miss_latency_mean
        );
        prop_assert!(b.elapsed >= a.elapsed);
    }

    /// STREAM computes correct results for arbitrary sizes and scalars,
    /// remote or local.
    #[test]
    fn prop_stream_correct_for_any_shape(
        elements in 64u64..5000,
        ntimes in 1u32..3,
        scalar in 0.5f64..4.0,
        remote in any::<bool>(),
    ) {
        let mut cfg = stream_cfg(elements);
        cfg.ntimes = ntimes;
        cfg.scalar = scalar;
        let mut tb = Testbed::build(&TestbedConfig::tiny()).unwrap();
        let placement = if remote { Placement::Remote } else { Placement::Local };
        let report = run_stream(&mut tb, &cfg, placement);
        prop_assert!(report.verified, "wrong data for {elements} x{ntimes} s={scalar}");
    }

    /// The MCBN division law: per-instance bandwidth ≈ solo/N for any N.
    /// (Arrays must thrash the LLC even solo, or the solo baseline runs
    /// out of cache instead of the network.)
    #[test]
    fn prop_mcbn_division(n in 2usize..6) {
        let cfg = stream_cfg(16_384);
        let points = mcbn(&TestbedConfig::tiny(), &cfg, &[1, n]);
        let expected = points[0].per_instance_gib_s / n as f64;
        let got = points[1].per_instance_gib_s;
        let err = (got - expected).abs() / expected;
        prop_assert!(err < 0.35, "N={n}: got {got}, expected {expected}");
    }

    /// Fetch completions through one engine are FIFO (the wire and gate
    /// preserve order) for arbitrary issue gaps and PERIOD.
    #[test]
    fn prop_engine_completions_are_fifo(
        period in 1u64..500,
        gaps in proptest::collection::vec(0u64..2_000, 1..80),
    ) {
        use thymesim::mem::RemoteBackend;
        use thymesim::sim::{Dur, Time};
        let cfg = TestbedConfig::tiny().with_period(period);
        let mut tb = Testbed::build(&cfg).unwrap();
        let base = tb.remote_arena.alloc(1 << 20, 128);
        let engine = tb.borrower.remote_mut();
        let mut t = tb.attach.ready_at;
        let mut prev_done = Time::ZERO;
        for (i, g) in gaps.iter().enumerate() {
            t += Dur::ns(*g);
            let done = engine.fetch_line(t, base.offset((i as u64 % 4096) * 128));
            prop_assert!(done >= prev_done, "completions reordered");
            prop_assert!(done > t, "completion before issue");
            // Never faster than the un-gated physical path.
            prop_assert!(done - t >= Dur::ns(800), "impossibly fast fetch");
            prev_done = done;
        }
    }

    /// Attach either succeeds before the discovery budget or fails with a
    /// timeout — never hangs, never reports success late.
    #[test]
    fn prop_attach_respects_budget(period in 1u64..20_000) {
        let cfg = TestbedConfig::tiny().with_period(period);
        match Testbed::build(&cfg) {
            Ok(tb) => {
                let budget = cfg.control.discovery_timeout;
                prop_assert!(tb.attach.discovery_time <= budget);
                prop_assert!(tb.attach.ready_at > Time::ZERO);
            }
            Err(thymesim::fabric::AttachError::DiscoveryTimeout { elapsed, budget }) => {
                prop_assert!(elapsed > budget);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}
