//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations, checked through the public facade at small scale.

use proptest::prelude::*;
use thymesim::prelude::*;
use thymesim::sim::Time;
use thymesim_telemetry::attribution::READ_ANATOMY;
use thymesim_telemetry::{PointTrace, Recorder, SweepAttribution, SweepUtilization, TraceRecorder};

fn stream_cfg(elements: u64) -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = elements;
    s
}

/// Stage-name table for synthetic attribution points: the full read
/// anatomy plus two non-anatomy stages.
const STAGE_NAMES: [&str; 8] = [
    "credit.wait",
    "fabric.egress",
    "fabric.gate_wait",
    "fabric.wire_out",
    "fabric.lender_bus",
    "fabric.return",
    "mem.local_miss",
    "link.queue_wait",
];

/// Build one synthetic traced point from encoded observations, in the
/// order given. Each `u64` packs one observation (the vendored proptest
/// has no tuple strategies): stage index in the low bits, duration in
/// the rest.
fn synth_point(index: usize, obs: &[u64]) -> PointTrace {
    let mut r = TraceRecorder::new(index, 16);
    for v in obs {
        let stage = (v % STAGE_NAMES.len() as u64) as usize;
        let ns = v / STAGE_NAMES.len() as u64 + 1;
        r.latency(STAGE_NAMES[stage], thymesim::sim::Dur::ns(ns));
    }
    r.finish()
}

/// Inverse of `synth_point`'s decoding: one observation of `ns` ns on
/// `STAGE_NAMES[stage]`.
fn enc(stage: u64, ns: u64) -> u64 {
    (ns - 1) * STAGE_NAMES.len() as u64 + stage
}

/// Phase-name table for phased synthetic points. Slot 0 of the phase
/// field means "between markers" (the observation lands in `unphased`).
const PHASE_NAMES: [&str; 3] = ["copy", "bfs.level", "kv.steady"];

/// Like `synth_point`, but each packed observation also selects the
/// workload phase it lands in: after the stage bits, the next field
/// picks a phase (0 = no marker active), the rest is the duration.
/// Each observation carries its own phase, so reordering observations
/// preserves the (stage, phase, duration) multiset.
fn synth_phased_point(index: usize, obs: &[u64]) -> PointTrace {
    let mut r = TraceRecorder::new(index, 16);
    let nstages = STAGE_NAMES.len() as u64;
    let nphases = PHASE_NAMES.len() as u64 + 1;
    for v in obs {
        let stage = (v % nstages) as usize;
        let rest = v / nstages;
        let phase = (rest % nphases) as usize;
        let ns = rest / nphases + 1;
        if phase == 0 {
            r.phase_end();
        } else {
            let name = PHASE_NAMES[phase - 1];
            // Give the indexed-phase family (BFS-level style) a level
            // number so sorting by (name, index) is exercised too.
            let idx = (name == "bfs.level").then_some(ns % 3);
            r.phase_begin(name, idx);
        }
        r.latency(STAGE_NAMES[stage], thymesim::sim::Dur::ns(ns));
    }
    r.phase_end();
    r.finish()
}

/// Counter window width for synthetic utilization points: 1 ns, so
/// picosecond-scale samples span many windows.
const CW: u64 = 1_000;

/// One synthetic counter track per windowed kind.
const COUNTER_NAMES: [&str; 3] = ["link.busy", "queue.depth", "miss.rate"];

/// Decode one packed counter observation and emit it: the low field
/// selects the sample kind, the next the start instant, the rest the
/// interval length (busy/level) — same packed-u64 style as `synth_point`.
fn counter_sample(r: &mut TraceRecorder, v: u64) {
    let kind = v % 3;
    let rest = v / 3;
    let start = rest % 10_000;
    let len = rest / 10_000 % 3_000;
    match kind {
        0 => r.counter_busy(COUNTER_NAMES[0], Time(start), Time(start + len)),
        1 => r.counter_level(COUNTER_NAMES[1], Time(start), Time(start + len), v % 4 + 1),
        _ => r.counter_ratio(COUNTER_NAMES[2], Time(start), v % 2, 1),
    }
}

/// Re-derive the exact integer accumulators `counter_sample` implies:
/// (busy occupied-ps, level weighted-ps, ratio numerator, ratio
/// denominator) summed over the observations.
fn counter_expect(obs: &[u64]) -> (u128, u128, u128, u128) {
    let (mut busy, mut level, mut num, mut den) = (0u128, 0u128, 0u128, 0u128);
    for &v in obs {
        let len = (v / 3 / 10_000 % 3_000) as u128;
        match v % 3 {
            0 => busy += len,
            1 => level += len * (v % 4 + 1) as u128,
            _ => {
                num += (v % 2) as u128;
                den += 1;
            }
        }
    }
    (busy, level, num, den)
}

/// Build one synthetic traced point carrying windowed counter tracks.
fn synth_counter_point(index: usize, window_ps: u64, obs: &[u64]) -> PointTrace {
    let mut r = TraceRecorder::with_window(index, 16, window_ps);
    r.counter_bound(COUNTER_NAMES[1], 4);
    for &v in obs {
        counter_sample(&mut r, v);
    }
    r.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// More injected delay never speeds STREAM up, for arbitrary PERIOD
    /// pairs, and results stay correct.
    #[test]
    fn prop_latency_monotone_in_period(p1 in 1u64..150, dp in 1u64..150) {
        let p2 = p1 + dp;
        let cfg = stream_cfg(4096);
        let a = run_stream_on_testbed(&TestbedConfig::tiny().with_period(p1), &cfg);
        let b = run_stream_on_testbed(&TestbedConfig::tiny().with_period(p2), &cfg);
        prop_assert!(a.verified && b.verified);
        prop_assert!(
            b.miss_latency_mean >= a.miss_latency_mean,
            "PERIOD {} -> {} lowered latency {} -> {}",
            p1, p2, a.miss_latency_mean, b.miss_latency_mean
        );
        prop_assert!(b.elapsed >= a.elapsed);
    }

    /// STREAM computes correct results for arbitrary sizes and scalars,
    /// remote or local.
    #[test]
    fn prop_stream_correct_for_any_shape(
        elements in 64u64..5000,
        ntimes in 1u32..3,
        scalar in 0.5f64..4.0,
        remote in any::<bool>(),
    ) {
        let mut cfg = stream_cfg(elements);
        cfg.ntimes = ntimes;
        cfg.scalar = scalar;
        let mut tb = Testbed::build(&TestbedConfig::tiny()).unwrap();
        let placement = if remote { Placement::Remote } else { Placement::Local };
        let report = run_stream(&mut tb, &cfg, placement);
        prop_assert!(report.verified, "wrong data for {elements} x{ntimes} s={scalar}");
    }

    /// The MCBN division law: per-instance bandwidth ≈ solo/N for any N.
    /// (Arrays must thrash the LLC even solo, or the solo baseline runs
    /// out of cache instead of the network.)
    #[test]
    fn prop_mcbn_division(n in 2usize..6) {
        let cfg = stream_cfg(16_384);
        let points = mcbn(&TestbedConfig::tiny(), &cfg, &[1, n]);
        let expected = points[0].per_instance_gib_s / n as f64;
        let got = points[1].per_instance_gib_s;
        let err = (got - expected).abs() / expected;
        prop_assert!(err < 0.35, "N={n}: got {got}, expected {expected}");
    }

    /// Fetch completions through one engine are FIFO (the wire and gate
    /// preserve order) for arbitrary issue gaps and PERIOD.
    #[test]
    fn prop_engine_completions_are_fifo(
        period in 1u64..500,
        gaps in proptest::collection::vec(0u64..2_000, 1..80),
    ) {
        use thymesim::mem::RemoteBackend;
        use thymesim::sim::{Dur, Time};
        let cfg = TestbedConfig::tiny().with_period(period);
        let mut tb = Testbed::build(&cfg).unwrap();
        let base = tb.remote_arena.alloc(1 << 20, 128);
        let engine = tb.borrower.remote_mut();
        let mut t = tb.attach.ready_at;
        let mut prev_done = Time::ZERO;
        for (i, g) in gaps.iter().enumerate() {
            t += Dur::ns(*g);
            let done = engine.fetch_line(t, base.offset((i as u64 % 4096) * 128));
            prop_assert!(done >= prev_done, "completions reordered");
            prop_assert!(done > t, "completion before issue");
            // Never faster than the un-gated physical path.
            prop_assert!(done - t >= Dur::ns(800), "impossibly fast fetch");
            prev_done = done;
        }
    }

    /// Attribution invariant: for arbitrary per-stage observations, the
    /// anatomy stage totals partition the attributed read exactly and
    /// the shares sum to 1 within floating-point rounding.
    #[test]
    fn prop_attribution_shares_partition_the_read(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..8_000_000, 1..24),
            1..6,
        ),
    ) {
        let traces: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .map(|(i, obs)| synth_point(i, obs))
            .collect();
        let att = SweepAttribution::fold("prop", traces.len(), &traces, &[]);
        for p in att.per_point.iter().chain(std::iter::once(&att.merged)) {
            let total: u64 = p.anatomy.iter().map(|s| s.total_ps).sum();
            prop_assert_eq!(total, p.read_total_ps, "anatomy must partition the read");
            if p.read_total_ps > 0 {
                let share_sum: f64 = p.anatomy.iter().filter_map(|s| s.share).sum();
                prop_assert!(
                    (share_sum - 1.0).abs() < 1e-9,
                    "shares sum to {} at point {:?}", share_sum, p.index
                );
            }
            for s in p.anatomy.iter().chain(&p.other) {
                if let Some(share) = s.share {
                    prop_assert!((0.0..=1.0).contains(&share));
                }
                if s.count > 0 {
                    let expect = s.total_ps as f64 / s.count as f64;
                    prop_assert!((s.mean_ps - expect).abs() < 1e-6 * (1.0 + expect));
                }
            }
        }
    }

    /// Attribution folding is order-independent: the same points folded
    /// in reverse (both point order and within-point observation order)
    /// produce identical reports — histogram merge is commutative and
    /// the fold sorts its outputs.
    #[test]
    fn prop_attribution_fold_is_order_independent(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..8_000_000, 1..24),
            2..6,
        ),
    ) {
        let forward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .map(|(i, obs)| synth_point(i, obs))
            .collect();
        let backward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .rev()
            .map(|(i, obs)| {
                let rev: Vec<u64> = obs.iter().rev().copied().collect();
                synth_point(i, &rev)
            })
            .collect();
        let a = SweepAttribution::fold("prop", points.len(), &forward, &[]);
        let b = SweepAttribution::fold("prop", points.len(), &backward, &[]);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.collapsed(), b.collapsed());
        prop_assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }

    /// Per-phase attribution invariant: for arbitrary phase-annotated
    /// observations, each stage's phase sub-slices partition the stage
    /// integer-exactly (counts and picosecond totals), and the per-point
    /// phase index reproduces from the anatomy sub-totals.
    #[test]
    fn prop_phase_slices_partition_each_stage(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..8_000_000, 1..24),
            1..6,
        ),
    ) {
        let traces: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .map(|(i, obs)| synth_phased_point(i, obs))
            .collect();
        let att = SweepAttribution::fold("prop", traces.len(), &traces, &[]);
        for p in att.per_point.iter().chain(std::iter::once(&att.merged)) {
            for s in p.anatomy.iter().chain(&p.other) {
                prop_assert!(!s.phases.is_empty(), "recorded stage {} has no phase buckets", &s.stage);
                let count: u64 = s.phases.iter().map(|ph| ph.count).sum();
                let total: u64 = s.phases.iter().map(|ph| ph.total_ps).sum();
                prop_assert_eq!(count, s.count, "phase counts must partition stage {}", &s.stage);
                prop_assert_eq!(total, s.total_ps, "phase totals must partition stage {}", &s.stage);
            }
            let indexed: u64 = p.phases.iter().map(|pt| pt.read_total_ps).sum();
            let from_slices: u64 = p
                .anatomy
                .iter()
                .flat_map(|s| s.phases.iter().map(|ph| ph.total_ps))
                .sum();
            prop_assert_eq!(indexed, from_slices, "phase index must match anatomy sub-totals");
        }
        // The rendered collapsed stacks pass the structural validator,
        // phase-frame rules included.
        let stats = thymesim_telemetry::attribution::check_collapsed(&att.collapsed())
            .map_err(TestCaseError::fail)?;
        prop_assert!(stats.phases >= stats.points);
    }

    /// Per-phase folding is order-independent: reversing both point
    /// order and within-point observation order produces identical
    /// reports, phase sub-slices and collapsed phase frames included.
    #[test]
    fn prop_phased_fold_is_order_independent(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..8_000_000, 1..24),
            2..6,
        ),
    ) {
        let forward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .map(|(i, obs)| synth_phased_point(i, obs))
            .collect();
        let backward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .rev()
            .map(|(i, obs)| {
                let rev: Vec<u64> = obs.iter().rev().copied().collect();
                synth_phased_point(i, &rev)
            })
            .collect();
        let a = SweepAttribution::fold("prop", points.len(), &forward, &[]);
        let b = SweepAttribution::fold("prop", points.len(), &backward, &[]);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.collapsed(), b.collapsed());
        prop_assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }

    /// Attach either succeeds before the discovery budget or fails with a
    /// timeout — never hangs, never reports success late.
    #[test]
    fn prop_attach_respects_budget(period in 1u64..20_000) {
        let cfg = TestbedConfig::tiny().with_period(period);
        match Testbed::build(&cfg) {
            Ok(tb) => {
                let budget = cfg.control.discovery_timeout;
                prop_assert!(tb.attach.discovery_time <= budget);
                prop_assert!(tb.attach.ready_at > Time::ZERO);
            }
            Err(thymesim::fabric::AttachError::DiscoveryTimeout { elapsed, budget }) => {
                prop_assert!(elapsed > budget);
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// The windowed counter fold is order-independent under shuffled
    /// sample arrival: reversing both point order and within-point
    /// emission order produces an identical `SweepUtilization` and
    /// byte-identical serialized JSON — each window is a commutative
    /// integer sum and the fold sorts points and counter names.
    #[test]
    fn prop_counter_fold_is_order_independent(
        points in proptest::collection::vec(
            proptest::collection::vec(0u64..90_000_000, 1..24),
            2..6,
        ),
    ) {
        let forward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .map(|(i, obs)| synth_counter_point(i, CW, obs))
            .collect();
        let backward: Vec<PointTrace> = points
            .iter()
            .enumerate()
            .rev()
            .map(|(i, obs)| {
                let rev: Vec<u64> = obs.iter().rev().copied().collect();
                synth_counter_point(i, CW, &rev)
            })
            .collect();
        let a = SweepUtilization::fold("prop", points.len(), &forward, CW, 0.9);
        let b = SweepUtilization::fold("prop", points.len(), &backward, CW, 0.9);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }

    /// Time-weighted means are exact under window merging: the `num`
    /// accumulator (occupied/weighted picoseconds, or ratio events) is a
    /// pure integer sum over the samples, so folding the same samples at
    /// a k× coarser window leaves every accumulator bit-identical to the
    /// value re-derived directly from the decoded samples, and the
    /// reported mean is exactly `num / den` at either width.
    #[test]
    fn prop_counter_means_exact_under_window_merging(
        obs in proptest::collection::vec(0u64..90_000_000, 1..32),
        k in 2u64..8,
    ) {
        let (busy, level, num, den) = counter_expect(&obs);
        for w in [CW, CW * k] {
            let u = SweepUtilization::fold(
                "prop", 1, &[synth_counter_point(0, w, &obs)], w, 0.9,
            );
            let p = &u.per_point[0];
            // The horizon is whole windows covering the last sample.
            prop_assert_eq!(p.horizon_ps % w, 0);
            for c in &p.counters {
                match c.name.as_str() {
                    "link.busy" => {
                        prop_assert_eq!(c.num, busy);
                        prop_assert_eq!(c.den, p.horizon_ps as u128);
                    }
                    "queue.depth" => prop_assert_eq!(c.num, level),
                    "miss.rate" => prop_assert_eq!((c.num, c.den), (num, den)),
                    other => prop_assert!(false, "unexpected counter {other}"),
                }
                let expect = if c.den == 0 { 0.0 } else { c.num as f64 / c.den as f64 };
                prop_assert_eq!(c.mean, expect, "mean must derive from the integers");
                prop_assert!(c.covered_ps <= p.horizon_ps);
            }
        }
    }

    /// A zero-traffic point — components register their counters but
    /// nothing ever occupies them — folds to all-zero busy fractions:
    /// zero mean, zero peak, no saturated time, anywhere in the report.
    #[test]
    fn prop_zero_traffic_folds_to_all_zero_busy(
        instants in proptest::collection::vec(0u64..90_000_000, 1..16),
    ) {
        let mut r = TraceRecorder::with_window(0, 16, CW);
        for &t in &instants {
            r.counter_busy("link.busy", Time(t), Time(t)); // idle link
            r.counter_ratio("miss.rate", Time(t), 0, 1); // access, no miss
        }
        let u = SweepUtilization::fold("prop", 1, &[r.finish()], CW, 0.9);
        prop_assert_eq!(u.per_point[0].counters.len(), 2);
        for c in u.per_point[0].counters.iter().chain(&u.merged) {
            prop_assert_eq!(c.num, 0);
            prop_assert_eq!(c.mean, 0.0);
            prop_assert_eq!(c.peak, 0.0);
            prop_assert_eq!(c.saturated_ps, 0);
            prop_assert_eq!(c.saturated_frac, 0.0);
            prop_assert_eq!(c.longest_saturated_ps, 0);
        }
    }
}

/// Degenerate sweeps must not panic: an empty grid, a one-point grid,
/// and a point that recorded nothing all fold to well-formed (if empty)
/// reports.
#[test]
fn attribution_degenerate_sweeps_do_not_panic() {
    let empty = SweepAttribution::fold("deg", 0, &[], &[]);
    assert!(empty.per_point.is_empty());
    assert_eq!(empty.merged.read_total_ps, 0);
    assert_eq!(empty.collapsed(), "");

    let one = SweepAttribution::fold("deg", 1, &[synth_point(0, &[enc(2, 500)])], &[]);
    assert_eq!(one.per_point.len(), 1);
    assert_eq!(one.merged.anatomy.len(), 1);
    assert_eq!(one.merged.anatomy[0].stage, READ_ANATOMY[2].0);
    assert_eq!(one.merged.anatomy[0].share, Some(1.0));

    // A recorder that observed nothing: no stages, zero totals, and the
    // collapsed report stays empty rather than emitting zero-count junk.
    let silent = SweepAttribution::fold("deg", 1, &[synth_point(0, &[])], &[]);
    assert_eq!(silent.per_point.len(), 1);
    assert_eq!(silent.per_point[0].read_total_ps, 0);
    assert!(silent.per_point[0].anatomy.is_empty());
    assert_eq!(silent.collapsed(), "");
}

/// A trace that never saw a phase marker folds every stage into a
/// single `unphased` sub-slice carrying the full stage total, and its
/// collapsed output is byte-identical to a phase-unaware trace (one
/// with no per-phase buckets at all) — today's single-frame shape.
#[test]
fn unmarked_trace_folds_to_single_unphased_frame() {
    let t = synth_point(0, &[enc(2, 500), enc(2, 700), enc(6, 40)]);
    let att = SweepAttribution::fold("deg", 1, std::slice::from_ref(&t), &[]);
    let p = &att.per_point[0];
    for s in p.anatomy.iter().chain(&p.other) {
        assert_eq!(s.phases.len(), 1, "stage {} not single-phase", s.stage);
        assert_eq!(s.phases[0].label(), "unphased");
        assert_eq!(s.phases[0].count, s.count);
        assert_eq!(s.phases[0].total_ps, s.total_ps);
    }
    assert!(att.collapsed().contains(";unphased;read;gate_wait "));

    let mut stripped = t;
    stripped.phased.clear();
    let bare = SweepAttribution::fold("deg", 1, &[stripped], &[]);
    assert_eq!(att.collapsed(), bare.collapsed());
}
