//! Reproducibility guarantees: identical configurations produce bitwise
//! identical results, regardless of host threading, and distinct seeds
//! genuinely diverge.

use thymesim::prelude::*;
use thymesim::workloads::graph500::{self, Graph500Config};
use thymesim::workloads::kv::KvConfig;

fn stream_cfg() -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = 8192;
    s
}

#[test]
fn stream_results_are_bitwise_stable() {
    let cfg = TestbedConfig::tiny().with_period(50);
    let a = run_stream_on_testbed(&cfg, &stream_cfg());
    let b = run_stream_on_testbed(&cfg, &stream_cfg());
    assert_eq!(a.miss_latency_mean, b.miss_latency_mean);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.copy.best_time, b.copy.best_time);
    assert_eq!(
        a.triad.bandwidth_gib_s.to_bits(),
        b.triad.bandwidth_gib_s.to_bits()
    );
}

#[test]
fn sweeps_are_stable_under_parallel_execution() {
    // The sweep harness runs points on a thread pool; re-running (with
    // whatever interleaving the OS scheduler chooses) must give
    // identical series.
    let base = TestbedConfig::tiny();
    let s1 = stream_delay_sweep(&base, &stream_cfg(), &[1, 20, 50]);
    let s2 = stream_delay_sweep(&base, &stream_cfg(), &[1, 20, 50]);
    for (a, b) in s1.iter().zip(&s2) {
        assert_eq!(a.period, b.period);
        assert_eq!(a.latency_us.to_bits(), b.latency_us.to_bits());
        assert_eq!(a.bdp_kib.to_bits(), b.bdp_kib.to_bits());
    }
}

#[test]
fn kv_seed_changes_the_request_mix_only() {
    let mut tb1 = Testbed::build(&TestbedConfig::tiny()).unwrap();
    let mut cfg = KvConfig::tiny();
    let r1 = run_kv(&mut tb1, &cfg, Placement::Remote);
    cfg.seed ^= 0xDEAD;
    let mut tb2 = Testbed::build(&TestbedConfig::tiny()).unwrap();
    let r2 = run_kv(&mut tb2, &cfg, Placement::Remote);
    assert_eq!(r1.requests, r2.requests, "request count is config-driven");
    assert_ne!(
        (r1.gets, r1.sets),
        (r2.gets, r2.sets),
        "different seeds should draw a different GET/SET mix"
    );
    assert!(r1.data_ok && r2.data_ok);
}

#[test]
fn graph_generation_is_seed_deterministic() {
    let cfg = Graph500Config::tiny();
    assert_eq!(
        graph500::kronecker_edges(&cfg),
        graph500::kronecker_edges(&cfg)
    );
    let other = Graph500Config {
        seed: cfg.seed + 1,
        ..cfg
    };
    assert_ne!(
        graph500::kronecker_edges(&cfg),
        graph500::kronecker_edges(&other)
    );
}

#[test]
fn contention_results_are_stable() {
    let base = TestbedConfig::tiny();
    let a = mcbn(&base, &stream_cfg(), &[2]);
    let b = mcbn(&base, &stream_cfg(), &[2]);
    assert_eq!(
        a[0].per_instance_gib_s.to_bits(),
        b[0].per_instance_gib_s.to_bits()
    );
}
