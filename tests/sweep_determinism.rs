//! The sweep harness's CLI-level guarantees, exercised through real
//! experiment entry points: `--jobs 1` and `--jobs 8` produce
//! byte-identical reports, and a cache-hit re-run reproduces the same
//! bytes without simulating a single point.
//!
//! These are the same properties the `repro-quick` CI job checks from
//! the outside via the `repro` binary; here they run in-process so the
//! point-run counter can be asserted directly.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use thymesim::core::report;
use thymesim::core::sweep::{self, SweepOptions};
use thymesim::prelude::*;

/// Sweep options are process-global (the `repro` CLI installs them
/// once at startup); tests that install options must not interleave.
fn options_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn stream_cfg() -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = 8192;
    s
}

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("thymesim-dtest-{}-{tag}", std::process::id()))
}

#[test]
fn jobs_1_and_jobs_8_reports_are_byte_identical() {
    let _guard = options_lock();
    let base = TestbedConfig::tiny();
    let run_at = |jobs: usize| {
        sweep::configure(SweepOptions {
            jobs,
            cache: None,
            progress: false,
        });
        let points = stream_delay_sweep(&base, &stream_cfg(), &[1, 20, 50, 100]);
        report::to_json(&points)
    };
    let serial = run_at(1);
    let parallel = run_at(8);
    sweep::configure(SweepOptions::default());
    assert_eq!(
        serial, parallel,
        "--jobs 1 and --jobs 8 must render byte-identical JSON"
    );
}

#[test]
fn cached_rerun_is_identical_and_simulates_nothing() {
    let _guard = options_lock();
    let dir = temp_cache("cache-hit");
    let _ = std::fs::remove_dir_all(&dir);
    let base = TestbedConfig::tiny();
    let opts = SweepOptions {
        jobs: 4,
        cache: Some(dir.clone()),
        progress: false,
    };

    sweep::configure(opts.clone());
    let first = report::to_json(&mcbn(&base, &stream_cfg(), &[1, 2]));
    let before = sweep::simulated_point_count();

    sweep::configure(opts);
    let second = report::to_json(&mcbn(&base, &stream_cfg(), &[1, 2]));
    let after = sweep::simulated_point_count();
    sweep::configure(SweepOptions::default());

    assert_eq!(first, second, "cache-served results must be byte-identical");
    assert_eq!(after, before, "a fully cached re-run must simulate nothing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_tail_jobs_1_and_jobs_8_are_byte_identical() {
    let _guard = options_lock();
    let base = TestbedConfig::tiny();
    let serve = ServeConfig {
        arrivals: 400,
        ..ServeConfig::tiny()
    };
    let run_at = |jobs: usize| {
        sweep::configure(SweepOptions {
            jobs,
            cache: None,
            progress: false,
        });
        let points = serve_tail(
            &base,
            &serve,
            &stream_cfg(),
            &[1, 100],
            &[(ServeContention::None, 0), (ServeContention::Mcbn, 1)],
            &[20_000.0],
        );
        report::to_json(&points)
    };
    let serial = run_at(1);
    let parallel = run_at(8);
    sweep::configure(SweepOptions::default());
    assert_eq!(
        serial, parallel,
        "serve_tail must render byte-identical JSON at any --jobs"
    );
}
