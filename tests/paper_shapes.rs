//! The paper's qualitative results, asserted end-to-end at test scale:
//! every table/figure's *shape* — who wins, what is flat, what collapses,
//! where the crossover sits — must hold in the reproduction.

use thymesim::prelude::*;

fn stream_cfg() -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = 16_384;
    s
}

/// Fig. 2: latency grows linearly in PERIOD with near-perfect correlation.
#[test]
fn fig2_latency_is_linear_in_period() {
    let points = stream_delay_sweep(
        &TestbedConfig::tiny(),
        &stream_cfg(),
        &[1, 10, 50, 100, 200, 300],
    );
    let v = validate_injection(&points);
    assert!(v.fit_r > 0.999, "r = {}", v.fit_r);
    for w in points.windows(2) {
        assert!(w[1].latency_us >= w[0].latency_us);
    }
}

/// Fig. 3: bandwidth collapses with PERIOD while the BDP stays constant.
#[test]
fn fig3_bdp_constant_bandwidth_falls() {
    let points = stream_delay_sweep(
        &TestbedConfig::tiny(),
        &stream_cfg(),
        &[10, 50, 100, 200, 300],
    );
    let v = validate_injection(&points);
    assert!(v.bdp_cv < 0.1, "BDP CV {} too large", v.bdp_cv);
    assert!(
        points[0].bandwidth_gib_s / points.last().unwrap().bandwidth_gib_s > 10.0,
        "bandwidth must collapse across the sweep"
    );
}

/// Fig. 4: the system survives (with degradation) up to PERIOD=1000 and
/// the FPGA is no longer detected at PERIOD=10000.
#[test]
fn fig4_crash_point_is_period_10000() {
    let points = resilience_sweep(&TestbedConfig::tiny(), &stream_cfg(), &FIG4_PERIODS);
    let survived: Vec<bool> = points.iter().map(|p| p.survived()).collect();
    assert_eq!(survived, vec![true, true, true, true, false]);
}

/// Table I + Fig. 5 in one sweep: Redis ~flat, Graph500 catastrophic.
#[test]
fn table1_and_fig5_divergence() {
    let rows = table1(&TestbedConfig::tiny(), &AppScale::tiny());
    let redis = &rows[0];
    let bfs = &rows[1];
    // The headline insight: identical injection, wildly different impact.
    assert!(redis.degradation_p1000 < 2.0);
    assert!(bfs.degradation_p1000 > 50.0);
    assert!(bfs.degradation_p1000 / redis.degradation_p1000 > 30.0);
}

/// Fig. 6: per-instance bandwidth divides ~equally by instance count.
#[test]
fn fig6_equal_division() {
    let points = mcbn(&TestbedConfig::tiny(), &stream_cfg(), &[1, 4]);
    let ratio = points[0].per_instance_gib_s / points[1].per_instance_gib_s;
    assert!(
        (3.0..5.0).contains(&ratio),
        "4 instances should each get ~1/4: ratio {ratio}"
    );
}

/// Fig. 7: borrower bandwidth is ~independent of lender-side load.
#[test]
fn fig7_borrower_flat_under_lender_load() {
    let points = mcln(&TestbedConfig::tiny(), &stream_cfg(), &[0, 4]);
    let drop = 1.0 - points[1].borrower_gib_s / points[0].borrower_gib_s;
    assert!(drop < 0.10, "borrower lost {:.1}%", drop * 100.0);
}

/// The anatomy-of-a-read claim behind Fig. 2, as attribution shares:
/// raising PERIOD grows the gate-wait share of the remote read
/// monotonically, while the physical stages it competes with — wire
/// time and the lender memory bus — keep the same absolute per-access
/// mean. Injected delay dominates; everything else stays put.
#[test]
fn attribution_gate_share_grows_with_period_and_wire_stays_flat() {
    use thymesim_telemetry::{SweepAttribution, TraceRecorder};
    let periods = [1u64, 50, 200, 400];
    // Record each point with a thread-local recorder directly (no
    // process-global telemetry config, so this cannot interfere with
    // the other tests in this binary).
    let traces: Vec<_> = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            thymesim_telemetry::install(TraceRecorder::new(i, 0));
            run_stream_on_testbed(&TestbedConfig::tiny().with_period(p), &stream_cfg());
            thymesim_telemetry::take().expect("recorder installed")
        })
        .collect();
    let att = SweepAttribution::fold("paper-shape/period", periods.len(), &traces, &[]);
    assert_eq!(att.per_point.len(), periods.len());

    let gate_shares: Vec<f64> = att
        .per_point
        .iter()
        .map(|p| {
            p.slice("fabric.gate_wait")
                .expect("gate stage")
                .share
                .unwrap()
        })
        .collect();
    for (w, pair) in gate_shares.windows(2).enumerate() {
        assert!(
            pair[1] > pair[0],
            "gate-wait share must grow with PERIOD: {:?} at periods {:?}",
            gate_shares,
            &periods[w..=w + 1]
        );
    }
    // By PERIOD=400 the injected delay dominates the read.
    assert!(gate_shares.last().unwrap() > &0.5);

    // Flatness holds in the gate-dominated regime (PERIOD ≥ 50). At
    // PERIOD=1 the gate barely paces traffic, so the wire is briefly
    // the bottleneck and its observed wait includes queueing — the
    // paper's flat-wire claim is about injection dominating physics.
    for stage in ["fabric.wire_out", "fabric.lender_bus"] {
        let means: Vec<f64> = att.per_point[1..]
            .iter()
            .map(|p| p.slice(stage).expect("stage recorded").mean_ps)
            .collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi / lo < 1.05,
            "{stage} mean must stay flat across PERIOD: {means:?}"
        );
    }
}

/// The Redis-vs-Graph500 asymmetry (Table I / Fig. 5), seen through
/// per-phase attribution: raising PERIOD concentrates BFS's gate-wait
/// time in the mid/deep frontier levels (where the big frontiers issue
/// saturating window-loads of remote reads), while Redis's per-request
/// cost stays pinned to the constant network-stack phase — its stack
/// share barely moves. Same injection, opposite anatomy.
#[test]
fn phase_attribution_shows_redis_graph500_asymmetry() {
    use thymesim_telemetry::{SweepAttribution, TraceRecorder};
    let periods = [1u64, 400];
    let scale = AppScale::tiny();

    // BFS, traced per point with a thread-local recorder (no global
    // telemetry config, so this cannot interfere with other tests).
    let bfs_traces: Vec<_> = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            thymesim_telemetry::install(TraceRecorder::new(i, 0));
            let mut tb = Testbed::build(&TestbedConfig::tiny().with_period(p)).unwrap();
            run_graph500(
                &mut tb,
                &scale.graph_parallel,
                GraphKernel::Bfs,
                Placement::Remote,
                false,
            );
            thymesim_telemetry::take().expect("recorder installed")
        })
        .collect();
    let bfs = SweepAttribution::fold("paper-shape/bfs", periods.len(), &bfs_traces, &[]);

    // Share of the gate-wait stage carried by mid/deep frontier levels
    // (level >= 2): the wavefront levels where the frontier saturates
    // the fetch window.
    let deep_gate_share: Vec<f64> = bfs
        .per_point
        .iter()
        .map(|p| {
            let gate = p.slice("fabric.gate_wait").expect("gate stage recorded");
            let deep: u64 = gate
                .phases
                .iter()
                .filter(|ph| {
                    ph.label()
                        .strip_prefix("bfs_level_")
                        .and_then(|l| l.parse::<u64>().ok())
                        .is_some_and(|l| l >= 2)
                })
                .map(|ph| ph.total_ps)
                .sum();
            deep as f64 / gate.total_ps as f64
        })
        .collect();

    // Redis: the per-request network-stack phase (kv.stack, recorded
    // once per batch at the fixed server_stack cost) versus the remote
    // memory time the request also pays.
    let kv_stack_share: Vec<f64> = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            thymesim_telemetry::install(TraceRecorder::new(i, 0));
            let mut tb = Testbed::build(&TestbedConfig::tiny().with_period(p)).unwrap();
            run_kv(&mut tb, &scale.kv, Placement::Remote);
            let t = thymesim_telemetry::take().expect("recorder installed");
            let att = SweepAttribution::fold("paper-shape/kv", 1, &[t], &[]);
            let point = &att.per_point[0];
            let stack = point.slice("kv.stack").expect("stack stage recorded");
            stack.total_ps as f64 / (stack.total_ps + point.read_total_ps) as f64
        })
        .collect();

    eprintln!("deep_gate_share = {deep_gate_share:?}");
    eprintln!("kv_stack_share  = {kv_stack_share:?}");

    // BFS: injected delay piles onto the deep levels as PERIOD grows.
    assert!(
        deep_gate_share[1] > deep_gate_share[0],
        "gate wait must concentrate in mid/deep BFS levels: {deep_gate_share:?}"
    );
    assert!(
        deep_gate_share[1] > 0.99,
        "at PERIOD=400 nearly all gate wait sits in deep levels: {deep_gate_share:?}"
    );
    // Redis: the stack share moves far less than BFS's deep-level
    // concentration — the request cost is pinned to the stack, which is
    // why Table I shows Redis ~flat while Graph500 collapses.
    let kv_drift = kv_stack_share[0] / kv_stack_share[1];
    assert!(
        kv_drift < 2.0,
        "KV network-stack share must stay ~flat across PERIOD: {kv_stack_share:?}"
    );
}

/// The contention mechanism behind Fig. 6, seen through counter tracks:
/// as the MCBN instance count grows, the borrower's receive-link busy
/// fraction (the direction carrying the fetched lines) rises
/// monotonically, and the aggregate-throughput plateau coincides with
/// the first point whose saturated-time fraction exceeds the threshold
/// — equal division happens *because* the shared link is saturated.
#[test]
fn counter_tracks_show_mcbn_link_saturation_onset() {
    use thymesim::core::runners::StreamProc;
    use thymesim::sim::{run_processes, Time};
    use thymesim::workloads::stream::{StreamArrays, StreamProcess};
    use thymesim_telemetry::{SweepUtilization, TraceRecorder};

    let counts = [1usize, 2, 4, 8];
    let cfg = TestbedConfig::tiny();
    let scfg = stream_cfg();
    // Replays the MCBN point body with a thread-local recorder per point
    // (no process-global telemetry config, so this cannot interfere with
    // the other tests in this binary).
    let mut aggregate_gib_s = Vec::with_capacity(counts.len());
    let traces: Vec<_> = counts
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            thymesim_telemetry::install(TraceRecorder::new(i, 0));
            let mut tb = Testbed::build(&cfg).unwrap();
            let mut procs = Vec::with_capacity(n);
            for _ in 0..n {
                let arrays = StreamArrays::alloc(&mut tb.remote_arena, scfg.elements);
                arrays.init(&mut tb.borrower);
                procs.push(StreamProc(StreamProcess::new(
                    scfg,
                    arrays,
                    tb.attach.ready_at,
                )));
            }
            let stats = run_processes(&mut procs, &mut tb.borrower, Time::NEVER);
            assert_eq!(stats.finished, n);
            aggregate_gib_s.push(
                procs
                    .iter()
                    .map(|p| p.0.mean_bandwidth_gib_s())
                    .sum::<f64>(),
            );
            thymesim_telemetry::take().expect("recorder installed")
        })
        .collect();
    let u = SweepUtilization::fold(
        "paper-shape/mcbn",
        counts.len(),
        &traces,
        thymesim_telemetry::counters::DEFAULT_WINDOW_PS,
        thymesim_telemetry::counters::DEFAULT_SATURATION_THRESHOLD,
    );

    let rx: Vec<_> = u
        .per_point
        .iter()
        .map(|p| {
            p.counters
                .iter()
                .find(|c| c.name == "net.link_busy.rx")
                .expect("rx link track recorded")
        })
        .collect();
    let busy: Vec<f64> = rx.iter().map(|c| c.mean).collect();
    let saturated: Vec<f64> = rx.iter().map(|c| c.saturated_frac).collect();
    eprintln!("aggregate_gib_s = {aggregate_gib_s:?}");
    eprintln!("rx busy means   = {busy:?}");
    eprintln!("rx sat fracs    = {saturated:?}");

    // Borrower link busy fraction rises (strictly) monotonically with N,
    // and so does the fraction of virtual time the link spends saturated
    // (windows above the 0.9 busy threshold).
    for (w, pair) in busy.windows(2).enumerate() {
        assert!(
            pair[1] > pair[0],
            "rx busy must rise with instances: {busy:?} at counts {:?}",
            &counts[w..=w + 1]
        );
    }
    for pair in saturated.windows(2) {
        assert!(
            pair[1] > pair[0],
            "rx saturated time must rise with instances: {saturated:?}"
        );
    }

    // Saturation onset: the first point spending more than this fraction
    // of virtual time in saturated windows. The throughput plateau starts
    // at the same point: from there on, adding instances no longer grows
    // aggregate bandwidth (it stays within the equal-division band),
    // while any pre-onset point sits below the plateau level. At tiny
    // scale the shared path saturates already at N=1 — which is exactly
    // why Fig. 6 shows aggregate ~flat across every instance count.
    const SATURATED_TIME_CUT: f64 = 0.1;
    let onset = saturated
        .iter()
        .position(|&s| s > SATURATED_TIME_CUT)
        .expect("the link must saturate at some instance count");
    let plateau = aggregate_gib_s[onset..]
        .iter()
        .fold(f64::INFINITY, |a, &b| a.min(b));
    for (i, &agg) in aggregate_gib_s.iter().enumerate() {
        if i >= onset {
            assert!(
                (agg / plateau - 1.0).abs() < 0.25,
                "post-onset aggregate must sit on the plateau: {aggregate_gib_s:?}, onset {onset}"
            );
        } else {
            assert!(
                agg < plateau * 0.95,
                "pre-onset point {i} already on the plateau: {aggregate_gib_s:?}, onset {onset}"
            );
        }
    }

    // The mechanism: the bandwidth-delay product is window-bound, and
    // every point drives the credit window to its configured capacity —
    // that cap is what pins the aggregate to the plateau.
    for p in &u.per_point {
        let credits = p
            .counters
            .iter()
            .find(|c| c.name == "credit.occupancy")
            .expect("credit occupancy track recorded");
        let cap = credits.bound.expect("credit window is bounded") as f64;
        assert!(
            credits.peak > 0.95 * cap,
            "point {}: credit window never filled (peak {} of {cap})",
            p.index,
            credits.peak
        );
    }
}

/// §III-B: the injected range tops out near the 90th percentile of the
/// datacenter envelope, and PERIOD=10000's ~4 ms is far beyond the 99th.
#[test]
fn injected_range_matches_datacenter_percentiles() {
    use thymesim::net::LatencyProfile;
    use thymesim::sim::Dur;
    let points = stream_delay_sweep(&TestbedConfig::tiny(), &stream_cfg(), &[1, 300]);
    let profile = LatencyProfile::intra_datacenter();
    let hi = Dur::from_ns_f64(points[1].latency_us * 1000.0);
    assert!(profile.percentile_of(hi) <= 0.95);
    assert!(profile.percentile_of(Dur::ms(4)) > 0.999);
}

/// §V (serving extension, E17): under open-loop load the tail/mean
/// divergence grows along *both* stress axes — delay (PERIOD) and
/// contention — even where the mean barely moves.
#[test]
fn serve_tail_diverges_along_delay_and_contention() {
    let serve = ServeConfig {
        arrivals: 1500,
        ..ServeConfig::tiny()
    };
    let base = TestbedConfig::tiny();

    // Delay axis: at a fixed offered rate, p999/mean strictly grows
    // with PERIOD — queueing amplifies what the mean only hints at.
    let points = serve_tail(
        &base,
        &serve,
        &stream_cfg(),
        &[1, 100, 400],
        &[(ServeContention::None, 0)],
        &[60_000.0],
    );
    assert_eq!(points.len(), 3);
    for w in points.windows(2) {
        assert!(
            w[1].tail_ratio > w[0].tail_ratio,
            "tail/mean must grow with PERIOD: {} !> {} (PERIOD {} vs {})",
            w[1].tail_ratio,
            w[0].tail_ratio,
            w[1].period,
            w[0].period
        );
    }

    // Contention axis: at a fixed PERIOD, p999 fattens monotonically
    // with instance count on each side (MCBN borrower-NIC, MCLN
    // lender-bus), and every contended point sits above the clean one.
    let contention = [
        (ServeContention::None, 0),
        (ServeContention::Mcbn, 1),
        (ServeContention::Mcbn, 2),
        (ServeContention::Mcln, 2),
        (ServeContention::Mcln, 6),
    ];
    let points = serve_tail(
        &base,
        &serve,
        &stream_cfg(),
        &[100],
        &contention,
        &[20_000.0],
    );
    let p999 = |label: &str, n: usize| {
        points
            .iter()
            .find(|p| p.contention == label && p.instances == n)
            .unwrap()
            .sojourn_p999_us
    };
    let clean = p999("none", 0);
    assert!(p999("mcbn", 1) > clean && p999("mcbn", 2) > p999("mcbn", 1));
    assert!(p999("mcln", 2) > clean && p999("mcln", 6) > p999("mcln", 2));
}

/// E17's policy claim: admission control measurably caps p999 at an
/// overloaded point where the open-loop queue otherwise runs away.
#[test]
fn serve_admission_caps_the_tail() {
    let serve = ServeConfig {
        arrivals: 1500,
        ..ServeConfig::tiny()
    }
    .with_offered_rate(100_000.0);
    let policies = [
        AdmissionPolicy::Open,
        AdmissionPolicy::Drop { queue_cap: 8 },
    ];
    let points = admission_study(&TestbedConfig::tiny(), &serve, 400, &policies);
    let open = &points[0];
    let drop = &points[1];
    assert!(drop.dropped > 0, "overload must actually shed load");
    assert!(
        drop.sojourn_p999_us < open.sojourn_p999_us * 0.5,
        "drop-at-{} must at least halve the open-loop p999 ({} vs {})",
        8,
        drop.sojourn_p999_us,
        open.sojourn_p999_us
    );
}
