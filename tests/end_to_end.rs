//! End-to-end integration: the full attach → run → observe cycle through
//! the public `thymesim` facade, across all three workloads.

use thymesim::fabric::AttachError;
use thymesim::prelude::*;
use thymesim::workloads::graph500::Graph500Config;
use thymesim::workloads::kv::KvConfig;

fn quick_graph() -> Graph500Config {
    Graph500Config {
        scale: 11,
        edgefactor: 8,
        roots: 2,
        cores: 4,
        ..Graph500Config::tiny()
    }
}

#[test]
fn attach_run_all_three_workloads() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).expect("attach");

    // STREAM.
    let mut scfg = StreamConfig::tiny();
    scfg.elements = 8192;
    let stream = run_stream(&mut tb, &scfg, Placement::Remote);
    assert!(stream.verified);

    // KV.
    let kv = run_kv(&mut tb, &KvConfig::tiny(), Placement::Remote);
    assert!(kv.data_ok);

    // Graph500 BFS with validation.
    let bfs = run_graph500(
        &mut tb,
        &quick_graph(),
        GraphKernel::Bfs,
        Placement::Remote,
        true,
    );
    assert!(bfs.validated);

    // The whole run stayed healthy.
    assert!(tb.crash().is_none());
    assert!(tb.borrower.remote().stats.reads > 0);
}

#[test]
fn detach_then_reuse_of_remote_memory_panics() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).expect("attach");
    let a = tb.remote_arena.alloc(128, 128);
    let ready = tb.attach.ready_at;
    tb.borrower.access(ready, a, false);
    // Detach through the control plane.
    let base = tb.borrower.map.remote_base;
    let engine = tb.borrower.remote_mut();
    tb.control.detach(engine, base);
    assert!(!tb.borrower.remote().is_attached());
    // Accessing a *new* (uncached) remote line must now fault.
    let b = tb.remote_arena.alloc(128, 128);
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        tb.borrower.access(ready, b, false);
    }));
    assert!(res.is_err(), "detached remote access must fail loudly");
}

#[test]
fn discovery_timeout_surfaces_via_facade() {
    match Testbed::build(&TestbedConfig::tiny().with_period(10_000)) {
        Err(AttachError::DiscoveryTimeout { elapsed, budget }) => {
            assert!(elapsed > budget);
        }
        Err(other) => panic!("expected discovery timeout, got {other:?}"),
        Ok(_) => panic!("attach unexpectedly succeeded at PERIOD=10000"),
    }
}

#[test]
fn local_placement_never_touches_the_fabric() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).expect("attach");
    let mut scfg = StreamConfig::tiny();
    scfg.elements = 8192;
    run_stream(&mut tb, &scfg, Placement::Local);
    assert_eq!(
        tb.borrower.remote().stats.reads,
        0,
        "local-placement STREAM must not generate remote traffic"
    );
}

#[test]
fn degradation_ratios_are_consistent_between_apis() {
    // The sweep API and a manual pair of runs must agree.
    let base = TestbedConfig::tiny();
    let mut scfg = StreamConfig::tiny();
    scfg.elements = 8192;
    let sweep = stream_delay_sweep(&base, &scfg, &[1, 100]);
    let manual_1 = run_stream_on_testbed(&base.clone().with_period(1), &scfg);
    let manual_100 = run_stream_on_testbed(&base.clone().with_period(100), &scfg);
    assert!((sweep[0].latency_us - manual_1.miss_latency_mean.as_us_f64()).abs() < 1e-6);
    assert!((sweep[1].latency_us - manual_100.miss_latency_mean.as_us_f64()).abs() < 1e-6);
}
