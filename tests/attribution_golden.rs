//! Golden-trace corpus: the attribution artifacts for the pinned quick
//! configuration (`repro validate --profile quick --trace`) are
//! committed under `tests/golden/` and this test regenerates them
//! in-process and byte-compares.
//!
//! Because folding is order-independent and trace assembly is
//! grid-ordered, the artifacts must match whatever the thread count:
//! the test generates them at `--jobs 1` *and* `--jobs 4` and
//! byte-compares the two before comparing against the fixtures (CI
//! additionally runs the whole test with `THYMESIM_GOLDEN_JOBS=1`,
//! which pins both runs to one worker). The fixtures also pin the
//! simulator's timing model — including the per-workload-phase split
//! (STREAM kernel frames such as `copy`/`triad` in the collapsed
//! stacks): any change to stage latencies or phase attribution shows
//! up as a byte diff here.
//!
//! To re-bless after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test attribution_golden
//! ```
//!
//! then commit the rewritten files under `tests/golden/` (and re-record
//! `results/baselines/quick.json`, which gates the same stages).

use std::path::{Path, PathBuf};
use thymesim::core::experiments::apps::table1;
use thymesim::core::experiments::validate::{stream_delay_sweep, FIG2_PERIODS};
use thymesim::core::sweep::{self, SweepOptions};
use thymesim_bench::Profile;
use thymesim_telemetry::{attribution, TraceConfig};

const GOLDEN_DIR: &str = "tests/golden";
const FIXTURES: [&str; 3] = [
    "validate_stream_delay.collapsed",
    "apps_table1.collapsed",
    "attribution.json",
];

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(GOLDEN_DIR)
        .join(name)
}

/// Generate the quick-profile attribution artifacts into `dir` with the
/// given worker count.
fn generate(dir: &Path, jobs: usize) {
    let profile = Profile::quick();
    let _ = std::fs::remove_dir_all(dir);
    sweep::configure(SweepOptions {
        jobs,
        cache: None,
        progress: false,
    });
    thymesim_telemetry::configure(TraceConfig {
        dir: dir.to_path_buf(),
        ..Default::default()
    });
    stream_delay_sweep(&profile.testbed, &profile.stream, &FIG2_PERIODS);
    // The apps sweep adds Redis KV and Graph500 BFS/SSSP towers so the
    // corpus pins every workload family's phase frames, not just STREAM's.
    table1(&profile.testbed, &profile.apps);
    thymesim_telemetry::write_attribution().expect("attribution.json written");
    thymesim_telemetry::disable();
    sweep::configure(SweepOptions::default());
}

#[test]
fn quick_profile_attribution_matches_golden_fixtures() {
    // `--jobs` must be invisible in the artifacts: generate at two
    // worker counts and byte-compare before touching the fixtures.
    // THYMESIM_GOLDEN_JOBS overrides the parallel run's worker count
    // (CI uses =1 to make even the second run serial).
    let jobs = std::env::var("THYMESIM_GOLDEN_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dir = std::env::temp_dir().join(format!("thymesim-golden-{}", std::process::id()));
    let serial_dir = dir.with_extension("serial");
    generate(&serial_dir, 1);
    generate(&dir, jobs);
    for name in FIXTURES {
        let serial = std::fs::read(serial_dir.join(name)).expect("serial artifact emitted");
        let parallel = std::fs::read(dir.join(name)).expect("parallel artifact emitted");
        assert!(
            serial == parallel,
            "{name} differs between --jobs 1 and --jobs {jobs}; \
             the fold must be order-independent"
        );
    }
    let _ = std::fs::remove_dir_all(&serial_dir);

    // Fresh artifacts must themselves pass the structural validators.
    let collapsed = std::fs::read_to_string(dir.join(FIXTURES[0])).expect("collapsed emitted");
    let stats = attribution::check_collapsed(&collapsed).expect("flamegraph-shaped");
    assert_eq!(stats.points, FIG2_PERIODS.len(), "one tower per grid point");
    assert!(
        stats.phases > stats.points,
        "STREAM points must split into multiple phase towers, got {} over {} points",
        stats.phases,
        stats.points
    );
    for kernel in ["copy", "scale", "add", "triad"] {
        assert!(
            collapsed.contains(&format!(";{kernel};read;")),
            "collapsed output must carry a {kernel} phase frame"
        );
    }
    // The apps sweep must carry KV request-phase and graph level/bucket
    // frames — no workload family may fold entirely into `unphased`.
    let apps = std::fs::read_to_string(dir.join(FIXTURES[1])).expect("apps collapsed emitted");
    attribution::check_collapsed(&apps).expect("apps collapsed flamegraph-shaped");
    for frame in ["kv_warmup", "kv_steady", "bfs_level_1", "sssp_bucket_0"] {
        assert!(
            apps.contains(&format!(";{frame};")),
            "apps_table1.collapsed must carry a {frame} phase frame"
        );
    }
    let att = std::fs::read_to_string(dir.join(FIXTURES[2])).expect("attribution emitted");
    let astats = attribution::check_attribution(&att).expect("valid attribution.json");
    assert!(
        astats.sweeps >= 2,
        "both sweeps folded into attribution.json"
    );
    assert!(astats.phases > 0, "phase slices present");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        for name in FIXTURES {
            std::fs::create_dir_all(golden_path(name).parent().unwrap()).unwrap();
            std::fs::copy(dir.join(name), golden_path(name)).unwrap();
            eprintln!("re-blessed {}", golden_path(name).display());
        }
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    for name in FIXTURES {
        let fresh = std::fs::read(dir.join(name)).unwrap();
        let golden = std::fs::read(golden_path(name)).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with \
                 UPDATE_GOLDEN=1 cargo test --test attribution_golden",
                golden_path(name).display()
            )
        });
        assert!(
            fresh == golden,
            "{name} diverged from tests/golden/{name} (jobs={jobs}).\n\
             If the timing model changed intentionally, re-bless with\n\
             UPDATE_GOLDEN=1 cargo test --test attribution_golden\n\
             and re-record results/baselines/quick.json.",
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
