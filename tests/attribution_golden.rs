//! Golden-trace corpus: the attribution artifacts for the pinned quick
//! configuration (`repro validate --profile quick --trace`) are
//! committed under `tests/golden/` and this test regenerates them
//! in-process and byte-compares.
//!
//! Because folding is order-independent and trace assembly is
//! grid-ordered, the artifacts must match whatever the thread count —
//! CI runs this test twice, with `THYMESIM_GOLDEN_JOBS=1` and unset
//! (default parallelism). The fixtures also pin the simulator's timing
//! model: any change to stage latencies shows up as a byte diff here.
//!
//! To re-bless after an intentional model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test attribution_golden
//! ```
//!
//! then commit the rewritten files under `tests/golden/` (and re-record
//! `results/baselines/quick.json`, which gates the same stages).

use std::path::{Path, PathBuf};
use thymesim::core::experiments::validate::{stream_delay_sweep, FIG2_PERIODS};
use thymesim::core::sweep::{self, SweepOptions};
use thymesim_bench::Profile;
use thymesim_telemetry::{attribution, TraceConfig};

const GOLDEN_DIR: &str = "tests/golden";
const FIXTURES: [&str; 2] = ["validate_stream_delay.collapsed", "attribution.json"];

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(GOLDEN_DIR)
        .join(name)
}

#[test]
fn quick_profile_attribution_matches_golden_fixtures() {
    let profile = Profile::quick();
    let jobs = std::env::var("THYMESIM_GOLDEN_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(thymesim_sim::default_jobs);
    let dir = std::env::temp_dir().join(format!("thymesim-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    sweep::configure(SweepOptions {
        jobs,
        cache: None,
        progress: false,
    });
    thymesim_telemetry::configure(TraceConfig {
        dir: dir.clone(),
        ..Default::default()
    });
    stream_delay_sweep(&profile.testbed, &profile.stream, &FIG2_PERIODS);
    thymesim_telemetry::write_attribution().expect("attribution.json written");
    thymesim_telemetry::disable();
    sweep::configure(SweepOptions::default());

    // Fresh artifacts must themselves pass the structural validators.
    let collapsed = std::fs::read_to_string(dir.join(FIXTURES[0])).expect("collapsed emitted");
    let stats = attribution::check_collapsed(&collapsed).expect("flamegraph-shaped");
    assert_eq!(stats.points, FIG2_PERIODS.len(), "one tower per grid point");
    let att = std::fs::read_to_string(dir.join(FIXTURES[1])).expect("attribution emitted");
    attribution::check_attribution(&att).expect("valid attribution.json");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        for name in FIXTURES {
            std::fs::create_dir_all(golden_path(name).parent().unwrap()).unwrap();
            std::fs::copy(dir.join(name), golden_path(name)).unwrap();
            eprintln!("re-blessed {}", golden_path(name).display());
        }
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    for name in FIXTURES {
        let fresh = std::fs::read(dir.join(name)).unwrap();
        let golden = std::fs::read(golden_path(name)).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with \
                 UPDATE_GOLDEN=1 cargo test --test attribution_golden",
                golden_path(name).display()
            )
        });
        assert!(
            fresh == golden,
            "{name} diverged from tests/golden/{name} (jobs={jobs}).\n\
             If the timing model changed intentionally, re-bless with\n\
             UPDATE_GOLDEN=1 cargo test --test attribution_golden\n\
             and re-record results/baselines/quick.json.",
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
