//! Integration coverage of the beyond-the-paper extensions through the
//! public facade: switched congestion, pooling, topology, QoS migration,
//! and the placement allocator.

use thymesim::net::{LinkConfig, TreeConfig};
use thymesim::prelude::*;
use thymesim::workloads::graph500::Graph500Config;

fn quick_stream() -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = 16_384;
    s
}

#[test]
fn congestion_maps_onto_a_period() {
    let r = emulation_fidelity(
        &TestbedConfig::tiny(),
        &quick_stream(),
        LinkConfig::copper_100g(),
        2,
    );
    assert!(r.matched_period >= 2, "2 pairs must map above vanilla");
    assert!(r.mean_error < 0.3, "{r:?}");
}

#[test]
fn pooling_and_borrowing_regimes_differ() {
    let server = pooling_sweep(&TestbedConfig::tiny(), &quick_stream(), 140.0, &[4]);
    let pool = pooling_sweep(&TestbedConfig::tiny(), &quick_stream(), 8.0, &[4]);
    assert!(server[0].per_borrower_gib_s > pool[0].per_borrower_gib_s * 3.0);
}

#[test]
fn topology_places_cost_on_the_shared_uplink() {
    let tree = TreeConfig {
        racks: 2,
        ..TreeConfig::default()
    };
    let points = rack_topology(&TestbedConfig::tiny(), &quick_stream(), tree, 2);
    let intra = points.iter().find(|p| p.placement == "intra-rack").unwrap();
    let cross = points.iter().find(|p| p.placement == "cross-rack").unwrap();
    assert!(cross.fg_latency_us > intra.fg_latency_us);
}

#[test]
fn qos_migration_beats_all_remote_under_delay() {
    let g = Graph500Config {
        scale: 12,
        edgefactor: 16,
        roots: 1,
        cores: 4,
        ..Graph500Config::tiny()
    };
    let points = page_migration_study(&TestbedConfig::tiny(), &g, GraphKernel::Bfs, 400, 1 << 20);
    assert_eq!(points.len(), 3);
    assert!(points[1].speedup > 1.5, "{points:?}");
    assert!(points[2].speedup >= points[1].speedup * 0.9);
}

#[test]
fn placement_policies_match_in_the_borrowing_regime() {
    let points = placement_study(&TestbedConfig::tiny(), &quick_stream(), 2, 4);
    let borrowing: Vec<_> = points.iter().filter(|p| p.regime == "borrowing").collect();
    assert_eq!(borrowing.len(), 2);
    let gap = (borrowing[0].mean_borrower_gib_s - borrowing[1].mean_borrower_gib_s).abs()
        / borrowing[0].mean_borrower_gib_s;
    assert!(gap < 0.05, "{points:?}");
}

#[test]
fn sensitivity_identifies_the_mshr_lever() {
    let rows = tornado(&TestbedConfig::tiny(), &quick_stream());
    assert_eq!(rows[0].knob, Knob::Mshr, "{rows:?}");
}
