//! Reliability-failure injection across the facade: link flaps, machine
//! checks, and delay schedules that change mid-run.

use thymesim::fabric::{Crash, DelaySpec};
use thymesim::prelude::*;
use thymesim::sim::{Dur, Time};

#[test]
fn brief_link_flap_is_survivable() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).unwrap();
    let t0 = tb.attach.ready_at;
    tb.borrower
        .remote_mut()
        .outages
        .add(t0 + Dur::us(50), t0 + Dur::us(550));
    let a = tb.remote_arena.alloc(1 << 16, 128);
    let mut t = t0;
    for i in 0..256u64 {
        t = tb.borrower.access(t, a.offset(i * 128), false);
    }
    assert!(tb.crash().is_none(), "a 0.5 ms flap must not checkstop");
    // But the run visibly stretched across the outage.
    assert!(t > t0 + Dur::us(550));
    assert!(tb.borrower.remote().health.worst_latency >= Dur::us(400));
}

#[test]
fn long_outage_machine_checks_the_core() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).unwrap();
    let t0 = tb.attach.ready_at;
    // Longer than the 100 ms hung-load threshold.
    tb.borrower
        .remote_mut()
        .outages
        .add(t0 + Dur::us(10), t0 + Dur::us(10) + Dur::ms(150));
    let a = tb.remote_arena.alloc(4096, 128);
    let mut t = t0;
    for i in 0..16u64 {
        t = tb.borrower.access(t, a.offset(i * 128), false);
    }
    match tb.crash() {
        Some(Crash::MachineCheck { latency, .. }) => {
            assert!(latency > Dur::ms(100));
        }
        other => panic!("expected machine check, got {other:?}"),
    }
}

#[test]
fn piecewise_period_changes_latency_mid_run() {
    // First half vanilla, second half PERIOD=200 — the §V "variation at
    // short timescales" mode.
    let switch_cycle = 250_000; // 1 ms at 250 MHz
    let cfg =
        TestbedConfig::tiny().with_delay(DelaySpec::Piecewise(vec![(0, 1), (switch_cycle, 200)]));
    let mut tb = Testbed::build(&cfg).unwrap();
    let a = tb.remote_arena.alloc(1 << 22, 128);
    let t0 = tb.attach.ready_at;
    assert!(
        t0 < Time::ms(1),
        "attach must complete in the vanilla phase"
    );

    // Dependent chain: each access issues after the previous completes.
    let mut t = t0;
    let mut early = Vec::new();
    let mut late = Vec::new();
    for i in 0..4096u64 {
        let before = t;
        t = tb.borrower.access(t, a.offset(i * 128), false);
        let lat = t - before;
        if before < Time::ms(1) {
            early.push(lat);
        } else if before > Time::ms(1) + Dur::us(100) {
            late.push(lat);
        }
    }
    assert!(!early.is_empty() && !late.is_empty());
    let mean = |v: &[Dur]| v.iter().map(|d| d.as_ps()).sum::<u64>() as f64 / v.len() as f64;
    // After the switch every isolated access pays ~PERIOD/2 extra cycles.
    assert!(
        mean(&late) > mean(&early) * 1.2,
        "latency must jump after the schedule switch: {} vs {}",
        mean(&late),
        mean(&early)
    );
}

#[test]
fn runtime_delay_reconfiguration() {
    let mut tb = Testbed::build(&TestbedConfig::tiny()).unwrap();
    let a = tb.remote_arena.alloc(1 << 20, 128);
    let t0 = tb.attach.ready_at;
    let l1 = tb.borrower.access(t0, a, false) - t0;
    tb.borrower.remote_mut().set_delay(DelaySpec::Period(1000));
    let b = a.offset(1 << 19);
    let t1 = Time::ms(10);
    let l2 = tb.borrower.access(t1, b, false) - t1;
    assert!(
        l2 > l1,
        "reprogrammed PERIOD must slow the next access: {l1} vs {l2}"
    );
}
