//! The telemetry determinism contract, enforced end to end:
//!
//! 1. tracing is observational — results are byte-identical with the
//!    recorder on and off;
//! 2. trace artifacts are themselves deterministic — repeated traced
//!    runs, at any `--jobs`, produce byte-identical trace files and a
//!    byte-identical `utilization.json`;
//! 3. every emitted trace passes the structural checker that CI runs
//!    (`trace_check`), including the windowed `util.*` counter-track
//!    rules, and the utilization report passes its own checker.
//!
//! Telemetry and sweep configuration are process-global, so everything
//! lives in one test function — steps must not interleave.

use std::path::{Path, PathBuf};
use thymesim::core::report;
use thymesim::core::sweep::{self, SweepOptions};
use thymesim::prelude::*;
use thymesim_telemetry::{chrome, TraceConfig};

fn stream_cfg() -> StreamConfig {
    let mut s = StreamConfig::tiny();
    s.elements = 8192;
    s
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("thymesim-ttest-{}-{tag}", std::process::id()))
}

/// All `*.trace.json` files in `dir`, as (filename, bytes), sorted.
fn trace_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.unwrap())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".trace.json"))
        .map(|e| {
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn tracing_never_changes_results_and_traces_are_deterministic() {
    let base = TestbedConfig::tiny();
    let periods = [1u64, 20, 100];
    let run = |jobs: usize| {
        sweep::configure(SweepOptions {
            jobs,
            cache: None,
            progress: false,
        });
        report::to_json(&stream_delay_sweep(&base, &stream_cfg(), &periods))
    };

    // Baseline: tracing off.
    thymesim_telemetry::disable();
    let plain = run(4);

    // Tracing on must not perturb a single result byte.
    let dir_a = temp_dir("a");
    let _ = std::fs::remove_dir_all(&dir_a);
    thymesim_telemetry::configure(TraceConfig {
        dir: dir_a.clone(),
        ..Default::default()
    });
    let traced = run(4);
    assert_eq!(
        plain, traced,
        "tracing must be purely observational: results diverged"
    );
    let util_a = thymesim_telemetry::write_utilization()
        .expect("utilization writes")
        .expect("traced sweep folds utilization");

    // A second traced run — serial this time — must reproduce the trace
    // files byte for byte (grid-order assembly makes --jobs invisible).
    let dir_b = temp_dir("b");
    let _ = std::fs::remove_dir_all(&dir_b);
    thymesim_telemetry::configure(TraceConfig {
        dir: dir_b.clone(),
        ..Default::default()
    });
    let traced_serial = run(1);
    assert_eq!(plain, traced_serial);
    let util_b = thymesim_telemetry::write_utilization()
        .expect("utilization writes")
        .expect("traced sweep folds utilization");

    let a = trace_files(&dir_a);
    let b = trace_files(&dir_b);
    assert!(!a.is_empty(), "traced sweep must emit a trace file");
    assert_eq!(
        a, b,
        "trace files must be byte-identical across runs and --jobs"
    );

    // The windowed counter folds are part of the determinism contract:
    // utilization.json must be byte-identical across runs and --jobs.
    let util_text = std::fs::read_to_string(&util_a).unwrap();
    assert_eq!(
        util_text,
        std::fs::read_to_string(&util_b).unwrap(),
        "utilization.json must be byte-identical across runs and --jobs"
    );
    let stats = thymesim_telemetry::counters::check_utilization(&util_text)
        .unwrap_or_else(|e| panic!("utilization.json invalid: {}", e.join("\n")));
    assert!(stats.sweeps > 0 && stats.points > 0);
    assert!(
        stats.counters > 0,
        "traced STREAM sweep must fold counter tracks"
    );

    // Every artifact must satisfy the structural checker CI runs.
    for (name, bytes) in &a {
        let text = String::from_utf8(bytes.clone()).expect("trace is UTF-8");
        let stats = chrome::check(&text).unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));
        assert!(stats.events > 0, "{name}: trace recorded no events");
        assert!(stats.spans > 0, "{name}: expected span events");
        assert!(stats.counters > 0, "{name}: expected counter samples");
        assert!(
            stats.util_counters > 0,
            "{name}: expected windowed util.* counter-track samples"
        );
        assert!(
            text.contains("util.net.link_busy"),
            "{name}: link busy-fraction track missing"
        );
    }

    // The merged summary exists and parses.
    let summary = thymesim_telemetry::write_summary().expect("summary written");
    let text = std::fs::read_to_string(&summary).unwrap();
    assert!(
        serde_json::from_str::<serde::Value>(&text).is_ok(),
        "telemetry.json must parse"
    );
    assert!(text.contains("\"schema\""));

    // Leave the process-global state clean for any later test.
    thymesim_telemetry::disable();
    sweep::configure(SweepOptions::default());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
