//! Offline stand-in for the slice of the `criterion` API the benches
//! in `crates/bench/benches/` use. It measures mean wall-clock per
//! iteration and prints one line per benchmark — no statistics engine,
//! no HTML reports. `cargo bench -- --test` runs every routine exactly
//! once, which is what the CI bench-smoke job gates on.

use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    #[allow(dead_code)]
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // Harness arguments arrive after the binary name; `--bench` is
        // what cargo itself appends, everything else unknown is treated
        // as a name filter (matching criterion's CLI loosely).
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self, None, id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn skips(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => !full_name.contains(f.as_str()),
            None => false,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let group = self.name.clone();
        let samples = self.sample_size;
        run_one(self.criterion, Some((&group, samples)), id, f);
        self
    }

    pub fn finish(self) {}
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    /// In test mode every routine body runs exactly once.
    test_mode: bool,
    samples: usize,
    /// Stop sampling early once this much time has been measured.
    budget: Duration,
    /// (total duration, total iterations) accumulated by iter calls.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..self.samples {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if total > self.budget {
                break;
            }
        }
        self.measured = Some((total, iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    group: Option<(&str, Option<usize>)>,
    id: &str,
    mut f: F,
) {
    let full_name = match group {
        Some((g, _)) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if c.skips(&full_name) {
        return;
    }
    let samples = group.and_then(|(_, s)| s).unwrap_or(c.sample_size).max(1);
    let mut b = Bencher {
        test_mode: c.test_mode,
        samples,
        budget: c.measurement_time,
        measured: None,
    };
    f(&mut b);
    if c.test_mode {
        println!("test {full_name} ... ok");
        return;
    }
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total.as_nanos() as f64 / iters as f64;
            println!("{full_name}: {:.1} ns/iter ({iters} iters)", per_iter);
        }
        _ => println!("{full_name}: no measurement recorded"),
    }
}

/// Mirrors criterion's macro: either the `name/config/targets` form or
/// the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_functions_run() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::ZERO,
            test_mode: false,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 5u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        runs += 1;
        assert_eq!(runs, 1);
    }
}
