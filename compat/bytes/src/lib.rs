//! Offline stand-in for the parts of the `bytes` crate the fabric
//! packet codec uses: cheaply-cloneable immutable [`Bytes`], growable
//! [`BytesMut`], and the big-endian cursor traits [`Buf`] / [`BufMut`].

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1) (they share the backing allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-slice sharing the same backing storage.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer; freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.0.clone()).fmt(f)
    }
}

/// Big-endian read cursor; reads consume from the front.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Big-endian append cursor.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xBEEF);
        b.put_u8(7);
        b.put_u32(0xDEAD_CAFE);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_slice(&[1, 2, 3]);
        let mut wire = b.freeze();
        assert_eq!(wire.len(), 2 + 1 + 4 + 8 + 3);
        assert_eq!(wire.get_u16(), 0xBEEF);
        assert_eq!(wire.get_u8(), 7);
        assert_eq!(wire.get_u32(), 0xDEAD_CAFE);
        assert_eq!(wire.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&wire[..], &[1, 2, 3]);
    }

    #[test]
    fn slices_share_storage_and_compare() {
        let a = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = a.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(a.clone(), a);
        let mut m = BytesMut::from(&a[..]);
        m[0] = 9;
        assert_eq!(&m[..], &[9, 2, 3, 4, 5]);
    }
}
