//! JSON encoding/decoding over the offline `serde` subset's [`Value`]
//! data model. Output is deterministic: object fields keep declaration
//! order and floats print via Rust's shortest-round-trip `{:?}`
//! formatting, so equal values always produce byte-identical text.

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON: two-space indent, `": "` separators —
/// the same layout as crates.io `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Convert any serializable value into the generic [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a value from the generic [`Value`] model.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Parse JSON text into a deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

// ------------------------------------------------------------- encoder

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips,
                // and always keeps a decimal point (`1.0`, not `1`).
                out.push_str(&format!("{x:?}"));
            } else {
                // Mirror serde_json's lossy default for non-finite floats.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_str(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_str(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------- decoder

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our encoder;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_layouts() {
        let v = Value::Object(vec![
            ("period".into(), Value::U64(100)),
            ("x".into(), Value::F64(1.0)),
            ("tag".into(), Value::Str("a\"b".into())),
            (
                "list".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
        ]);
        let compact = to_string(&ValueWrap(&v)).unwrap();
        assert_eq!(
            compact,
            r#"{"period":100,"x":1.0,"tag":"a\"b","list":[1,2]}"#
        );
        let pretty = to_string_pretty(&ValueWrap(&v)).unwrap();
        assert!(pretty.contains("\"period\": 100"), "{pretty}");
        assert!(pretty.starts_with("{\n  \"period\""), "{pretty}");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 3.5, null, true], "s": "hi\nthere"}"#;
        let v: Value = parse_value(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "hi\nthere");
        let re = to_string(&ValueWrap(&v)).unwrap();
        let v2 = parse_value(&re).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    /// Test-only adapter so raw `Value`s can go through the public API.
    struct ValueWrap<'a>(&'a Value);
    impl serde::Serialize for ValueWrap<'_> {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
