//! A small, self-contained stand-in for the parts of `serde` this
//! workspace uses. The build environment has no network access, so the
//! real crates.io `serde` cannot be fetched; this crate implements the
//! same surface (the `Serialize` / `Deserialize` traits plus derive
//! macros) over a concrete, order-preserving [`Value`] data model
//! instead of serde's generic visitor machinery.
//!
//! Determinism note: `Value::Object` keeps fields in insertion order
//! (a `Vec`, not a hash map), so serializing the same value twice —
//! from any thread — yields byte-identical JSON. The sweep harness
//! relies on this for its content-hash cache keys.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The serde data model, concretely: everything serializable flattens
/// into one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map; never reordered, so output is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Serialization / deserialization error.
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a Rust value into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a Rust value from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips through itself, so generic (de)serialization code
// can work on raw JSON trees.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::msg(concat!("expected unsigned integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::msg(concat!("expected integer for ", stringify!($t)))
                })?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // JSON has no NaN/Inf literal; they round-trip as null.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$($i),+].len();
                if a.len() != expected {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Internal helpers used by the generated derive code; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    pub fn field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v).map_err(|e| Error::msg(format!("field `{key}`: {e}"))),
            None => Err(Error::msg(format!("missing field `{key}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let o: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Value::Object(vec![
            ("z".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
