//! Derive macros for the offline `serde` subset, written directly
//! against `proc_macro` (no `syn`/`quote` — the build has no network
//! access, so those can't be fetched either).
//!
//! Supported input shapes — exactly what this workspace declares:
//! named structs (with `#[serde(skip)]` fields), tuple/newtype structs,
//! unit structs, and enums whose variants are unit, tuple, or struct
//! shaped. Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- model

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

// --------------------------------------------------------------- parser

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Consume any leading `#[...]` attributes; report whether one of
    /// them was `#[serde(skip)]` (or `skip_serializing`/`skip_deserializing`).
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                }
                other => panic!("expected attribute body after `#`, got {other:?}"),
            }
        }
        skip
    }

    /// Consume `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    /// Skip tokens up to (not including) a `,` at angle-bracket depth 0,
    /// or to the end of the stream. Used to step over field types.
    fn skip_to_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(body: TokenStream) -> bool {
    let mut it = body.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string().starts_with("skip"))),
        _ => false,
    }
}

fn parse(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        kw => panic!("derive(Serialize/Deserialize) on unsupported item `{kw}`"),
    };
    Item { name, kind }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_to_comma();
        c.next(); // the comma itself, if present
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    if c.at_end() {
        return 0;
    }
    let mut n = 1;
    loop {
        c.skip_attrs();
        c.skip_visibility();
        c.skip_to_comma();
        if c.next().is_none() {
            return n;
        }
        if c.at_end() {
            return n; // trailing comma
        }
        n += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.next();
                VariantFields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantFields::Tuple(n)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            c.next();
            c.skip_to_comma();
        }
        c.next(); // the comma, if present
        variants.push(Variant { name, fields });
    }
    variants
}

// -------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let mut s = String::from(
                "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "__o.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__o)");
            s
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                elems.join(", ")
            )
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantFields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))])),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec::Vec::from([{}])))])),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__o.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        for f in fields.iter().filter(|f| f.skip) {
                            inner.push_str(&format!("let _ = {};\n", f.name));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}::serde::Value::Object(::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__o))]))\n}},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::__private::field(__o, \"{0}\")?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let __o = __v.as_object().ok_or_else(|| ::serde::Error::msg(\"{name}: expected object\"))?;\n::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::msg(\"{name}: expected array\"))?;\nif __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}: wrong tuple length\")); }}\n::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Kind::Unit => format!("let _ = __v;\n::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{0}\" => return ::std::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {}
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __a = __inner.as_array().ok_or_else(|| ::serde::Error::msg(\"{name}::{vn}: expected array\"))?;\nif __a.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::msg(\"{name}::{vn}: wrong arity\")); }}\nreturn ::std::result::Result::Ok({name}::{vn}({}));\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::core::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::__private::field(__io, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __io = __inner.as_object().ok_or_else(|| ::serde::Error::msg(\"{name}::{vn}: expected object\"))?;\nreturn ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        ));
                    }
                }
            }
            let mut s = String::new();
            if !unit_arms.is_empty() {
                s.push_str(&format!(
                    "if let ::serde::Value::Str(__s) = __v {{\n    match __s.as_str() {{\n{unit_arms}        _ => {{}}\n    }}\n}}\n"
                ));
            }
            if !data_arms.is_empty() {
                s.push_str(&format!(
                    "if let ::std::option::Option::Some(__o) = __v.as_object() {{\n    if __o.len() == 1 {{\n        let (__k, __inner) = &__o[0];\n        match __k.as_str() {{\n{data_arms}            _ => {{}}\n        }}\n    }}\n}}\n"
                ));
            }
            s.push_str(&format!(
                "::std::result::Result::Err(::serde::Error::msg(\"{name}: no matching variant\"))"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n"
    )
}
