//! A small, deterministic stand-in for the parts of `proptest` this
//! workspace uses: the `proptest!` macro, range/`any`/`collection::vec`
//! strategies, `prop_map`/`prop_oneof!` combinators, and the
//! `prop_assert*`/`prop_assume!` macros. The build environment has no
//! network access, so the real crate cannot be fetched.
//!
//! Differences from crates.io proptest, by design:
//! - cases are drawn from a fixed RNG seeded from the test name, so
//!   every run explores the same inputs (fully reproducible CI);
//! - no shrinking: the failure report prints the exact inputs instead;
//! - no persistence files (`*.proptest-regressions` are ignored).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError,
    };
}

// ------------------------------------------------------------------ rng

/// Deterministic test RNG (SplitMix64). Self-contained so this crate
/// depends on nothing else in the workspace.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Lemire's multiply-shift; slight modulo bias is irrelevant here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derive the per-test seed from the test's name, so adding/removing
/// other tests never changes which inputs a given test sees.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ------------------------------------------------------------ config

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ------------------------------------------------------------ outcome

#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

// ---------------------------------------------------------- strategies

/// A source of random values of one type.
pub trait Strategy {
    type Value: Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values with `f` (proptest's `prop_map`,
    /// without shrinking — this stand-in never shrinks).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between strategies of one value type — what the
/// `prop_oneof!` macro builds (unweighted arms only).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Union<T> {
        Union {
            options: Vec::new(),
        }
    }

    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Union<T> {
        self.options.push(Box::new(s));
        self
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Pick uniformly among the listed strategies (all must yield the same
/// value type). Unlike crates.io proptest, arms cannot carry weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($strat))+
    };
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` — the full value space of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// -------------------------------------------------------------- macros

/// Drives each embedded `fn` as a `#[test]` running `config.cases`
/// random cases. Each parameter is `pattern in strategy-expression`.
#[macro_export]
macro_rules! proptest {
    // Internal arms first, so the public catch-all below can't swallow
    // the `@cfg` recursion.
    // One test fn, then recurse on the rest.
    (@cfg ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for __case in 0..__config.cases {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __sampled = $crate::Strategy::sample(&$strat, &mut __rng);
                    __inputs.push_str(&::std::format!(
                        "{} = {:?}; ", stringify!($pat), &__sampled
                    ));
                    let $pat = __sampled;
                )+
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        ::std::panic!(
                            "proptest case {} of {} failed: {}\n  inputs: {}",
                            __case + 1, __config.cases, __msg, __inputs
                        );
                    }
                }
            }
        }
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    // Done.
    (@cfg ($config:expr)) => {};
    // With an explicit config.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    // Without one: default config.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = Strategy::sample(&(5u64..17), &mut rng);
            assert!((5..17).contains(&x));
            let y = Strategy::sample(&(1u8..=6), &mut rng);
            assert!((1..=6).contains(&y));
            let f = Strategy::sample(&(0.5f64..4.0), &mut rng);
            assert!((0.5..4.0).contains(&f));
        }
    }

    #[test]
    fn same_name_same_sequence() {
        let mut a = crate::TestRng::new(crate::seed_from_name("x"));
        let mut b = crate::TestRng::new(crate::seed_from_name("x"));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 1u64..100, mut v in crate::collection::vec(0u32..9, 0..8)) {
            prop_assume!(x != 13);
            v.push(0);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(v[v.len() - 1], 0);
            prop_assert_ne!(x, 13);
        }

        #[test]
        fn second_fn_in_same_block(b in any::<bool>()) {
            prop_assert_eq!(b as u8 * 2, b as u8 + b as u8);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![0u64..10, (0u32..5).prop_map(|e| 100u64 << e)],
        ) {
            prop_assert!(x < 10 || (x >= 100 && x.trailing_zeros() >= 2));
        }
    }
}
