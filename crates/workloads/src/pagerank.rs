//! PageRank over the Graph500 Kronecker graph — an extension workload
//! from the application class the paper's introduction motivates
//! ("parallel data processing frameworks").
//!
//! Access pattern: per iteration, a sequential sweep of the CSR (high
//! MLP, prefetchable) plus a random scatter into the next rank vector
//! (low locality) — between STREAM and BFS on the sensitivity spectrum,
//! which is exactly why it is interesting under delay injection.

use crate::graph500::CsrGraph;
use crate::issue::IssueRing;
use thymesim_mem::{Arena, MemSystem, RemoteBackend, SimVec};
use thymesim_sim::{Dur, Time};

/// PageRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    pub iterations: u32,
    pub damping: f64,
    /// Outstanding line fetches during the edge sweep.
    pub mlp: usize,
    /// CPU cost per processed edge.
    pub cpu_per_edge: Dur,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            iterations: 10,
            damping: 0.85,
            mlp: 64,
            cpu_per_edge: Dur::ns(1),
        }
    }
}

/// Outcome of a run.
#[derive(Clone, Debug)]
pub struct PageRankReport {
    pub iterations: u32,
    pub elapsed: Dur,
    /// L1 change of the final iteration (convergence indicator).
    pub last_delta: f64,
    /// Ranks sum to ~1 (stochastic-vector invariant).
    pub rank_sum: f64,
}

/// The two rank vectors, allocated by the caller (local or remote).
pub struct PageRankState {
    pub rank: SimVec<f64>,
    pub next: SimVec<f64>,
}

impl PageRankState {
    pub fn alloc(arena: &mut Arena, n: u64) -> PageRankState {
        PageRankState {
            rank: arena.alloc_vec(n),
            next: arena.alloc_vec(n),
        }
    }
}

/// Run push-style PageRank: each vertex distributes rank/degree to its
/// neighbours. Timed accesses: xadj + adj sequential, rank\[v\] sequential,
/// next\[w\] random scatter.
pub fn pagerank<R: RemoteBackend>(
    cfg: &PageRankConfig,
    sys: &mut MemSystem<R>,
    g: &CsrGraph,
    state: &PageRankState,
    start: Time,
) -> PageRankReport {
    let n = g.n;
    let init = 1.0 / n as f64;
    for v in 0..n {
        state.rank.set_raw(sys, v, init);
    }

    let mut ring = IssueRing::new(cfg.mlp);
    ring.reset(start);
    let mut cpu = start;
    let mut last_delta = 0.0;

    for _iter in 0..cfg.iterations {
        // Zero the next vector (timed sequential writes).
        thymesim_telemetry::phase_begin("pagerank.zero", None);
        let base_term = (1.0 - cfg.damping) / n as f64;
        for v in 0..n {
            let at = ring.issue_at(cpu);
            let (done, missed) = sys.access_info(at, state.next.addr(v), true);
            if missed {
                ring.push(done);
            }
            state.next.set_raw(sys, v, base_term);
            cpu = cpu.max2(at) + Dur::ps(200);
        }
        // Push phase.
        thymesim_telemetry::phase_begin("pagerank.push", None);
        for v in 0..n {
            let at = ring.issue_at(cpu);
            let (done, missed) = sys.access_info(at, state.rank.addr(v), false);
            if missed {
                ring.push(done);
            }
            let rv = state.rank.get_raw(sys, v);
            let lo = {
                let a = g.xadj.addr(v);
                let (d, m) = sys.access_info(at, a, false);
                if m {
                    ring.push(d);
                }
                g.xadj.get_raw(sys, v)
            };
            let hi = g.xadj.get_raw(sys, v + 1);
            let deg = hi - lo;
            if deg == 0 {
                cpu = cpu.max2(at) + cfg.cpu_per_edge;
                continue;
            }
            let share = cfg.damping * rv / deg as f64;
            for e in lo..hi {
                let at = ring.issue_at(cpu);
                // Sequential neighbour read.
                let (d1, m1) = sys.access_info(at, g.adj.addr(e), false);
                if m1 {
                    ring.push(d1);
                }
                let w = g.adj.get_raw(sys, e) as u64;
                // Random scatter into next[w] (read-modify-write).
                let (d2, m2) = sys.access_info(at, state.next.addr(w), true);
                if m2 {
                    ring.push(d2);
                }
                let acc = state.next.get_raw(sys, w);
                state.next.set_raw(sys, w, acc + share);
                cpu = cpu.max2(at) + cfg.cpu_per_edge;
            }
        }
        // Swap (untimed bookkeeping) + measure delta.
        let mut delta = 0.0;
        for v in 0..n {
            let a = state.rank.get_raw(sys, v);
            let b = state.next.get_raw(sys, v);
            delta += (a - b).abs();
            state.rank.set_raw(sys, v, b);
        }
        last_delta = delta;
    }
    thymesim_telemetry::phase_end();

    let end = ring.horizon().max2(cpu);
    thymesim_telemetry::span_arg(
        "workload",
        "pagerank",
        start,
        end,
        "iters",
        cfg.iterations as u64,
    );
    let rank_sum = (0..n).map(|v| state.rank.get_raw(sys, v)).sum();
    PageRankReport {
        iterations: cfg.iterations,
        elapsed: end - start,
        last_delta,
        rank_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph500::{build_csr, Graph500Config};
    use thymesim_mem::{
        shared_dram, Addr, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming,
    };

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(256 << 20, 256 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    fn setup() -> (
        MemSystem<NoRemote>,
        crate::graph500::CsrGraph,
        PageRankState,
    ) {
        let gcfg = Graph500Config::tiny();
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let g = build_csr(&gcfg, &mut s, &mut arena);
        let state = PageRankState::alloc(&mut arena, g.n);
        (s, g, state)
    }

    #[test]
    fn ranks_stay_stochastic() {
        let (mut s, g, state) = setup();
        let report = pagerank(&PageRankConfig::default(), &mut s, &g, &state, Time::ZERO);
        // Push PageRank with dangling-mass loss keeps sum ≤ 1; with a
        // Kronecker giant component it stays close.
        assert!(
            (0.5..=1.000001).contains(&report.rank_sum),
            "rank sum {} out of range",
            report.rank_sum
        );
        assert!(report.elapsed > Dur::ZERO);
    }

    #[test]
    fn converges_with_iterations() {
        let (mut s, g, state) = setup();
        let mut cfg = PageRankConfig {
            iterations: 3,
            ..Default::default()
        };
        let early = pagerank(&cfg, &mut s, &g, &state, Time::ZERO);
        cfg.iterations = 20;
        let (mut s2, g2, state2) = setup();
        let late = pagerank(&cfg, &mut s2, &g2, &state2, Time::ZERO);
        assert!(
            late.last_delta < early.last_delta / 4.0,
            "delta must shrink: {} vs {}",
            late.last_delta,
            early.last_delta
        );
    }

    #[test]
    fn hubs_rank_highest() {
        let (mut s, g, state) = setup();
        pagerank(&PageRankConfig::default(), &mut s, &g, &state, Time::ZERO);
        // The max-degree vertex should be among the top ranks.
        let mut max_deg_v = 0;
        let mut max_deg = 0;
        for v in 0..g.n {
            let d = g.xadj.get_raw(&s, v + 1) - g.xadj.get_raw(&s, v);
            if d > max_deg {
                max_deg = d;
                max_deg_v = v;
            }
        }
        let hub_rank = state.rank.get_raw(&s, max_deg_v);
        let mut better = 0;
        for v in 0..g.n {
            if state.rank.get_raw(&s, v) > hub_rank {
                better += 1;
            }
        }
        assert!(
            better <= g.n / 100,
            "hub (degree {max_deg}) ranked below {better} vertices"
        );
    }

    #[test]
    fn prefetch_window_hides_latency_small_window_does_not() {
        // With a deep issue window the sweep hides even 10x memory
        // latency (PageRank is prefetch-friendly); with a shallow window
        // the same code becomes latency-bound — MLP, not the algorithm,
        // decides delay sensitivity (the paper's Fig. 5 mechanism).
        let run = |lat_ns: u64, mlp: usize| {
            // Big enough to thrash the 256 KiB cache (CSR ~2 MiB).
            let gcfg = Graph500Config {
                scale: 13,
                edgefactor: 16,
                ..Graph500Config::tiny()
            };
            let mut s = MemSystem::new(
                AddressMap::new(256 << 20, 256 << 20, 128),
                CacheConfig::tiny(),
                shared_dram(DramConfig {
                    latency: Dur::ns(lat_ns),
                    ..DramConfig::default()
                }),
                SysTiming::default(),
                NoRemote,
            );
            let mut arena = Arena::new(Addr(0), 256 << 20);
            let g = build_csr(&gcfg, &mut s, &mut arena);
            let state = PageRankState::alloc(&mut arena, g.n);
            let cfg = PageRankConfig {
                iterations: 2,
                mlp,
                ..PageRankConfig::default()
            };
            pagerank(&cfg, &mut s, &g, &state, Time::ZERO)
                .elapsed
                .as_secs_f64()
        };
        let tolerant = run(1200, 64) / run(120, 64);
        let exposed = run(1200, 2) / run(120, 2);
        assert!(
            tolerant < 1.3,
            "a 64-deep window should hide 10x latency: {tolerant}"
        );
        assert!(exposed > 2.0, "a 2-deep window should expose it: {exposed}");
    }
}
