//! The STREAM benchmark (McCalpin), timing-annotated.
//!
//! Four kernels over three `f64` arrays:
//!
//! | kernel | operation        | bytes/iter | FLOPs/iter |
//! |--------|------------------|------------|------------|
//! | copy   | `c[j] = a[j]`      | 16         | 0          |
//! | scale  | `b[j] = s·c[j]`    | 16         | 1          |
//! | add    | `c[j] = a[j]+b[j]` | 24         | 1          |
//! | triad  | `a[j] = b[j]+s·c[j]` | 24       | 2          |
//!
//! The paper configures 10 M elements (0.2 GiB, beyond the 120 MiB cache)
//! and reports per-access latency (Fig. 2) and bandwidth (Fig. 3) under
//! delay injection. The workload is implemented as a resumable
//! [`StreamProcess`] — one step processes one cache line — so several
//! instances can contend on shared hardware in virtual-time order
//! (the MCBN/MCLN experiments of §IV-E).

use crate::issue::IssueRing;
use thymesim_mem::{Arena, MemSystem, RemoteBackend, SimVec};
use thymesim_sim::{Dur, Step, Time};

/// Which STREAM kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    Copy,
    Scale,
    Add,
    Triad,
}

pub const KERNELS: [Kernel; 4] = [Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad];

impl Kernel {
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Copy => "copy",
            Kernel::Scale => "scale",
            Kernel::Add => "add",
            Kernel::Triad => "triad",
        }
    }

    /// Bytes STREAM accounts per iteration (its reporting convention).
    pub fn bytes_per_element(self) -> u64 {
        match self {
            Kernel::Copy | Kernel::Scale => 16,
            Kernel::Add | Kernel::Triad => 24,
        }
    }
}

/// STREAM configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct StreamConfig {
    /// Array length (paper: 10 000 000 → 0.08 GiB per array).
    pub elements: u64,
    /// Timed repetitions of the kernel cycle (report uses the best).
    pub ntimes: u32,
    /// Cache-line fetches (MSHRs) kept in flight by the issuing core(s) +
    /// hardware prefetchers. At the default 128 this saturates the NIC
    /// transaction window, which is what pins the bandwidth-delay product.
    pub mlp: usize,
    /// The STREAM scalar.
    pub scalar: f64,
    /// CPU cost per element of loop overhead + FLOPs.
    pub cpu_per_element: Dur,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            elements: 10_000_000,
            ntimes: 2,
            mlp: 128,
            scalar: 3.0,
            cpu_per_element: Dur::ps(300),
        }
    }
}

impl StreamConfig {
    /// A scaled-down configuration for unit tests.
    pub fn tiny() -> StreamConfig {
        StreamConfig {
            elements: 4096,
            ntimes: 1,
            ..StreamConfig::default()
        }
    }
}

/// Per-kernel result (STREAM reporting convention: best timed run).
#[derive(Clone, Copy, Debug)]
pub struct KernelResult {
    pub kernel: Kernel,
    pub best_time: Dur,
    pub avg_time: Dur,
    pub bandwidth_gib_s: f64,
}

/// Full STREAM report.
#[derive(Clone, Debug)]
pub struct StreamReport {
    pub copy: KernelResult,
    pub scale: KernelResult,
    pub add: KernelResult,
    pub triad: KernelResult,
    /// Mean per-access latency of remote (or local) demand misses during
    /// the run — the paper's Fig. 2 metric.
    pub miss_latency_mean: Dur,
    pub miss_latency_p99: Dur,
    /// Did the final arrays match the analytic replay?
    pub verified: bool,
    /// Total simulated time of the whole run.
    pub elapsed: Dur,
}

impl StreamReport {
    pub fn kernel(&self, k: Kernel) -> &KernelResult {
        match k {
            Kernel::Copy => &self.copy,
            Kernel::Scale => &self.scale,
            Kernel::Add => &self.add,
            Kernel::Triad => &self.triad,
        }
    }

    /// The triad bandwidth — the headline STREAM figure.
    pub fn best_bandwidth_gib_s(&self) -> f64 {
        KERNELS
            .iter()
            .map(|&k| self.kernel(k).bandwidth_gib_s)
            .fold(0.0, f64::max)
    }
}

/// The three arrays, allocated by the caller in local or remote memory.
#[derive(Clone, Copy, Debug)]
pub struct StreamArrays {
    pub a: SimVec<f64>,
    pub b: SimVec<f64>,
    pub c: SimVec<f64>,
}

impl StreamArrays {
    pub fn alloc(arena: &mut Arena, elements: u64) -> StreamArrays {
        StreamArrays {
            a: arena.alloc_vec(elements),
            b: arena.alloc_vec(elements),
            c: arena.alloc_vec(elements),
        }
    }

    /// STREAM's canonical initialization (untimed, as in the original's
    /// unmeasured init loop).
    pub fn init<R: RemoteBackend>(&self, sys: &mut MemSystem<R>) {
        for j in 0..self.a.len() {
            self.a.set_raw(sys, j, 1.0);
            self.b.set_raw(sys, j, 2.0);
            self.c.set_raw(sys, j, 0.0);
        }
    }
}

/// Phase cursor: (repetition, kernel index, line index).
#[derive(Clone, Copy, Debug)]
struct Cursor {
    rep: u32,
    kernel: usize,
    line: u64,
}

/// A STREAM instance advancing one cache line per step.
pub struct StreamProcess {
    cfg: StreamConfig,
    arrays: StreamArrays,
    cursor: Cursor,
    lines: u64,
    elems_per_line: u64,
    ring: IssueRing,
    cpu_time: Time,
    kernel_start: Time,
    /// (kernel, rep) -> elapsed
    timings: Vec<(Kernel, u32, Dur)>,
    done: bool,
    started_at: Time,
}

impl StreamProcess {
    /// `start` is the virtual time the instance begins.
    pub fn new(cfg: StreamConfig, arrays: StreamArrays, start: Time) -> StreamProcess {
        assert!(cfg.elements > 0 && cfg.ntimes > 0);
        let elems_per_line = 128 / 8;
        StreamProcess {
            lines: cfg.elements.div_ceil(elems_per_line),
            elems_per_line,
            ring: IssueRing::new(cfg.mlp),
            cpu_time: start,
            kernel_start: start,
            timings: Vec::new(),
            cursor: Cursor {
                rep: 0,
                kernel: 0,
                line: 0,
            },
            done: false,
            started_at: start,
            cfg,
            arrays,
        }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Virtual time of the next access this instance will issue.
    pub fn next_time(&self) -> Time {
        if self.done {
            Time::NEVER
        } else {
            self.ring.issue_at(self.cpu_time)
        }
    }

    /// Process one cache line of the current kernel.
    pub fn step_on<R: RemoteBackend>(&mut self, sys: &mut MemSystem<R>) -> Step {
        debug_assert!(!self.done);
        let kernel = KERNELS[self.cursor.kernel];
        // Re-asserted every step (not just at kernel boundaries) so that
        // interleaved instances time-sharing one engine thread each
        // attribute their accesses to their own current kernel.
        thymesim_telemetry::phase_begin(kernel.name(), None);
        let j0 = self.cursor.line * self.elems_per_line;
        let j1 = (j0 + self.elems_per_line).min(self.cfg.elements);
        let s = self.cfg.scalar;
        let StreamArrays { a, b, c } = self.arrays;

        // The kernel's timed accesses per element, in issue order. All of
        // an iteration's accesses issue together: an out-of-order core
        // starts the loads in parallel and the store queue launches the
        // RFO without waiting for operand values — nothing in a STREAM
        // iteration is data-dependent on memory. Only misses allocate
        // MSHR slots in the issue ring.
        let (roles, nr): ([(SimVec<f64>, bool); 3], usize) = match kernel {
            Kernel::Copy => ([(a, false), (c, true), (c, true)], 2),
            Kernel::Scale => ([(c, false), (b, true), (b, true)], 2),
            Kernel::Add => ([(a, false), (b, false), (c, true)], 3),
            Kernel::Triad => ([(b, false), (c, false), (a, true)], 3),
        };

        // Execute-once-then-stall: the first element of the line-step
        // runs the full memory model once per array and keeps the line
        // handles; once every handle is verified resident (misses in the
        // executing element can evict a sibling only when the arrays
        // alias one set and the associativity is tiny), the remaining
        // same-line elements replay as stalls — identical counters and
        // LRU evolution, none of the lookup work.
        let mut handles = [None::<thymesim_mem::LineTouch>; 3];
        let mut fast = false;
        let mut j = j0;
        while j < j1 {
            let at = self.ring.issue_at(self.cpu_time);
            if fast {
                // Per-element stall path, kept for tracing runs: the
                // bulk replay below skips per-access telemetry probes.
                for (k, &(_, write)) in roles[..nr].iter().enumerate() {
                    sys.retouch(at, handles[k].expect("fast path without handle"), write);
                }
            } else {
                for (k, &(v, write)) in roles[..nr].iter().enumerate() {
                    let (done, missed, touch) = sys.access_entry(at, v.addr(j), write);
                    if missed {
                        self.ring.push(done);
                    }
                    handles[k] = Some(touch);
                }
                fast = roles[..nr].iter().enumerate().all(|(k, &(v, _))| {
                    sys.line_resident(v.addr(j), handles[k].expect("handle just stored"))
                });
                if fast && !thymesim_telemetry::enabled() {
                    // Bulk stall for the rest of the line: the remaining
                    // elements are all guaranteed hits, which never push
                    // the issue ring, so their issue times collapse —
                    // the next issues at `issue_at` of the post-miss
                    // clock and every later one exactly
                    // `cpu_per_element` after its predecessor. Replay
                    // the cache/counter evolution in closed form and do
                    // the data ops as bulk runs (no read-after-write
                    // hazards: every kernel's source and destination
                    // arrays are disjoint allocations).
                    let n = (j1 - j) as usize; // this element + stalls
                    let stalls = (j1 - j) - 1;
                    if stalls > 0 {
                        let mut group = [(handles[0].expect("fast path without handle"), false); 3];
                        for (k, &(_, write)) in roles[..nr].iter().enumerate() {
                            group[k] = (handles[k].expect("fast path without handle"), write);
                        }
                        sys.retouch_rounds(&group[..nr], stalls);
                    }
                    let (mut x, mut y) = ([0f64; 16], [0f64; 16]);
                    match kernel {
                        Kernel::Copy => {
                            a.get_raw_run(sys, j, &mut x[..n]);
                            c.set_raw_run(sys, j, &x[..n]);
                        }
                        Kernel::Scale => {
                            c.get_raw_run(sys, j, &mut x[..n]);
                            for v in &mut x[..n] {
                                // Keep the scalar path's `s * cv` operand
                                // order; `*v *= s` would compute `cv * s`.
                                #[allow(clippy::assign_op_pattern)]
                                {
                                    *v = s * *v;
                                }
                            }
                            b.set_raw_run(sys, j, &x[..n]);
                        }
                        Kernel::Add => {
                            a.get_raw_run(sys, j, &mut x[..n]);
                            b.get_raw_run(sys, j, &mut y[..n]);
                            for (v, w) in x[..n].iter_mut().zip(&y[..n]) {
                                *v += w;
                            }
                            c.set_raw_run(sys, j, &x[..n]);
                        }
                        Kernel::Triad => {
                            b.get_raw_run(sys, j, &mut x[..n]);
                            c.get_raw_run(sys, j, &mut y[..n]);
                            for (v, w) in x[..n].iter_mut().zip(&y[..n]) {
                                *v += s * w;
                            }
                            a.set_raw_run(sys, j, &x[..n]);
                        }
                    }
                    // This element's clock step, then the stalled run's
                    // telescoped recurrence (`at = issue_at(cpu);
                    // cpu = at + cpe`, with the ring frozen).
                    self.cpu_time = self.cpu_time.max2(at) + self.cfg.cpu_per_element;
                    if stalls > 0 {
                        let at2 = self.ring.issue_at(self.cpu_time);
                        self.cpu_time = at2 + self.cfg.cpu_per_element * stalls;
                    }
                    break;
                }
            }
            match kernel {
                Kernel::Copy => {
                    let av = a.get_raw(sys, j);
                    c.set_raw(sys, j, av);
                }
                Kernel::Scale => {
                    let cv = c.get_raw(sys, j);
                    b.set_raw(sys, j, s * cv);
                }
                Kernel::Add => {
                    let (av, bv) = (a.get_raw(sys, j), b.get_raw(sys, j));
                    c.set_raw(sys, j, av + bv);
                }
                Kernel::Triad => {
                    let (bv, cv) = (b.get_raw(sys, j), c.get_raw(sys, j));
                    a.set_raw(sys, j, bv + s * cv);
                }
            }
            self.cpu_time = self.cpu_time.max2(at) + self.cfg.cpu_per_element;
            j += 1;
        }

        // Advance the cursor.
        self.cursor.line += 1;
        if self.cursor.line == self.lines {
            self.cursor.line = 0;
            // Kernel complete: wait for the window to drain.
            let end = self.ring.horizon().max2(self.cpu_time);
            self.timings
                .push((kernel, self.cursor.rep, end - self.kernel_start));
            thymesim_telemetry::span_arg(
                "workload",
                kernel.name(),
                self.kernel_start,
                end,
                "rep",
                self.cursor.rep as u64,
            );
            self.cpu_time = end;
            self.ring.reset(end);
            self.kernel_start = end;
            self.cursor.kernel += 1;
            if self.cursor.kernel == KERNELS.len() {
                self.cursor.kernel = 0;
                self.cursor.rep += 1;
                if self.cursor.rep == self.cfg.ntimes {
                    self.done = true;
                    thymesim_telemetry::phase_end();
                    return Step::Done;
                }
            }
        }
        Step::Continue
    }

    /// Current virtual time of this instance.
    pub fn now(&self) -> Time {
        self.cpu_time
    }

    /// Bytes the instance has nominally moved so far (STREAM accounting).
    pub fn bytes_moved(&self) -> u64 {
        self.timings
            .iter()
            .map(|(k, _, _)| k.bytes_per_element() * self.cfg.elements)
            .sum()
    }

    /// Mean bandwidth over completed kernels, GiB/s (STREAM accounting).
    pub fn mean_bandwidth_gib_s(&self) -> f64 {
        let total: Dur = self.timings.iter().map(|(_, _, d)| *d).sum();
        if total == Dur::ZERO {
            return 0.0;
        }
        self.bytes_moved() as f64 / total.as_secs_f64() / (1u64 << 30) as f64
    }

    /// Finish the run sequentially on `sys` and produce the report.
    pub fn run_to_completion<R: RemoteBackend>(mut self, sys: &mut MemSystem<R>) -> StreamReport {
        while !self.done {
            self.step_on(sys);
        }
        self.report(sys)
    }

    fn kernel_result(&self, k: Kernel) -> KernelResult {
        let times: Vec<Dur> = self
            .timings
            .iter()
            .filter(|(kk, _, _)| *kk == k)
            .map(|(_, _, d)| *d)
            .collect();
        assert!(!times.is_empty(), "kernel {k:?} never ran");
        let best = *times.iter().min().unwrap();
        let avg = Dur::ps(times.iter().map(|d| d.as_ps()).sum::<u64>() / times.len() as u64);
        let bytes = k.bytes_per_element() * self.cfg.elements;
        KernelResult {
            kernel: k,
            best_time: best,
            avg_time: avg,
            bandwidth_gib_s: bytes as f64 / best.as_secs_f64() / (1u64 << 30) as f64,
        }
    }

    /// Produce the final report (the process must be done).
    pub fn report<R: RemoteBackend>(&self, sys: &mut MemSystem<R>) -> StreamReport {
        assert!(self.done, "report requested before the run finished");
        let lat = &sys.stats.remote_latency;
        let (mean, p99) = if lat.count() > 0 {
            (lat.mean_dur(), Dur::ps(lat.p99()))
        } else {
            let l = &sys.stats.local_latency;
            (l.mean_dur(), Dur::ps(l.p99()))
        };
        StreamReport {
            copy: self.kernel_result(Kernel::Copy),
            scale: self.kernel_result(Kernel::Scale),
            add: self.kernel_result(Kernel::Add),
            triad: self.kernel_result(Kernel::Triad),
            miss_latency_mean: mean,
            miss_latency_p99: p99,
            verified: self.verify(sys),
            elapsed: self.cpu_time - self.started_at,
        }
    }

    /// STREAM-style verification: replay the kernel cycle on scalars and
    /// compare the arrays (every element must match, all elements equal).
    pub fn verify<R: RemoteBackend>(&self, sys: &MemSystem<R>) -> bool {
        let (mut ea, mut eb, mut ec) = (1.0f64, 2.0f64, 0.0f64);
        for _ in 0..self.cfg.ntimes {
            ec = ea;
            eb = self.cfg.scalar * ec;
            ec = ea + eb;
            ea = eb + self.cfg.scalar * ec;
        }
        // Sample across the arrays (full scan at small sizes).
        let n = self.cfg.elements;
        let stride = (n / 1024).max(1);
        let mut j = 0;
        while j < n {
            let av = self.arrays.a.get_raw(sys, j);
            let bv = self.arrays.b.get_raw(sys, j);
            let cv = self.arrays.c.get_raw(sys, j);
            let ok = (av - ea).abs() < 1e-8 && (bv - eb).abs() < 1e-8 && (cv - ec).abs() < 1e-8;
            if !ok {
                return false;
            }
            j += stride;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{
        shared_dram, Addr, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming,
    };

    fn local_sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(64 << 20, 64 << 20, 128),
            CacheConfig::tiny(), // 256 KiB — smaller than the working set
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    fn run_local(cfg: StreamConfig) -> (StreamReport, MemSystem<NoRemote>) {
        let mut sys = local_sys();
        let mut arena = Arena::new(Addr(0), 64 << 20);
        let arrays = StreamArrays::alloc(&mut arena, cfg.elements);
        arrays.init(&mut sys);
        let p = StreamProcess::new(cfg, arrays, Time::ZERO);
        let report = p.run_to_completion(&mut sys);
        (report, sys)
    }

    #[test]
    fn computes_correct_results() {
        let (report, _) = run_local(StreamConfig::tiny());
        assert!(report.verified, "STREAM validation failed");
    }

    #[test]
    fn all_kernels_report_plausible_bandwidth() {
        let (report, _) = run_local(StreamConfig::tiny());
        for k in KERNELS {
            let r = report.kernel(k);
            assert!(
                r.bandwidth_gib_s > 1.0 && r.bandwidth_gib_s < 200.0,
                "{}: {} GiB/s implausible",
                k.name(),
                r.bandwidth_gib_s
            );
            assert!(r.best_time <= r.avg_time);
        }
    }

    #[test]
    fn add_and_triad_move_more_bytes() {
        assert_eq!(Kernel::Copy.bytes_per_element(), 16);
        assert_eq!(Kernel::Triad.bytes_per_element(), 24);
        // Use a thrash-sized working set so kernel time is memory-bound
        // (with a cache-resident set all kernels cost the same CPU time).
        let mut cfg = StreamConfig::tiny();
        cfg.elements = 65_536;
        let (report, _) = run_local(cfg);
        // More traffic at similar bandwidth → longer kernel time.
        assert!(report.add.best_time > report.copy.best_time);
    }

    #[test]
    fn working_set_thrashes_the_tiny_cache() {
        // 3 × 512 KiB arrays against a 256 KiB cache: every line access
        // must miss once per sweep (the 15 same-line element accesses
        // after it hit), so the per-line miss rate stays near 1.
        let mut cfg = StreamConfig::tiny();
        cfg.elements = 65_536;
        let (_, sys) = run_local(cfg);
        let cs = sys.cache_stats();
        assert!(cs.misses > 0);
        let line_miss_rate = cs.misses as f64 / (cs.accesses() as f64 / 16.0);
        assert!(
            line_miss_rate > 0.5,
            "expected cold lines each sweep, line miss rate {line_miss_rate}"
        );
    }

    #[test]
    fn cache_resident_set_mostly_hits() {
        // 3 × 32 KiB arrays fit in the 256 KiB cache: after the cold
        // sweep, everything hits.
        let mut cfg = StreamConfig::tiny();
        cfg.ntimes = 4;
        let (_, sys) = run_local(cfg);
        let cs = sys.cache_stats();
        assert!(
            cs.hit_rate() > 0.95,
            "resident working set should hit, rate {}",
            cs.hit_rate()
        );
    }

    #[test]
    fn more_repetitions_take_proportionally_longer() {
        let mut cfg = StreamConfig::tiny();
        cfg.elements = 65_536; // thrash-sized: every repetition costs alike
        cfg.ntimes = 1;
        let (r1, _) = run_local(cfg);
        cfg.ntimes = 3;
        let (r3, _) = run_local(cfg);
        let ratio = r3.elapsed.as_secs_f64() / r1.elapsed.as_secs_f64();
        assert!(
            (2.5..3.5).contains(&ratio),
            "3 reps should take ~3x one rep, got {ratio}"
        );
    }

    #[test]
    fn step_granularity_is_one_line() {
        let cfg = StreamConfig::tiny();
        let mut sys = local_sys();
        let mut arena = Arena::new(Addr(0), 64 << 20);
        let arrays = StreamArrays::alloc(&mut arena, cfg.elements);
        arrays.init(&mut sys);
        let mut p = StreamProcess::new(cfg, arrays, Time::ZERO);
        let before = p.next_time();
        assert_eq!(before, Time::ZERO);
        let st = p.step_on(&mut sys);
        assert_eq!(st, Step::Continue);
        // 16 copy elements: 16 reads + 16 writes.
        assert_eq!(sys.stats.reads, 16);
        assert_eq!(sys.stats.writes, 16);
        assert!(p.next_time() > Time::ZERO);
    }

    #[test]
    fn starts_at_given_time() {
        let cfg = StreamConfig::tiny();
        let mut sys = local_sys();
        let mut arena = Arena::new(Addr(0), 64 << 20);
        let arrays = StreamArrays::alloc(&mut arena, cfg.elements);
        arrays.init(&mut sys);
        let start = Time::ms(5);
        let p = StreamProcess::new(cfg, arrays, start);
        assert_eq!(p.next_time(), start);
        let report = p.run_to_completion(&mut sys);
        assert!(report.elapsed > Dur::ZERO);
    }
}
