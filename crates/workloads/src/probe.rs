//! A pointer-chasing latency probe.
//!
//! STREAM measures *throughput-regime* latency (a full window of
//! outstanding fetches). The probe measures the opposite extreme: a
//! dependent chain of single outstanding loads over a random cyclic
//! permutation — the classic `lat_mem_rd`-style microbenchmark. Together
//! they bracket the latency an application sees at any MLP, and the probe
//! exposes the delay gate's *alignment* behaviour (mean wait ≈ PERIOD/2
//! cycles for isolated accesses) as opposed to its queueing behaviour
//! (≈ window × PERIOD for saturating ones).

use thymesim_mem::{Arena, MemSystem, RemoteBackend, SimVec};
use thymesim_sim::{Dur, Histogram, Time, Xoshiro256};

/// Probe configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ProbeConfig {
    /// Entries in the chase chain; each entry is one cache line.
    pub lines: u64,
    /// Loads to issue (the chain cycles if longer than `lines`).
    pub hops: u64,
    /// CPU cost between dependent loads (address arithmetic).
    pub cpu_per_hop: Dur,
    pub seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            lines: 1 << 16, // 8 MiB footprint at 128 B per line
            hops: 1 << 16,
            cpu_per_hop: Dur::ns(1),
            seed: 0xC0FFEE,
        }
    }
}

impl ProbeConfig {
    pub fn tiny() -> ProbeConfig {
        ProbeConfig {
            lines: 4096,
            hops: 4096,
            ..ProbeConfig::default()
        }
    }

    pub fn footprint_bytes(&self) -> u64 {
        self.lines * 128
    }
}

/// Probe result.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// Mean dependent-load latency (load-to-load time minus CPU).
    pub mean: Dur,
    pub p50: Dur,
    pub p99: Dur,
    /// Full per-hop latency distribution.
    pub histogram: Histogram,
    pub hops: u64,
    /// The chain was a single cycle covering every line.
    pub chain_valid: bool,
}

/// The chase table: line `i` holds the index of the next line.
pub struct ChaseTable {
    next: SimVec<u64>,
}

impl ChaseTable {
    /// Build a single-cycle random permutation (Sattolo's algorithm) so
    /// the chain visits every line exactly once per lap — no short cycles
    /// that would fit in the cache by accident.
    pub fn build<R: RemoteBackend>(
        cfg: &ProbeConfig,
        sys: &mut MemSystem<R>,
        arena: &mut Arena,
    ) -> ChaseTable {
        assert!(cfg.lines >= 2);
        let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
        let mut perm: Vec<u64> = (0..cfg.lines).collect();
        // Sattolo: single-cycle permutation.
        for i in (1..perm.len()).rev() {
            let j = rng.below(i as u64) as usize;
            perm.swap(i, j);
        }
        // next[perm[k]] = perm[k+1]
        let next: SimVec<u64> = arena.alloc_vec(cfg.lines * 16); // one line per entry
        for k in 0..cfg.lines as usize {
            let from = perm[k];
            let to = perm[(k + 1) % perm.len()];
            next.set_raw(sys, from * 16, to);
        }
        ChaseTable { next }
    }

    /// Verify the chain is one full cycle.
    pub fn validate<R: RemoteBackend>(&self, sys: &MemSystem<R>, lines: u64) -> bool {
        let mut seen = vec![false; lines as usize];
        let mut cur = 0u64;
        for _ in 0..lines {
            if seen[cur as usize] {
                return false;
            }
            seen[cur as usize] = true;
            cur = self.next.get_raw(sys, cur * 16);
            if cur >= lines {
                return false;
            }
        }
        cur == 0 && seen.iter().all(|&s| s)
    }

    /// One timed hop: read the next-pointer at `cur`, returning
    /// `(next index, completion time)`.
    #[inline]
    pub fn read_hop<R: RemoteBackend>(
        &self,
        sys: &mut MemSystem<R>,
        t: Time,
        cur: u64,
    ) -> (u64, Time) {
        self.next.get(sys, t, cur * 16)
    }

    /// Run the timed chase.
    pub fn run<R: RemoteBackend>(
        &self,
        cfg: &ProbeConfig,
        sys: &mut MemSystem<R>,
        start: Time,
    ) -> ProbeReport {
        let chain_valid = self.validate(sys, cfg.lines);
        let mut hist = Histogram::new();
        let mut t = start;
        let mut cur = 0u64;
        thymesim_telemetry::phase_begin("probe.chase", None);
        for _ in 0..cfg.hops {
            let (nxt, done) = self.read_hop(sys, t, cur);
            hist.record((done - t).as_ps());
            t = done + cfg.cpu_per_hop;
            cur = nxt;
        }
        thymesim_telemetry::phase_end();
        thymesim_telemetry::span_arg("workload", "probe.chase", start, t, "hops", cfg.hops);
        ProbeReport {
            mean: hist.mean_dur(),
            p50: Dur::ps(hist.p50()),
            p99: Dur::ps(hist.p99()),
            histogram: hist,
            hops: cfg.hops,
            chain_valid,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{
        shared_dram, Addr, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming,
    };

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(256 << 20, 256 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    #[test]
    fn chain_is_one_full_cycle() {
        let cfg = ProbeConfig::tiny();
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let table = ChaseTable::build(&cfg, &mut s, &mut arena);
        assert!(table.validate(&s, cfg.lines));
    }

    #[test]
    fn thrash_sized_chase_measures_dram_latency() {
        // 4096 lines × 128 B entry stride... each entry on its own line:
        // footprint 4096 × 128 = 512 KiB > 256 KiB cache → mostly misses.
        let cfg = ProbeConfig::tiny();
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let table = ChaseTable::build(&cfg, &mut s, &mut arena);
        let report = table.run(&cfg, &mut s, Time::ZERO);
        assert!(report.chain_valid);
        // Local DRAM ~121 ns; with some residual hits the mean sits between
        // the LLC and DRAM latencies.
        let mean_ns = report.mean.as_ns_f64();
        assert!(
            (40.0..140.0).contains(&mean_ns),
            "local chase mean {mean_ns} ns"
        );
        assert!(report.p99 >= report.p50);
    }

    #[test]
    fn cache_sized_chase_hits() {
        let mut cfg = ProbeConfig::tiny();
        cfg.lines = 512; // 64 KiB < 256 KiB cache
        cfg.hops = 4096; // several laps: first lap cold, rest hit
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let table = ChaseTable::build(&cfg, &mut s, &mut arena);
        let report = table.run(&cfg, &mut s, Time::ZERO);
        let mean_ns = report.mean.as_ns_f64();
        assert!(
            mean_ns < 30.0,
            "resident chase should be near the LLC hit time, got {mean_ns} ns"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = ProbeConfig::tiny();
        let run = || {
            let mut s = sys();
            let mut arena = Arena::new(Addr(0), 256 << 20);
            let t = ChaseTable::build(&cfg, &mut s, &mut arena);
            t.run(&cfg, &mut s, Time::ZERO).mean
        };
        assert_eq!(run(), run());
    }
}
