//! Issue-side bookkeeping shared by the workloads: an MSHR-style model
//! of a core (or SMT context) that can keep `cap` cache-line fetches
//! outstanding, plus the key-popularity sampler shared by the closed-loop
//! memtier client and the open-loop serving engine. Streaming kernels use
//! a large window (hardware prefetch saturates the NIC credits),
//! pointer-chasing workloads a small one — the distinction that drives
//! the paper's Redis-vs-Graph500 divergence.
//!
//! Only *misses* occupy slots; hits retire immediately in the cache.

use std::collections::VecDeque;
use thymesim_sim::{Time, Xoshiro256};

/// A sliding window of in-flight access completion times.
#[derive(Clone, Debug)]
pub struct IssueRing {
    ring: VecDeque<Time>,
    cap: usize,
    horizon: Time,
}

impl IssueRing {
    pub fn new(cap: usize) -> IssueRing {
        IssueRing {
            ring: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            horizon: Time::ZERO,
        }
    }

    /// Earliest time a new access may issue, given the core is ready at
    /// `cpu_ready`.
    pub fn issue_at(&self, cpu_ready: Time) -> Time {
        if self.ring.len() < self.cap {
            cpu_ready
        } else {
            cpu_ready.max2(*self.ring.front().expect("ring full"))
        }
    }

    /// Record a completed issue (retires the oldest slot when full).
    pub fn push(&mut self, done: Time) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(done);
        self.horizon = self.horizon.max2(done);
    }

    /// Latest completion observed — the drain point of the window.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Forget all in-flight accesses (barrier) and restart at `at`.
    pub fn reset(&mut self, at: Time) {
        self.ring.clear();
        self.horizon = at;
    }
}

/// Key-selection distribution (memtier supports uniform and skewed
/// patterns; skew determines how much of the working set stays hot and
/// therefore LLC-resident).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-distributed popularity with the given exponent (~0.99 is the
    /// classic web-cache skew).
    Zipf { exponent: f64 },
}

/// A sampler for a key distribution, shared by the closed-loop memtier
/// client (`kv::run_memtier`) and the open-loop serving engine so both
/// draw from identical popularity curves.
pub struct KeySampler {
    /// Cumulative popularity over key ranks; empty for uniform.
    cdf: Vec<f64>,
    keys: u64,
}

impl KeySampler {
    pub fn new(dist: KeyDist, keys: u64) -> KeySampler {
        let cdf = match dist {
            KeyDist::Uniform => Vec::new(),
            KeyDist::Zipf { exponent } => {
                assert!(exponent > 0.0, "Zipf exponent must be positive");
                let mut acc = 0.0;
                let mut cdf = Vec::with_capacity(keys as usize);
                for rank in 1..=keys {
                    acc += 1.0 / (rank as f64).powf(exponent);
                    cdf.push(acc);
                }
                let total = acc;
                for v in cdf.iter_mut() {
                    *v /= total;
                }
                cdf
            }
        };
        KeySampler { cdf, keys }
    }

    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.cdf.is_empty() {
            rng.below(self.keys)
        } else {
            let u = rng.next_f64();
            // Rank by popularity; the store's keys are already hashed, so
            // rank == key id is fine (no accidental spatial locality).
            self.cdf.partition_point(|&c| c < u) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_is_heavily_skewed() {
        let sampler = KeySampler::new(KeyDist::Zipf { exponent: 1.0 }, 10_000);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut top100 = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if sampler.sample(&mut rng) < 100 {
                top100 += 1;
            }
        }
        // Under Zipf(1.0) over 10k keys, the top-100 ranks carry ~53% of
        // the mass; uniform would give 1%.
        let share = top100 as f64 / n as f64;
        assert!((0.4..0.65).contains(&share), "top-100 share {share}");
    }

    #[test]
    fn issues_freely_until_full() {
        let r = IssueRing::new(2);
        assert_eq!(r.issue_at(Time::ns(5)), Time::ns(5));
    }

    #[test]
    fn full_ring_waits_for_oldest() {
        let mut r = IssueRing::new(2);
        r.push(Time::ns(100));
        r.push(Time::ns(200));
        assert_eq!(r.issue_at(Time::ZERO), Time::ns(100));
        r.push(Time::ns(300)); // retires the 100
        assert_eq!(r.issue_at(Time::ZERO), Time::ns(200));
    }

    #[test]
    fn horizon_tracks_max_completion() {
        let mut r = IssueRing::new(4);
        r.push(Time::ns(50));
        r.push(Time::ns(20));
        assert_eq!(r.horizon(), Time::ns(50));
        r.reset(Time::us(1));
        assert_eq!(r.horizon(), Time::us(1));
        assert_eq!(r.issue_at(Time::ZERO), Time::ZERO);
    }
}
