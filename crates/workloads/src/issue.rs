//! Issue-window bookkeeping shared by the workloads: an MSHR-style model
//! of a core (or SMT context) that can keep `cap` cache-line fetches
//! outstanding. Streaming kernels use a large window (hardware prefetch
//! saturates the NIC credits), pointer-chasing workloads a small one —
//! the distinction that drives the paper's Redis-vs-Graph500 divergence.
//!
//! Only *misses* occupy slots; hits retire immediately in the cache.

use std::collections::VecDeque;
use thymesim_sim::Time;

/// A sliding window of in-flight access completion times.
#[derive(Clone, Debug)]
pub struct IssueRing {
    ring: VecDeque<Time>,
    cap: usize,
    horizon: Time,
}

impl IssueRing {
    pub fn new(cap: usize) -> IssueRing {
        IssueRing {
            ring: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            horizon: Time::ZERO,
        }
    }

    /// Earliest time a new access may issue, given the core is ready at
    /// `cpu_ready`.
    pub fn issue_at(&self, cpu_ready: Time) -> Time {
        if self.ring.len() < self.cap {
            cpu_ready
        } else {
            cpu_ready.max2(*self.ring.front().expect("ring full"))
        }
    }

    /// Record a completed issue (retires the oldest slot when full).
    pub fn push(&mut self, done: Time) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(done);
        self.horizon = self.horizon.max2(done);
    }

    /// Latest completion observed — the drain point of the window.
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// Forget all in-flight accesses (barrier) and restart at `at`.
    pub fn reset(&mut self, at: Time) {
        self.ring.clear();
        self.horizon = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_freely_until_full() {
        let r = IssueRing::new(2);
        assert_eq!(r.issue_at(Time::ns(5)), Time::ns(5));
    }

    #[test]
    fn full_ring_waits_for_oldest() {
        let mut r = IssueRing::new(2);
        r.push(Time::ns(100));
        r.push(Time::ns(200));
        assert_eq!(r.issue_at(Time::ZERO), Time::ns(100));
        r.push(Time::ns(300)); // retires the 100
        assert_eq!(r.issue_at(Time::ZERO), Time::ns(200));
    }

    #[test]
    fn horizon_tracks_max_completion() {
        let mut r = IssueRing::new(4);
        r.push(Time::ns(50));
        r.push(Time::ns(20));
        assert_eq!(r.horizon(), Time::ns(50));
        r.reset(Time::us(1));
        assert_eq!(r.horizon(), Time::us(1));
        assert_eq!(r.issue_at(Time::ZERO), Time::ZERO);
    }
}
