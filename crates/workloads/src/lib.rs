//! # thymesim-workloads
//!
//! The paper's three workloads, implemented as timing-annotated *real*
//! programs over `thymesim-mem`:
//!
//! * [`stream`] — STREAM's copy/scale/add/triad kernels (§IV-A/B),
//!   resumable per cache line so instances can contend (§IV-E);
//! * [`kv`] — a Redis-like hash-table store under a memtier-style
//!   closed-loop client with explicit network-stack costs (§IV-D);
//! * [`graph500`] — Kronecker generation, timed BFS and delta-stepping
//!   SSSP with Graph500-style validation (§IV-C/D);
//! * [`issue`] — the shared issue-window model (a core's MLP), the knob
//!   that separates prefetchable streaming from dependent pointer chasing.

pub mod graph500;
pub mod issue;
pub mod kv;
pub mod pagerank;
pub mod probe;
pub mod stream;
pub mod trace;

pub use graph500::{Graph500Config, Graph500Report};
pub use issue::{IssueRing, KeyDist, KeySampler};
pub use kv::{KvConfig, KvReport, KvStore};
pub use pagerank::{pagerank, PageRankConfig, PageRankReport, PageRankState};
pub use probe::{ChaseTable, ProbeConfig, ProbeReport};
pub use stream::{Kernel, StreamArrays, StreamConfig, StreamProcess, StreamReport, KERNELS};
pub use trace::{
    parse_trace, random_trace, replay, strided_trace, ReplayConfig, ReplayReport, TraceOp,
};
