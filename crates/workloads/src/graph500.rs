//! The Graph500 benchmark: Kronecker graph generation, timed BFS and
//! SSSP kernels, and result validation.
//!
//! The paper runs problem scale 20 with edgefactor 16 (≈1 GB working set)
//! and reports job completion time. Graph traversal is the antithesis of
//! STREAM: data-dependent, low-locality reads with little prefetchability,
//! which is why its degradation under injected delay is catastrophic
//! (Table I: ×2209 at PERIOD=1000) while Redis barely notices.
//!
//! The kernels run *for real*: BFS produces a parent tree and SSSP a
//! distance array, both validated against untimed host-side reference
//! computations.

use crate::issue::IssueRing;
use thymesim_mem::{Arena, MemSystem, RemoteBackend, SimVec};
use thymesim_sim::{Dur, Time, Xoshiro256};

/// Kronecker initiator probabilities from the Graph500 specification.
const KRON_A: f64 = 0.57;
const KRON_B: f64 = 0.19;
const KRON_C: f64 = 0.19;

/// Sentinel for "no parent / unreached".
pub const NO_PARENT: u32 = u32::MAX;
/// Sentinel distance.
pub const INF: u32 = u32::MAX;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct Graph500Config {
    /// log2 of the vertex count (paper: 20).
    pub scale: u32,
    /// Edges per vertex (paper: 16).
    pub edgefactor: u32,
    /// Logical cores traversing in parallel (the AC922 exposes 128 SMT
    /// threads; the reference sequential code uses 1).
    pub cores: u32,
    /// Outstanding accesses per core: small — traversal is data-dependent.
    pub mlp_per_core: usize,
    /// BFS/SSSP roots per run (Graph500 runs 64; we default lower and
    /// scale in the harness).
    pub roots: u32,
    /// RNG seed for generation and root selection.
    pub seed: u64,
    /// CPU work per traversed edge (BFS).
    pub cpu_per_edge: Dur,
    /// Extra CPU work per relaxation (SSSP does arithmetic + compare).
    pub cpu_per_relax: Dur,
    /// Maximum edge weight for SSSP (uniform in `1..=max_weight`).
    pub max_weight: u32,
    /// Delta-stepping bucket width.
    pub delta: u32,
}

impl Default for Graph500Config {
    fn default() -> Self {
        Graph500Config {
            scale: 20,
            edgefactor: 16,
            cores: 128,
            mlp_per_core: 2,
            roots: 4,
            seed: 0x6261_7265,
            cpu_per_edge: Dur::ns(2),
            cpu_per_relax: Dur::ns(8),
            max_weight: 255,
            delta: 32,
        }
    }
}

impl Graph500Config {
    /// The fully threaded configuration used for the Table I extreme-delay
    /// runs: 128 SMT contexts keep the NIC window saturated.
    pub fn parallel() -> Graph500Config {
        Graph500Config::default()
    }

    /// The moderate-concurrency reference configuration used for the
    /// Fig. 5 sweep (see DESIGN.md §5 on the two Graph500 operating
    /// points implied by the paper).
    pub fn reference() -> Graph500Config {
        Graph500Config {
            cores: 4,
            mlp_per_core: 2,
            ..Graph500Config::default()
        }
    }

    /// Small instance for tests.
    pub fn tiny() -> Graph500Config {
        Graph500Config {
            scale: 10,
            edgefactor: 8,
            cores: 4,
            roots: 2,
            ..Graph500Config::default()
        }
    }

    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    pub fn edges(&self) -> u64 {
        self.vertices() * self.edgefactor as u64
    }
}

/// The graph in CSR form, living in simulated memory.
pub struct CsrGraph {
    pub n: u64,
    /// Directed entry count (2 × undirected edges).
    pub m2: u64,
    pub xadj: SimVec<u64>,
    pub adj: SimVec<u32>,
    pub weights: SimVec<u32>,
}

/// Generate a Kronecker edge list per the Graph500 reference (including
/// the vertex and edge permutations that de-correlate ids from degrees).
pub fn kronecker_edges(cfg: &Graph500Config) -> Vec<(u32, u32)> {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let n = cfg.vertices();
    let m = cfg.edges();
    let ab = KRON_A + KRON_B;
    let c_norm = KRON_C / (1.0 - ab);
    let a_norm = KRON_A / ab;

    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut i, mut j) = (0u64, 0u64);
        for b in 0..cfg.scale {
            let ii = rng.chance(ab);
            let jj = if ii {
                rng.chance(a_norm)
            } else {
                rng.chance(c_norm)
            };
            // The spec's noise-free quadrant walk: high bit first.
            let bit = 1u64 << (cfg.scale - 1 - b);
            if !ii {
                i |= bit;
            }
            if !jj {
                j |= bit;
            }
        }
        edges.push((i as u32, j as u32));
    }

    // Permute vertex labels.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    for e in edges.iter_mut() {
        *e = (perm[e.0 as usize], perm[e.1 as usize]);
    }
    // Permute edge order.
    rng.shuffle(&mut edges);
    edges
}

/// Which CSR array, for per-array placement policies (page-migration
/// studies put the hot, small arrays in local memory).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphArray {
    Xadj,
    Adj,
    Weights,
    /// The output array (BFS parent tree / SSSP distances).
    Out,
}

/// Per-array placement: `true` = remote (disaggregated) memory.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct GraphPlacement {
    pub xadj_remote: bool,
    pub adj_remote: bool,
    pub weights_remote: bool,
    pub out_remote: bool,
}

impl GraphPlacement {
    pub fn all_remote() -> GraphPlacement {
        GraphPlacement {
            xadj_remote: true,
            adj_remote: true,
            weights_remote: true,
            out_remote: true,
        }
    }
    pub fn all_local() -> GraphPlacement {
        GraphPlacement {
            xadj_remote: false,
            adj_remote: false,
            weights_remote: false,
            out_remote: false,
        }
    }
    pub fn remote(self, a: GraphArray) -> bool {
        match a {
            GraphArray::Xadj => self.xadj_remote,
            GraphArray::Adj => self.adj_remote,
            GraphArray::Weights => self.weights_remote,
            GraphArray::Out => self.out_remote,
        }
    }
}

/// Build the CSR with per-array placement across two arenas.
pub fn build_csr_placed<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    local: &mut Arena,
    remote: &mut Arena,
    placement: GraphPlacement,
) -> CsrGraph {
    let edges = kronecker_edges(cfg);
    let n = cfg.vertices();
    let m2 = edges.len() as u64 * 2;

    let mut degree = vec![0u64; n as usize];
    for &(u, v) in &edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let xadj: SimVec<u64> = if placement.xadj_remote {
        remote.alloc_vec(n + 1)
    } else {
        local.alloc_vec(n + 1)
    };
    let adj: SimVec<u32> = if placement.adj_remote {
        remote.alloc_vec(m2)
    } else {
        local.alloc_vec(m2)
    };
    let weights: SimVec<u32> = if placement.weights_remote {
        remote.alloc_vec(m2)
    } else {
        local.alloc_vec(m2)
    };

    fill_csr(cfg, sys, &edges, &degree, &xadj, &adj, &weights);
    CsrGraph {
        n,
        m2,
        xadj,
        adj,
        weights,
    }
}

/// Build the CSR in simulated memory (untimed — graph construction is not
/// part of the timed kernels, as in the reference benchmark).
pub fn build_csr<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    arena: &mut Arena,
) -> CsrGraph {
    let edges = kronecker_edges(cfg);
    let n = cfg.vertices();
    let m2 = edges.len() as u64 * 2;

    let mut degree = vec![0u64; n as usize];
    for &(u, v) in &edges {
        degree[u as usize] += 1;
        degree[v as usize] += 1;
    }
    let xadj: SimVec<u64> = arena.alloc_vec(n + 1);
    let adj: SimVec<u32> = arena.alloc_vec(m2);
    let weights: SimVec<u32> = arena.alloc_vec(m2);
    fill_csr(cfg, sys, &edges, &degree, &xadj, &adj, &weights);
    CsrGraph {
        n,
        m2,
        xadj,
        adj,
        weights,
    }
}

/// Populate CSR arrays from an edge list (untimed).
fn fill_csr<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    edges: &[(u32, u32)],
    degree: &[u64],
    xadj: &SimVec<u64>,
    adj: &SimVec<u32>,
    weights: &SimVec<u32>,
) {
    let n = cfg.vertices();
    let mut offset = 0u64;
    let mut cursor = vec![0u64; n as usize];
    for v in 0..n as usize {
        xadj.set_raw(sys, v as u64, offset);
        cursor[v] = offset;
        offset += degree[v];
    }
    xadj.set_raw(sys, n, offset);

    let mut wrng = Xoshiro256::seed_from_u64(cfg.seed ^ 0x057A_71C5);
    let put = |sys: &mut MemSystem<R>, cursor: &mut [u64], from: u32, to: u32| {
        let slot = cursor[from as usize];
        adj.set_raw(sys, slot, to);
        cursor[from as usize] += 1;
        slot
    };
    for &(u, v) in edges {
        let w = 1 + wrng.next_u32() % cfg.max_weight;
        let s1 = put(sys, &mut cursor, u, v);
        let s2 = put(sys, &mut cursor, v, u);
        weights.set_raw(sys, s1, w);
        weights.set_raw(sys, s2, w);
    }
}

/// Pick `roots` distinct vertices with non-zero degree (Graph500 rule).
pub fn pick_roots<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &MemSystem<R>,
    g: &CsrGraph,
) -> Vec<u32> {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed ^ 0x0070_0075);
    let mut roots = Vec::new();
    let mut guard = 0;
    while roots.len() < cfg.roots as usize {
        guard += 1;
        assert!(
            guard < 1_000_000,
            "could not find enough non-isolated roots"
        );
        let v = rng.below(g.n) as u32;
        let lo = g.xadj.get_raw(sys, v as u64);
        let hi = g.xadj.get_raw(sys, v as u64 + 1);
        if hi > lo && !roots.contains(&v) {
            roots.push(v);
        }
    }
    roots
}

/// Per-run kernel outcome.
#[derive(Clone, Debug)]
pub struct TraversalRun {
    pub root: u32,
    pub elapsed: Dur,
    pub edges_traversed: u64,
    pub reached: u64,
}

/// Aggregate report for a set of roots.
#[derive(Clone, Debug)]
pub struct Graph500Report {
    pub runs: Vec<TraversalRun>,
    /// Sum of per-root kernel times — the job-completion-time metric.
    pub total_time: Dur,
    /// Traversed edges per second (Graph500's TEPS), harmonic style.
    pub mean_teps: f64,
    pub validated: bool,
}

impl Graph500Report {
    fn from_runs(runs: Vec<TraversalRun>, validated: bool) -> Graph500Report {
        let total: Dur = runs.iter().map(|r| r.elapsed).sum();
        let edges: u64 = runs.iter().map(|r| r.edges_traversed).sum();
        Graph500Report {
            mean_teps: if total == Dur::ZERO {
                0.0
            } else {
                edges as f64 / total.as_secs_f64()
            },
            total_time: total,
            runs,
            validated,
        }
    }
}

/// The gang of logical cores traversing a frontier in lockstep levels.
struct Gang {
    rings: Vec<IssueRing>,
    times: Vec<Time>,
    cpu_per_edge: Dur,
}

impl Gang {
    fn new(cfg: &Graph500Config, start: Time, cpu_per_edge: Dur) -> Gang {
        Gang {
            rings: (0..cfg.cores)
                .map(|_| IssueRing::new(cfg.mlp_per_core))
                .collect(),
            times: vec![start; cfg.cores as usize],
            cpu_per_edge,
        }
    }

    /// Perform one timed access on core `c`, returning its completion.
    #[inline]
    fn access<R: RemoteBackend, F>(&mut self, c: usize, sys: &mut MemSystem<R>, op: F) -> Time
    where
        F: FnOnce(&mut MemSystem<R>, Time) -> Time,
    {
        let at = self.rings[c].issue_at(self.times[c]);
        let done = op(sys, at);
        self.rings[c].push(done);
        self.times[c] = at + self.cpu_per_edge;
        done
    }

    /// The least-loaded core — work-stealing-style balance, essential
    /// because Kronecker degrees are heavy-tailed (a hub vertex would
    /// serialize a whole level under round-robin assignment).
    fn pick_core(&self) -> usize {
        let mut best = 0;
        let mut best_t = self.times[0];
        for (c, &t) in self.times.iter().enumerate().skip(1) {
            if t < best_t {
                best_t = t;
                best = c;
            }
        }
        best
    }

    /// Level barrier: all cores synchronize to the slowest.
    fn barrier(&mut self) -> Time {
        let mut t = Time::ZERO;
        for (r, ct) in self.rings.iter().zip(&self.times) {
            t = t.max2(r.horizon()).max2(*ct);
        }
        for (r, ct) in self.rings.iter_mut().zip(self.times.iter_mut()) {
            r.reset(t);
            *ct = t;
        }
        t
    }
}

/// Timed level-synchronous top-down BFS from `root`.
pub fn bfs<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    g: &CsrGraph,
    parent: &SimVec<u32>,
    root: u32,
    start: Time,
) -> TraversalRun {
    for v in 0..g.n {
        parent.set_raw(sys, v, NO_PARENT);
    }
    let mut gang = Gang::new(cfg, start, cfg.cpu_per_edge);

    parent.set_raw(sys, root as u64, root);
    let mut frontier: Vec<u32> = vec![root];
    let mut edges_traversed = 0u64;
    let mut reached = 1u64;
    let mut end = start;
    let mut level = 0u64;

    while !frontier.is_empty() {
        // Phase marker opens at level *start* so every access of the
        // level attributes to it; the span below closes at the barrier.
        thymesim_telemetry::phase_begin("bfs.level", Some(level));
        let mut next: Vec<u32> = Vec::new();
        // Edge-parallel traversal, as in the reference OpenMP code: hub
        // adjacency lists are chunked across cores (one adj cache line
        // per chunk), or a single heavy-tailed hub would serialize the
        // whole level.
        const EDGE_CHUNK: u64 = 32;
        for &v in frontier.iter() {
            let c = gang.pick_core();
            // Row bounds: two sequential u64 reads (usually one line).
            let mut lo = 0;
            gang.access(c, sys, |s, at| {
                let (x, t) = g.xadj.get(s, at, v as u64);
                lo = x;
                t
            });
            let mut hi = 0;
            gang.access(c, sys, |s, at| {
                let (x, t) = g.xadj.get(s, at, v as u64 + 1);
                hi = x;
                t
            });
            let mut chunk_lo = lo;
            while chunk_lo < hi {
                let chunk_hi = (chunk_lo + EDGE_CHUNK).min(hi);
                let c = gang.pick_core();
                for e in chunk_lo..chunk_hi {
                    edges_traversed += 1;
                    let mut w = 0u32;
                    gang.access(c, sys, |s, at| {
                        let (x, t) = g.adj.get(s, at, e);
                        w = x;
                        t
                    });
                    // Check-and-claim the neighbour (read + cond. write).
                    let mut pw = 0u32;
                    gang.access(c, sys, |s, at| {
                        let (x, t) = parent.get(s, at, w as u64);
                        pw = x;
                        t
                    });
                    if pw == NO_PARENT {
                        gang.access(c, sys, |s, at| parent.set(s, at, w as u64, v));
                        reached += 1;
                        next.push(w);
                    }
                }
                chunk_lo = chunk_hi;
            }
        }
        let lvl_start = end;
        end = gang.barrier();
        thymesim_telemetry::span_arg(
            "workload",
            "bfs.level",
            lvl_start,
            end,
            "frontier",
            frontier.len() as u64,
        );
        if std::env::var("THYMESIM_BFS_TRACE").is_ok() {
            eprintln!(
                "level: frontier {} took {} (cum {})",
                frontier.len(),
                end - lvl_start,
                end - start
            );
        }
        frontier = next;
        level += 1;
    }
    thymesim_telemetry::phase_end();

    thymesim_telemetry::span_arg("workload", "bfs", start, end, "root", root as u64);
    TraversalRun {
        root,
        elapsed: end - start,
        edges_traversed,
        reached,
    }
}

/// Timed delta-stepping SSSP (label-correcting with distance buckets).
pub fn sssp<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    g: &CsrGraph,
    dist: &SimVec<u32>,
    root: u32,
    start: Time,
) -> TraversalRun {
    for v in 0..g.n {
        dist.set_raw(sys, v, INF);
    }
    let mut gang = Gang::new(cfg, start, cfg.cpu_per_relax);

    dist.set_raw(sys, root as u64, 0);
    let mut buckets: Vec<Vec<u32>> = vec![vec![root]];
    let mut edges_traversed = 0u64;
    let mut end = start;
    let delta = cfg.delta.max(1);

    let mut k = 0usize;
    while k < buckets.len() {
        thymesim_telemetry::phase_begin("sssp.bucket", Some(k as u64));
        while let Some(v) = {
            let b = &mut buckets[k];
            b.pop()
        } {
            let dv = dist.get_raw(sys, v as u64);
            if (dv / delta) as usize != k {
                continue; // stale entry, re-bucketed since
            }
            let c = gang.pick_core();
            // Timed read of the settled distance and the row bounds.
            gang.access(c, sys, |s, at| dist.get(s, at, v as u64).1);
            let lo = g.xadj.get_raw(sys, v as u64);
            let hi = g.xadj.get_raw(sys, v as u64 + 1);
            gang.access(c, sys, |s, at| g.xadj.get(s, at, v as u64).1);
            const EDGE_CHUNK: u64 = 32;
            let mut chunk_lo = lo;
            while chunk_lo < hi {
                let chunk_hi = (chunk_lo + EDGE_CHUNK).min(hi);
                let c = gang.pick_core();
                for e in chunk_lo..chunk_hi {
                    edges_traversed += 1;
                    let mut w = 0u32;
                    gang.access(c, sys, |s, at| {
                        let (x, t) = g.adj.get(s, at, e);
                        w = x;
                        t
                    });
                    let mut wt = 0u32;
                    gang.access(c, sys, |s, at| {
                        let (x, t) = g.weights.get(s, at, e);
                        wt = x;
                        t
                    });
                    let nd = dv.saturating_add(wt);
                    let mut dw = 0u32;
                    gang.access(c, sys, |s, at| {
                        let (x, t) = dist.get(s, at, w as u64);
                        dw = x;
                        t
                    });
                    if nd < dw {
                        gang.access(c, sys, |s, at| dist.set(s, at, w as u64, nd));
                        let nk = (nd / delta) as usize;
                        if nk >= buckets.len() {
                            buckets.resize(nk + 1, Vec::new());
                        }
                        buckets[nk].push(w);
                    }
                }
                chunk_lo = chunk_hi;
            }
        }
        end = gang.barrier();
        k += 1;
    }
    thymesim_telemetry::phase_end();

    let reached = (0..g.n).filter(|&v| dist.get_raw(sys, v) != INF).count() as u64;
    thymesim_telemetry::span_arg("workload", "sssp", start, end, "root", root as u64);
    TraversalRun {
        root,
        elapsed: end - start,
        edges_traversed,
        reached,
    }
}

/// Untimed reference BFS levels (host-side) for validation.
pub fn reference_levels<R: RemoteBackend>(sys: &MemSystem<R>, g: &CsrGraph, root: u32) -> Vec<u32> {
    let mut level = vec![INF; g.n as usize];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut d = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let lo = g.xadj.get_raw(sys, v as u64);
            let hi = g.xadj.get_raw(sys, v as u64 + 1);
            for e in lo..hi {
                let w = g.adj.get_raw(sys, e);
                if level[w as usize] == INF {
                    level[w as usize] = d + 1;
                    next.push(w);
                }
            }
        }
        d += 1;
        frontier = next;
    }
    level
}

/// Validate a BFS parent tree against reference levels (Graph500-style
/// checks: root parentage, reachability equivalence, level consistency).
pub fn validate_bfs<R: RemoteBackend>(
    sys: &MemSystem<R>,
    g: &CsrGraph,
    parent: &SimVec<u32>,
    root: u32,
) -> bool {
    let level = reference_levels(sys, g, root);
    if parent.get_raw(sys, root as u64) != root {
        return false;
    }
    for v in 0..g.n {
        let p = parent.get_raw(sys, v);
        let reachable = level[v as usize] != INF;
        if (p == NO_PARENT) == reachable {
            return false; // reached ⇔ has a parent
        }
        if p != NO_PARENT && v != root as u64 {
            // Parent must be exactly one level up.
            if level[v as usize] != level[p as usize] + 1 {
                return false;
            }
        }
    }
    true
}

/// Untimed reference SSSP (Dijkstra) for validation.
pub fn reference_sssp<R: RemoteBackend>(sys: &MemSystem<R>, g: &CsrGraph, root: u32) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.n as usize];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u32, root)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let lo = g.xadj.get_raw(sys, v as u64);
        let hi = g.xadj.get_raw(sys, v as u64 + 1);
        for e in lo..hi {
            let w = g.adj.get_raw(sys, e);
            let wt = g.weights.get_raw(sys, e);
            let nd = d.saturating_add(wt);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Run the full benchmark (BFS phase) over `cfg.roots` roots.
pub fn run_bfs_benchmark<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    g: &CsrGraph,
    parent: &SimVec<u32>,
    validate: bool,
) -> Graph500Report {
    let roots = pick_roots(cfg, sys, g);
    let mut runs = Vec::new();
    let mut t = Time::ZERO;
    let mut ok = true;
    for root in roots {
        let run = bfs(cfg, sys, g, parent, root, t);
        t += run.elapsed;
        if validate {
            ok &= validate_bfs(sys, g, parent, root);
        }
        runs.push(run);
    }
    Graph500Report::from_runs(runs, ok)
}

/// Run the full benchmark (SSSP phase) over `cfg.roots` roots.
pub fn run_sssp_benchmark<R: RemoteBackend>(
    cfg: &Graph500Config,
    sys: &mut MemSystem<R>,
    g: &CsrGraph,
    dist: &SimVec<u32>,
    validate: bool,
) -> Graph500Report {
    let roots = pick_roots(cfg, sys, g);
    let mut runs = Vec::new();
    let mut t = Time::ZERO;
    let mut ok = true;
    for root in roots {
        let run = sssp(cfg, sys, g, dist, root, t);
        t += run.elapsed;
        if validate {
            let reference = reference_sssp(sys, g, root);
            for v in 0..g.n {
                if dist.get_raw(sys, v) != reference[v as usize] {
                    ok = false;
                    break;
                }
            }
        }
        runs.push(run);
    }
    Graph500Report::from_runs(runs, ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{
        shared_dram, Addr, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming,
    };

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(256 << 20, 256 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    fn setup(cfg: &Graph500Config) -> (MemSystem<NoRemote>, CsrGraph, Arena) {
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let g = build_csr(cfg, &mut s, &mut arena);
        (s, g, arena)
    }

    #[test]
    fn kronecker_is_deterministic_and_sized() {
        let cfg = Graph500Config::tiny();
        let e1 = kronecker_edges(&cfg);
        let e2 = kronecker_edges(&cfg);
        assert_eq!(e1, e2);
        assert_eq!(e1.len() as u64, cfg.edges());
        assert!(e1
            .iter()
            .all(|&(u, v)| (u as u64) < cfg.vertices() && (v as u64) < cfg.vertices()));
    }

    #[test]
    fn kronecker_is_skewed() {
        // Kronecker graphs have a heavy-tailed degree distribution: the
        // max degree must far exceed the mean.
        let cfg = Graph500Config::tiny();
        let edges = kronecker_edges(&cfg);
        let mut deg = vec![0u32; cfg.vertices() as usize];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = 2.0 * cfg.edgefactor as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "max degree {max} not heavy-tailed vs mean {mean}"
        );
    }

    #[test]
    fn csr_is_consistent() {
        let cfg = Graph500Config::tiny();
        let (s, g, _a) = setup(&cfg);
        assert_eq!(g.xadj.get_raw(&s, 0), 0);
        assert_eq!(g.xadj.get_raw(&s, g.n), g.m2);
        // Row bounds are monotone.
        let mut prev = 0;
        for v in 0..=g.n {
            let x = g.xadj.get_raw(&s, v);
            assert!(x >= prev);
            prev = x;
        }
        // Adjacency is symmetric: count (u,v) == count (v,u) via totals.
        assert_eq!(g.m2, cfg.edges() * 2);
    }

    #[test]
    fn bfs_parent_tree_validates() {
        let cfg = Graph500Config::tiny();
        let (mut s, g, mut arena) = setup(&cfg);
        let parent: SimVec<u32> = arena.alloc_vec(g.n);
        let report = run_bfs_benchmark(&cfg, &mut s, &g, &parent, true);
        assert!(report.validated, "BFS parent tree failed validation");
        assert_eq!(report.runs.len(), cfg.roots as usize);
        for r in &report.runs {
            assert!(r.reached > 1, "root {} reached nothing", r.root);
            assert!(r.elapsed > Dur::ZERO);
        }
        assert!(report.mean_teps > 0.0);
    }

    #[test]
    fn sssp_distances_match_dijkstra() {
        let cfg = Graph500Config::tiny();
        let (mut s, g, mut arena) = setup(&cfg);
        let dist: SimVec<u32> = arena.alloc_vec(g.n);
        let report = run_sssp_benchmark(&cfg, &mut s, &g, &dist, true);
        assert!(report.validated, "SSSP distances diverge from Dijkstra");
    }

    #[test]
    fn sssp_takes_longer_than_bfs() {
        let cfg = Graph500Config::tiny();
        let (mut s, g, mut arena) = setup(&cfg);
        let parent: SimVec<u32> = arena.alloc_vec(g.n);
        let dist: SimVec<u32> = arena.alloc_vec(g.n);
        let b = run_bfs_benchmark(&cfg, &mut s, &g, &parent, false);
        let d = run_sssp_benchmark(&cfg, &mut s, &g, &dist, false);
        assert!(
            d.total_time > b.total_time,
            "SSSP ({}) should exceed BFS ({})",
            d.total_time,
            b.total_time
        );
    }

    #[test]
    fn more_cores_speed_up_bfs() {
        let mut cfg = Graph500Config::tiny();
        cfg.cores = 1;
        let (mut s1, g1, mut a1) = setup(&cfg);
        let p1: SimVec<u32> = a1.alloc_vec(g1.n);
        let r1 = run_bfs_benchmark(&cfg, &mut s1, &g1, &p1, false);
        cfg.cores = 16;
        let (mut s16, g16, mut a16) = setup(&cfg);
        let p16: SimVec<u32> = a16.alloc_vec(g16.n);
        let r16 = run_bfs_benchmark(&cfg, &mut s16, &g16, &p16, false);
        let speedup = r1.total_time.as_secs_f64() / r16.total_time.as_secs_f64();
        assert!(speedup > 2.0, "16 cores only {speedup:.2}x faster than 1");
    }

    #[test]
    fn roots_have_degree() {
        let cfg = Graph500Config::tiny();
        let (s, g, _a) = setup(&cfg);
        for root in pick_roots(&cfg, &s, &g) {
            let lo = g.xadj.get_raw(&s, root as u64);
            let hi = g.xadj.get_raw(&s, root as u64 + 1);
            assert!(hi > lo, "root {root} is isolated");
        }
    }
}
