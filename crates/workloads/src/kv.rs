//! A Redis-like in-memory key-value store under a memtier-style
//! closed-loop client.
//!
//! The paper drives Redis with memtier (4 threads × 50 connections,
//! 10 000 requests per client, ~4 GB working set) and finds it almost
//! insensitive to injected delay: "Redis serves requests via the network
//! stack which adds significant serving overhead … memory access time is
//! negligible compared to the network stack overheads" (§IV-D). The model
//! makes that mechanism explicit: every request pays a fixed kernel/TCP
//! stack cost at the single-threaded server, plus a handful of dependent
//! hash-table accesses and a prefetchable value transfer in (possibly
//! remote) memory.
//!
//! The store is real: SETs write patterned bytes, GETs verify them.

use crate::issue::{IssueRing, KeySampler};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use thymesim_mem::{Addr, Arena, MemSystem, RemoteBackend, SimVec};
use thymesim_sim::{Dur, Histogram, SplitMix64, Time, Xoshiro256};

// The sampler and its distribution enum live in `issue.rs` so the
// open-loop serving engine shares them; re-exported here because the
// memtier configuration is where users expect to find them.
pub use crate::issue::KeyDist;

/// Workload configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct KvConfig {
    /// Distinct keys pre-loaded into the store.
    pub keys: u64,
    /// Value size; memtier's data volume / key count in the paper's setup
    /// (~4 GB over ~1 M keys) is a few KiB per key.
    pub value_bytes: u64,
    /// memtier client threads.
    pub client_threads: u32,
    /// Connections per client thread.
    pub conns_per_thread: u32,
    /// Requests each connection issues.
    pub requests_per_conn: u64,
    /// Fraction of SETs (memtier default ratio 1:10 → 0.0909…).
    pub set_ratio: f64,
    /// Server-side per-request network-stack + dispatch CPU cost.
    pub server_stack: Dur,
    /// Client↔server network round trip (outside the server).
    pub client_rtt: Dur,
    /// Prefetch window for streaming a value's lines.
    pub value_mlp: usize,
    /// Requests a connection sends back-to-back before waiting for
    /// replies (memtier's `--pipeline`). Depth 1 is the classic
    /// request/response loop; deeper pipelines amortize the per-*batch*
    /// network stack cost and expose more of the memory time.
    pub pipeline_depth: u32,
    /// How keys are drawn.
    pub key_dist: KeyDist,
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            keys: 100_000,
            value_bytes: 4096,
            client_threads: 4,
            conns_per_thread: 50,
            requests_per_conn: 50,
            set_ratio: 1.0 / 11.0,
            server_stack: Dur::us(180),
            client_rtt: Dur::us(100),
            value_mlp: 16,
            pipeline_depth: 1,
            key_dist: KeyDist::Uniform,
            seed: 0x5EED_CAFE,
        }
    }
}

impl KvConfig {
    /// Tiny configuration for unit tests.
    pub fn tiny() -> KvConfig {
        KvConfig {
            keys: 512,
            value_bytes: 512,
            client_threads: 2,
            conns_per_thread: 4,
            requests_per_conn: 20,
            ..KvConfig::default()
        }
    }

    pub fn connections(&self) -> u32 {
        self.client_threads * self.conns_per_thread
    }

    pub fn total_requests(&self) -> u64 {
        self.connections() as u64 * self.requests_per_conn
    }

    /// Approximate resident working set.
    pub fn working_set_bytes(&self) -> u64 {
        self.keys * (self.value_bytes + ENTRY_HEADER_BYTES)
    }
}

/// Entry header: key, next pointer, value length, version — one line.
const ENTRY_HEADER_BYTES: u64 = 128;

/// The store: an open-chaining hash table in simulated memory.
pub struct KvStore {
    buckets: SimVec<u64>,
    mask: u64,
    /// Entries living in the arena; addresses are simulated-physical.
    pub entries: u64,
}

#[inline]
fn hash_key(key: u64) -> u64 {
    SplitMix64::new(key).next_u64()
}

/// Deterministic value pattern for key/version.
#[inline]
fn pattern_byte(key: u64, version: u64, offset: u64) -> u8 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.rotate_left(17))
        .wrapping_add(offset)) as u8
}

impl KvStore {
    /// Build and populate the store (untimed, like a restored snapshot).
    pub fn build<R: RemoteBackend>(
        cfg: &KvConfig,
        sys: &mut MemSystem<R>,
        arena: &mut Arena,
    ) -> KvStore {
        let cap = (cfg.keys * 2).next_power_of_two();
        let buckets: SimVec<u64> = arena.alloc_vec(cap);
        for i in 0..cap {
            buckets.set_raw(sys, i, 0);
        }
        let mut store = KvStore {
            buckets,
            mask: cap - 1,
            entries: 0,
        };
        let entry_sz = ENTRY_HEADER_BYTES + cfg.value_bytes.next_multiple_of(128);
        for key in 0..cfg.keys {
            let ea = arena.alloc(entry_sz, 128);
            let h = hash_key(key) & store.mask;
            let head = store.buckets.get_raw(sys, h);
            // Header: [key][next][vlen][version]
            sys.backing_mut().write_u64(ea, key);
            sys.backing_mut().write_u64(ea.offset(8), head);
            sys.backing_mut().write_u64(ea.offset(16), cfg.value_bytes);
            sys.backing_mut().write_u64(ea.offset(24), 0);
            store.buckets.set_raw(sys, h, ea.0);
            let mut val = vec![0u8; cfg.value_bytes as usize];
            for (o, b) in val.iter_mut().enumerate() {
                *b = pattern_byte(key, 0, o as u64);
            }
            sys.backing_mut()
                .write_bytes(ea.offset(ENTRY_HEADER_BYTES), &val);
            store.entries += 1;
        }
        store
    }

    /// Timed chain lookup: returns (entry address, time) or panics on a
    /// missing key (the client only asks for loaded keys).
    fn lookup<R: RemoteBackend>(&self, sys: &mut MemSystem<R>, at: Time, key: u64) -> (Addr, Time) {
        let h = hash_key(key) & self.mask;
        let (mut cursor, mut t) = self.buckets.get(sys, at, h);
        loop {
            assert!(cursor != 0, "key {key} not found in store");
            let ea = Addr(cursor);
            // Header is one line: key+next+vlen+version in a single access.
            let t2 = sys.access(t, ea, false);
            let k = sys.backing().read_u64(ea);
            if k == key {
                return (ea, t2);
            }
            cursor = sys.backing().read_u64(ea.offset(8));
            t = t2;
        }
    }

    /// Timed GET: returns (bytes-ok, completion time).
    pub fn get<R: RemoteBackend>(
        &self,
        sys: &mut MemSystem<R>,
        at: Time,
        key: u64,
        mlp: usize,
    ) -> (bool, Time) {
        let (ea, t) = self.lookup(sys, at, key);
        let vlen = sys.backing().read_u64(ea.offset(16));
        let version = sys.backing().read_u64(ea.offset(24));
        // Stream the value with a prefetch window.
        let mut ring = IssueRing::new(mlp);
        ring.reset(t);
        let base = ea.offset(ENTRY_HEADER_BYTES);
        let mut ok = true;
        let mut off = 0;
        let mut buf = [0u8; 128];
        while off < vlen {
            let issue = ring.issue_at(t);
            let done = sys.access(issue, base.offset(off), false);
            ring.push(done);
            let n = (vlen - off).min(128) as usize;
            sys.backing().read_bytes(base.offset(off), &mut buf[..n]);
            for (i, &b) in buf[..n].iter().enumerate() {
                if b != pattern_byte(key, version, off + i as u64) {
                    ok = false;
                }
            }
            off += 128;
        }
        (ok, ring.horizon().max2(t))
    }

    /// Timed SET: overwrites the value in place, bumping the version.
    pub fn set<R: RemoteBackend>(
        &self,
        sys: &mut MemSystem<R>,
        at: Time,
        key: u64,
        mlp: usize,
    ) -> Time {
        let (ea, t) = self.lookup(sys, at, key);
        let version = sys.backing().read_u64(ea.offset(24)) + 1;
        let t = sys.access(t, ea, true); // header update (version)
        sys.backing_mut().write_u64(ea.offset(24), version);
        let vlen = sys.backing().read_u64(ea.offset(16));
        let base = ea.offset(ENTRY_HEADER_BYTES);
        let mut ring = IssueRing::new(mlp);
        ring.reset(t);
        let mut off = 0;
        while off < vlen {
            let issue = ring.issue_at(t);
            let done = sys.access(issue, base.offset(off), true);
            ring.push(done);
            let n = (vlen - off).min(128) as usize;
            let mut chunk = [0u8; 128];
            for (i, b) in chunk[..n].iter_mut().enumerate() {
                *b = pattern_byte(key, version, off + i as u64);
            }
            sys.backing_mut().write_bytes(base.offset(off), &chunk[..n]);
            off += 128;
        }
        ring.horizon().max2(t)
    }
}

/// Outcome of a memtier-style run.
#[derive(Clone, Debug)]
pub struct KvReport {
    pub requests: u64,
    pub gets: u64,
    pub sets: u64,
    /// Sustained request throughput.
    pub ops_per_sec: f64,
    /// Client-observed request latency.
    pub latency: Histogram,
    /// All GET payloads matched their expected pattern.
    pub data_ok: bool,
    pub elapsed: Dur,
}

/// Run the closed-loop benchmark against a built store.
pub fn run_memtier<R: RemoteBackend>(
    cfg: &KvConfig,
    sys: &mut MemSystem<R>,
    store: &KvStore,
) -> KvReport {
    let conns = cfg.connections() as usize;
    assert!(conns > 0 && cfg.requests_per_conn > 0);
    let half_rtt = Dur::ps(cfg.client_rtt.as_ps() / 2);
    // The stack cost splits around the memory work (rx parse / tx reply).
    let stack_rx = Dur::ps(cfg.server_stack.as_ps() / 2);
    let stack_tx = Dur::ps(cfg.server_stack.as_ps() - stack_rx.as_ps());

    let depth = cfg.pipeline_depth.max(1) as u64;
    let sampler = KeySampler::new(cfg.key_dist, store.entries);
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    // (arrival_at_server, connection id); BinaryHeap is a max-heap.
    let mut pending: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut remaining = vec![cfg.requests_per_conn; conns];
    for c in 0..conns {
        // Connections ramp up over the first RTT.
        let jitter = Dur::ps(rng.below(cfg.client_rtt.as_ps().max(1)));
        pending.push(Reverse((Time::ZERO + half_rtt + jitter, c)));
    }

    let mut server_free = Time::ZERO;
    let mut latency = Histogram::new();
    let mut gets = 0u64;
    let mut sets = 0u64;
    let mut data_ok = true;
    let mut first_send = Time::NEVER;
    let mut last_done = Time::ZERO;

    while let Some(Reverse((arrival, conn))) = pending.pop() {
        let send_time = arrival - half_rtt;
        first_send = first_send.min2(send_time);
        let begin = server_free.max2(arrival);
        // A pipelined batch pays the kernel/stack cost once per batch
        // (one socket read, one writev), then serves each request's
        // memory work back-to-back.
        let batch = remaining[conn].min(depth);
        // A connection's first batch is its warmup (connect + cold
        // caches); everything after is steady state. Re-asserted per
        // batch because connections interleave on the server.
        if remaining[conn] == cfg.requests_per_conn {
            thymesim_telemetry::phase_begin("kv.warmup", None);
        } else {
            thymesim_telemetry::phase_begin("kv.steady", None);
        }
        // The per-batch network-stack cost as its own stage: the paper's
        // Redis insensitivity argument is that this term dominates the
        // per-request time and is untouched by injected memory delay.
        thymesim_telemetry::latency("kv.stack", cfg.server_stack);
        let mut t = begin + stack_rx;
        for _ in 0..batch {
            let key = sampler.sample(&mut rng);
            if rng.chance(cfg.set_ratio) {
                sets += 1;
                t = store.set(sys, t, key, cfg.value_mlp);
            } else {
                gets += 1;
                let (ok, tt) = store.get(sys, t, key, cfg.value_mlp);
                data_ok &= ok;
                t = tt;
            }
        }
        t += stack_tx;
        server_free = t;
        let done_at_client = t + half_rtt;
        last_done = last_done.max2(done_at_client);
        // Every request in the batch completes when the batch's reply
        // lands; each records the same client-observed latency.
        for _ in 0..batch {
            latency.record((done_at_client - send_time).as_ps());
        }
        remaining[conn] -= batch;
        if remaining[conn] > 0 {
            pending.push(Reverse((done_at_client + half_rtt, conn)));
        }
    }

    thymesim_telemetry::phase_end();

    let elapsed = last_done - first_send;
    thymesim_telemetry::span_arg(
        "workload",
        "kv.memtier",
        first_send,
        last_done,
        "requests",
        gets + sets,
    );
    KvReport {
        requests: gets + sets,
        gets,
        sets,
        ops_per_sec: (gets + sets) as f64 / elapsed.as_secs_f64(),
        latency,
        data_ok,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{shared_dram, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming};

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(256 << 20, 256 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    fn setup(cfg: &KvConfig) -> (MemSystem<NoRemote>, KvStore) {
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let store = KvStore::build(cfg, &mut s, &mut arena);
        (s, store)
    }

    #[test]
    fn build_populates_all_keys() {
        let cfg = KvConfig::tiny();
        let (mut s, store) = setup(&cfg);
        assert_eq!(store.entries, cfg.keys);
        for key in [0u64, 1, cfg.keys / 2, cfg.keys - 1] {
            let (ok, _) = store.get(&mut s, Time::ZERO, key, 4);
            assert!(ok, "key {key} failed verification after load");
        }
    }

    #[test]
    fn set_bumps_version_and_get_verifies() {
        let cfg = KvConfig::tiny();
        let (mut s, store) = setup(&cfg);
        let t = store.set(&mut s, Time::ZERO, 7, 4);
        let (ok, t2) = store.get(&mut s, t, 7, 4);
        assert!(ok, "GET after SET must verify the new pattern");
        assert!(t2 > t);
    }

    #[test]
    fn memtier_run_completes_all_requests() {
        let cfg = KvConfig::tiny();
        let (mut s, store) = setup(&cfg);
        let report = run_memtier(&cfg, &mut s, &store);
        assert_eq!(report.requests, cfg.total_requests());
        assert!(report.data_ok);
        assert!(report.ops_per_sec > 0.0);
        assert_eq!(report.gets + report.sets, report.requests);
        assert!(report.sets > 0, "set ratio should yield some SETs");
        assert!(report.gets > report.sets, "GETs should dominate at 1:10");
    }

    #[test]
    fn throughput_is_stack_bound() {
        // With a 180 us stack and fast local memory, the single-threaded
        // server caps throughput near 1/stack.
        let mut cfg = KvConfig::tiny();
        cfg.requests_per_conn = 40;
        let (mut s, store) = setup(&cfg);
        let report = run_memtier(&cfg, &mut s, &store);
        let cap = 1.0 / cfg.server_stack.as_secs_f64();
        assert!(
            report.ops_per_sec < cap * 1.05,
            "throughput {} exceeds stack cap {}",
            report.ops_per_sec,
            cap
        );
        assert!(
            report.ops_per_sec > cap * 0.5,
            "server far below stack cap: {} vs {}",
            report.ops_per_sec,
            cap
        );
    }

    #[test]
    fn latency_includes_rtt_and_queueing() {
        let cfg = KvConfig::tiny();
        let (mut s, store) = setup(&cfg);
        let report = run_memtier(&cfg, &mut s, &store);
        // With 8 connections and a serial server, queueing delay makes the
        // mean latency exceed stack + RTT.
        let floor = (cfg.server_stack + cfg.client_rtt).as_ps() as f64;
        assert!(
            report.latency.mean() > floor,
            "mean latency {} below service floor {}",
            report.latency.mean(),
            floor
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = KvConfig::tiny();
        let (mut s1, store1) = setup(&cfg);
        let r1 = run_memtier(&cfg, &mut s1, &store1);
        let (mut s2, store2) = setup(&cfg);
        let r2 = run_memtier(&cfg, &mut s2, &store2);
        assert_eq!(r1.requests, r2.requests);
        assert_eq!(r1.gets, r2.gets);
        assert!((r1.ops_per_sec - r2.ops_per_sec).abs() < 1e-9);
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_keys() {
        let mut cfg = KvConfig::tiny();
        cfg.keys = 4096;
        cfg.value_bytes = 1024; // 4 MiB working set ≫ 256 KiB cache
        cfg.requests_per_conn = 50;
        let (mut s_uni, store_uni) = setup(&cfg);
        run_memtier(&cfg, &mut s_uni, &store_uni);
        let uniform_hits = s_uni.cache_stats().hit_rate();
        cfg.key_dist = KeyDist::Zipf { exponent: 1.1 };
        let (mut s_zipf, store_zipf) = setup(&cfg);
        let zr = run_memtier(&cfg, &mut s_zipf, &store_zipf);
        let zipf_hits = s_zipf.cache_stats().hit_rate();
        assert!(zr.data_ok);
        assert!(
            zipf_hits > uniform_hits + 0.05,
            "skewed keys should hit the cache more: {zipf_hits} vs {uniform_hits}"
        );
    }

    #[test]
    fn pipelining_amortizes_the_stack() {
        let mut cfg = KvConfig::tiny();
        cfg.requests_per_conn = 32;
        let (mut s1, store1) = setup(&cfg);
        let plain = run_memtier(&cfg, &mut s1, &store1);
        cfg.pipeline_depth = 8;
        let (mut s8, store8) = setup(&cfg);
        let piped = run_memtier(&cfg, &mut s8, &store8);
        assert_eq!(plain.requests, piped.requests);
        assert!(piped.data_ok);
        assert!(
            piped.ops_per_sec > plain.ops_per_sec * 3.0,
            "depth-8 pipelining should multiply throughput: {} vs {}",
            piped.ops_per_sec,
            plain.ops_per_sec
        );
    }

    #[test]
    fn pipelining_exposes_memory_sensitivity() {
        // With the stack amortized, the memory time is a much larger
        // share of a batch: the same delay costs pipelined Redis more.
        // (Emulated here by comparing local vs slow-local DRAM.)
        let mut cfg = KvConfig::tiny();
        cfg.requests_per_conn = 32;
        cfg.value_bytes = 2048; // working set ≫ cache: real memory traffic
        let slow_dram = DramConfig {
            latency: thymesim_sim::Dur::us(3),
            ..DramConfig::default()
        };
        let run = |depth: u32, dram: DramConfig| {
            let mut cfg = cfg;
            cfg.pipeline_depth = depth;
            let mut s = MemSystem::new(
                AddressMap::new(256 << 20, 256 << 20, 128),
                CacheConfig::tiny(),
                shared_dram(dram),
                SysTiming::default(),
                NoRemote,
            );
            let mut arena = Arena::new(Addr(0), 256 << 20);
            let store = KvStore::build(&cfg, &mut s, &mut arena);
            run_memtier(&cfg, &mut s, &store).ops_per_sec
        };
        let plain_sensitivity = run(1, DramConfig::default()) / run(1, slow_dram);
        let piped_sensitivity = run(8, DramConfig::default()) / run(8, slow_dram);
        // Plain request/response hides memory behind the 180 µs stack
        // (~3% sensitivity); depth-8 pipelining exposes it (~25%).
        assert!(
            piped_sensitivity > plain_sensitivity * 1.15,
            "pipelined Redis must be more delay-sensitive: {piped_sensitivity} vs {plain_sensitivity}"
        );
        assert!(
            plain_sensitivity < 1.1,
            "plain loop should hide memory time"
        );
    }

    #[test]
    fn chains_resolve_collisions() {
        // Force collisions with a small table: all keys must still verify.
        let mut cfg = KvConfig::tiny();
        cfg.keys = 64;
        let (mut s, store) = setup(&cfg);
        let mut t = Time::ZERO;
        for key in 0..cfg.keys {
            let (ok, tt) = store.get(&mut s, t, key, 4);
            assert!(ok, "key {key}");
            t = tt;
        }
    }
}
