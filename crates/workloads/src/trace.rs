//! Address-trace replay.
//!
//! Replays a recorded (or synthesized) sequence of memory accesses through
//! the timing model with a configurable issue window — the tool for
//! feeding *real application traces* to the testbed, and for crafting
//! adversarial patterns no benchmark produces. The text format is one
//! access per line:
//!
//! ```text
//! # comment
//! R 0x1000        # read at byte offset 0x1000 (hex or decimal)
//! W 4096          # write
//! R 0x2000 3      # optional repeat count
//! ```
//!
//! Offsets are relative to the replay base address, so the same trace can
//! be placed in local or remote memory.

use crate::issue::IssueRing;
use thymesim_mem::{Addr, MemSystem, RemoteBackend};
use thymesim_sim::{Dur, Histogram, Time, Xoshiro256};

/// One access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Byte offset from the replay base.
    pub offset: u64,
    pub write: bool,
}

/// Parse the text trace format. Lines: `R <offset> [count]`,
/// `W <offset> [count]`, blank, or `#` comments.
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, String> {
    let mut ops = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap();
        let write = match kind {
            "R" | "r" => false,
            "W" | "w" => true,
            other => return Err(format!("line {}: unknown op '{other}'", lineno + 1)),
        };
        let off_str = parts
            .next()
            .ok_or_else(|| format!("line {}: missing offset", lineno + 1))?;
        let offset = parse_u64(off_str)
            .ok_or_else(|| format!("line {}: bad offset '{off_str}'", lineno + 1))?;
        let count = match parts.next() {
            None => 1,
            Some(c) => {
                parse_u64(c).ok_or_else(|| format!("line {}: bad count '{c}'", lineno + 1))?
            }
        };
        if parts.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
        for _ in 0..count {
            ops.push(TraceOp { offset, write });
        }
    }
    Ok(ops)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Synthesize a uniform-random trace over a footprint (line-aligned).
pub fn random_trace(accesses: u64, footprint: u64, write_ratio: f64, seed: u64) -> Vec<TraceOp> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let lines = (footprint / 128).max(1);
    (0..accesses)
        .map(|_| TraceOp {
            offset: rng.below(lines) * 128,
            write: rng.chance(write_ratio),
        })
        .collect()
}

/// Synthesize a strided (sequential if stride=line) trace.
pub fn strided_trace(accesses: u64, stride: u64, write_ratio_period: u64) -> Vec<TraceOp> {
    (0..accesses)
        .map(|i| TraceOp {
            offset: i * stride,
            write: write_ratio_period != 0 && i % write_ratio_period.max(1) == 0,
        })
        .collect()
}

/// Replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Outstanding line fetches (MSHR window).
    pub mlp: usize,
    /// CPU time per access.
    pub cpu_per_op: Dur,
    /// Dependent mode: each access issues only after the previous
    /// completes (pointer-chase semantics), ignoring `mlp`.
    pub dependent: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            mlp: 16,
            cpu_per_op: Dur::ns(1),
            dependent: false,
        }
    }
}

/// Replay outcome.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    pub ops: u64,
    pub elapsed: Dur,
    /// Per-access latency (issue to completion).
    pub latency: Histogram,
    pub ops_per_sec: f64,
}

/// Replay `ops` against `sys` with data at `base`.
pub fn replay<R: RemoteBackend>(
    sys: &mut MemSystem<R>,
    base: Addr,
    ops: &[TraceOp],
    cfg: &ReplayConfig,
    start: Time,
) -> ReplayReport {
    let mut ring = IssueRing::new(cfg.mlp.max(1));
    ring.reset(start);
    let mut latency = Histogram::new();
    let mut cpu = start;
    let mut last_done = start;
    for op in ops {
        let at = if cfg.dependent {
            last_done.max2(cpu)
        } else {
            ring.issue_at(cpu)
        };
        let (done, missed) = sys.access_info(at, base.offset(op.offset), op.write);
        if missed && !cfg.dependent {
            ring.push(done);
        }
        latency.record((done - at).as_ps());
        last_done = done;
        cpu = cpu.max2(at) + cfg.cpu_per_op;
    }
    let end = ring.horizon().max2(last_done).max2(cpu);
    let elapsed = end - start;
    ReplayReport {
        ops: ops.len() as u64,
        ops_per_sec: ops.len() as f64 / elapsed.as_secs_f64().max(1e-18),
        elapsed,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{shared_dram, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming};

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(64 << 20, 64 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    #[test]
    fn parses_the_text_format() {
        let text = "\n# a trace\nR 0x1000\nW 4096 2\n  r 0X80  # lower case + hex\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp {
                    offset: 0x1000,
                    write: false
                },
                TraceOp {
                    offset: 4096,
                    write: true
                },
                TraceOp {
                    offset: 4096,
                    write: true
                },
                TraceOp {
                    offset: 0x80,
                    write: false
                },
            ]
        );
    }

    #[test]
    fn parse_errors_name_the_line() {
        assert!(parse_trace("R").unwrap_err().contains("line 1"));
        assert!(parse_trace("X 0").unwrap_err().contains("unknown op"));
        assert!(parse_trace("R zzz").unwrap_err().contains("bad offset"));
        assert!(parse_trace("R 0 1 junk").unwrap_err().contains("trailing"));
    }

    #[test]
    fn sequential_replay_is_faster_than_random() {
        let mut s1 = sys();
        let seq = strided_trace(20_000, 8, 0);
        let r1 = replay(&mut s1, Addr(0), &seq, &ReplayConfig::default(), Time::ZERO);
        let mut s2 = sys();
        let rnd = random_trace(20_000, 16 << 20, 0.0, 7);
        let r2 = replay(&mut s2, Addr(0), &rnd, &ReplayConfig::default(), Time::ZERO);
        assert!(
            r1.ops_per_sec > r2.ops_per_sec * 3.0,
            "sequential {} vs random {} ops/s",
            r1.ops_per_sec,
            r2.ops_per_sec
        );
    }

    #[test]
    fn dependent_mode_serializes() {
        let rnd = random_trace(5_000, 16 << 20, 0.0, 9);
        let mut s1 = sys();
        let windowed = replay(&mut s1, Addr(0), &rnd, &ReplayConfig::default(), Time::ZERO);
        let mut s2 = sys();
        let dep_cfg = ReplayConfig {
            dependent: true,
            ..ReplayConfig::default()
        };
        let dependent = replay(&mut s2, Addr(0), &rnd, &dep_cfg, Time::ZERO);
        assert!(
            dependent.elapsed > windowed.elapsed,
            "dependent replay must be slower: {} vs {}",
            dependent.elapsed,
            windowed.elapsed
        );
    }

    #[test]
    fn report_is_consistent() {
        let mut s = sys();
        let ops = strided_trace(1000, 128, 4);
        let r = replay(&mut s, Addr(0), &ops, &ReplayConfig::default(), Time::us(5));
        assert_eq!(r.ops, 1000);
        assert_eq!(r.latency.count(), 1000);
        assert!(r.elapsed > Dur::ZERO);
        assert!(s.stats.writes > 0 && s.stats.reads > 0);
    }
}
