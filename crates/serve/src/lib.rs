//! # thymesim-serve
//!
//! The open-loop serving layer (§IV-D, extended): instead of a closed
//! loop of clients that each wait for a reply before the next request,
//! arrivals come from a deterministic *client population* on their own
//! schedule. Queueing delay — invisible in a closed loop, dominant in
//! production tails — becomes a measured quantity, and admission-control
//! policies can be evaluated against it.
//!
//! * [`arrival`] — sharded Poisson client populations with diurnal and
//!   spike shapes; millions of simulated users per point without
//!   per-user state, byte-deterministic at any `--jobs`;
//! * [`engine`] — the open-loop issue engine over the KV stack: a
//!   calendar queue of admitted requests, an [`IssueRing`]-modelled
//!   worker pool, and per-phase latency/counter telemetry;
//! * [`admission`] — drop / throttle / priority-lane policies driven by
//!   the live queue depth.
//!
//! [`IssueRing`]: thymesim_workloads::issue::IssueRing

pub mod admission;
pub mod arrival;
pub mod engine;

pub use admission::{AdmissionPolicy, Decision};
pub use arrival::{ArrivalPattern, ClientPopulation};
pub use engine::{ServeConfig, ServeProcess, ServeReport};
