//! The open-loop issue engine: arrivals drive the KV stack on their own
//! schedule, decoupled from completions, so queueing delay is a first-
//! class observable instead of being hidden by a closed loop's
//! self-throttling (the paper's memtier setup never lets more than one
//! request per connection exist, which is exactly why its §IV-D tail
//! looks flat).
//!
//! The engine is a [`Process`]-shaped state machine: each step either
//! absorbs one arrival (admission control, queue accounting) or serves
//! one request (stack cost + timed KV memory work). Admitted requests
//! wait in a calendar queue ([`EventQueue`]) keyed by the time they
//! become serviceable; a worker pool modelled by an [`IssueRing`] of
//! completion times caps service concurrency. Per-request latency
//! telemetry lands in three phases — `serve.arrival` (queue wait),
//! `serve.admitted` (service), `serve.dropped` (shed requests) — and
//! the queue depth / in-flight counters give traces the same control
//! signals the admission policies act on.

use crate::admission::{AdmissionPolicy, Decision};
use crate::arrival::{ArrivalPattern, ClientPopulation};
use thymesim_mem::{Arena, MemSystem, RemoteBackend};
use thymesim_sim::{Dur, EventQueue, Histogram, Step, Time, Xoshiro256};
use thymesim_workloads::issue::{IssueRing, KeyDist, KeySampler};
use thymesim_workloads::kv::{KvConfig, KvStore};

/// Open-loop serving configuration.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ServeConfig {
    /// Distinct keys pre-loaded into the store.
    pub keys: u64,
    /// Value size per key.
    pub value_bytes: u64,
    /// Key popularity (shared sampler with the memtier client).
    pub key_dist: KeyDist,
    /// Fraction of SETs.
    pub set_ratio: f64,
    /// Prefetch window for streaming a value's lines.
    pub value_mlp: usize,
    /// Per-request server stack cost. Open-loop serving models a lean
    /// RPC/SmartNIC stack (Clio-style), not memtier's kernel TCP path:
    /// here the fabric, not the CPU, is meant to be the bottleneck.
    pub server_stack: Dur,
    /// Dispatcher cost of shedding one request (load shedding is cheap,
    /// not free).
    pub reject_cost: Dur,
    /// Service concurrency (worker pool size).
    pub workers: u32,
    /// Client-population shards (each an aggregate Poisson stream).
    pub shards: u32,
    /// Simulated users per shard — only the product with the per-user
    /// rate matters, so this scales to millions without per-user state.
    pub users_per_shard: u64,
    /// Per-user request rate in Hz.
    pub rate_per_user_hz: f64,
    /// Total arrivals to generate for the point.
    pub arrivals: u64,
    /// Offered-load shape over time.
    pub pattern: ArrivalPattern,
    /// Admission policy applied at arrival.
    pub policy: AdmissionPolicy,
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            keys: 4096,
            value_bytes: 1024,
            key_dist: KeyDist::Uniform,
            set_ratio: 1.0 / 11.0,
            value_mlp: 8,
            server_stack: Dur::us(2),
            reject_cost: Dur::ns(200),
            workers: 1,
            shards: 8,
            users_per_shard: 125_000,
            rate_per_user_hz: 0.002, // 2k req/s aggregate over 1M users
            arrivals: 2000,
            pattern: ArrivalPattern::Steady,
            policy: AdmissionPolicy::Open,
            seed: 0x09E4_1009, // "open-loop"
        }
    }
}

impl ServeConfig {
    /// Tiny configuration for unit tests and the quick profile.
    pub fn tiny() -> ServeConfig {
        ServeConfig {
            keys: 512,
            value_bytes: 512,
            arrivals: 240,
            ..ServeConfig::default()
        }
    }

    /// Total simulated users.
    pub fn population(&self) -> u64 {
        self.shards as u64 * self.users_per_shard
    }

    /// Aggregate offered load in requests/sec.
    pub fn offered_ops_per_sec(&self) -> f64 {
        self.population() as f64 * self.rate_per_user_hz
    }

    /// Set the aggregate offered rate, keeping the population fixed.
    pub fn with_offered_rate(mut self, ops_per_sec: f64) -> ServeConfig {
        self.rate_per_user_hz = ops_per_sec / self.population() as f64;
        self
    }

    /// The store-side view of this config (shared build path with the
    /// closed-loop benchmark).
    pub fn kv_config(&self) -> KvConfig {
        KvConfig {
            keys: self.keys,
            value_bytes: self.value_bytes,
            key_dist: self.key_dist,
            value_mlp: self.value_mlp,
            set_ratio: self.set_ratio,
            seed: self.seed,
            ..KvConfig::default()
        }
    }
}

/// One admitted request waiting for a worker.
#[derive(Clone, Copy, Debug)]
struct Request {
    arrival: Time,
    key: u64,
    set: bool,
}

/// Outcome of an open-loop run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    pub arrivals: u64,
    pub admitted: u64,
    pub dropped: u64,
    pub throttled: u64,
    pub gets: u64,
    pub sets: u64,
    /// All GET payloads matched their expected pattern.
    pub data_ok: bool,
    /// Client-observed latency (arrival → reply) of served requests.
    pub sojourn: Histogram,
    /// Arrival → worker pickup.
    pub queue_wait: Histogram,
    pub first_arrival: Time,
    pub last_done: Time,
}

impl ServeReport {
    fn new() -> ServeReport {
        ServeReport {
            arrivals: 0,
            admitted: 0,
            dropped: 0,
            throttled: 0,
            gets: 0,
            sets: 0,
            data_ok: true,
            sojourn: Histogram::new(),
            queue_wait: Histogram::new(),
            first_arrival: Time::NEVER,
            last_done: Time::ZERO,
        }
    }

    /// The divergence figure of merit: p999 sojourn over mean sojourn.
    /// 1.0 for a perfectly flat latency profile; grows as queueing
    /// stretches the tail away from the mean.
    pub fn tail_ratio(&self) -> f64 {
        let mean = self.sojourn.mean();
        if mean <= 0.0 {
            return 1.0;
        }
        self.sojourn.p999() as f64 / mean
    }

    /// Served throughput over the active window.
    pub fn served_ops_per_sec(&self) -> f64 {
        if self.last_done <= self.first_arrival {
            return 0.0;
        }
        (self.gets + self.sets) as f64 / self.last_done.since(self.first_arrival).as_secs_f64()
    }
}

/// The open-loop engine as a steppable process (compose with contending
/// processes via `run_processes` or a custom executor).
pub struct ServeProcess {
    cfg: ServeConfig,
    store: KvStore,
    population: ClientPopulation,
    sampler: KeySampler,
    rng: Xoshiro256,
    /// Admitted requests, keyed by the time they become serviceable.
    pending: EventQueue<Request>,
    /// Cached head key of `pending` (`Time::NEVER` when empty), so
    /// `next_time` stays `&self`.
    head_ready: Time,
    /// Requests admitted but not yet picked up — the admission signal.
    depth: u64,
    depth_since: Time,
    next_arrival: Option<(Time, u32)>,
    /// Worker-pool completion times; caps service concurrency.
    ring: IssueRing,
    started: bool,
    report: ServeReport,
}

impl ServeProcess {
    /// Build the store in `arena` (untimed, like a restored snapshot)
    /// and stage the arrival stream from `start`.
    pub fn new<R: RemoteBackend>(
        cfg: ServeConfig,
        sys: &mut MemSystem<R>,
        arena: &mut Arena,
        start: Time,
    ) -> ServeProcess {
        let store = KvStore::build(&cfg.kv_config(), sys, arena);
        let mut population = ClientPopulation::new(
            cfg.shards,
            cfg.users_per_shard,
            cfg.rate_per_user_hz,
            cfg.pattern,
            cfg.seed,
            start,
            cfg.arrivals,
        );
        let next_arrival = population.next_arrival();
        let sampler = KeySampler::new(cfg.key_dist, store.entries);
        ServeProcess {
            sampler,
            rng: Xoshiro256::seed_from_u64(cfg.seed ^ 0x5E27_E000),
            pending: EventQueue::new(),
            head_ready: Time::NEVER,
            depth: 0,
            depth_since: start,
            next_arrival,
            ring: IssueRing::new(cfg.workers.max(1) as usize),
            started: false,
            report: ServeReport::new(),
            cfg,
            store,
            population,
        }
    }

    pub fn is_done(&self) -> bool {
        self.next_arrival.is_none() && self.head_ready == Time::NEVER
    }

    /// Virtual time of the next arrival or service pickup.
    pub fn next_time(&self) -> Time {
        let arrival = self.next_arrival.map_or(Time::NEVER, |(t, _)| t);
        let service = if self.head_ready == Time::NEVER {
            Time::NEVER
        } else {
            self.ring.issue_at(self.head_ready)
        };
        arrival.min2(service)
    }

    /// Queue-depth accounting: close the previous constant-depth segment
    /// as a counter-track contribution, then switch to the new depth.
    fn set_depth(&mut self, now: Time, new: u64) {
        if self.depth > 0 && now > self.depth_since {
            thymesim_telemetry::counter_level(
                "util.serve.qdepth",
                self.depth_since,
                now,
                self.depth,
            );
        }
        self.depth = new;
        self.depth_since = now;
    }

    fn enqueue(&mut self, at: Time, ready: Time, req: Request) {
        self.report.admitted += 1;
        thymesim_telemetry::add("serve.admitted", 1);
        self.set_depth(at, self.depth + 1);
        self.pending.push(ready, req);
        self.head_ready = self.pending.peek_time().expect("just pushed");
    }

    /// Absorb one arrival: sample the request, apply admission control.
    fn admit_one(&mut self) {
        let (t, shard) = self.next_arrival.take().expect("admit without arrival");
        self.next_arrival = self.population.next_arrival();
        let key = self.sampler.sample(&mut self.rng);
        let set = self.rng.chance(self.cfg.set_ratio);
        // QoS lane from the population: every fourth shard is the
        // premium slice that `Priority` policies protect.
        let lane = if shard % 4 == 0 { 0 } else { 1 };
        self.report.arrivals += 1;
        self.report.first_arrival = self.report.first_arrival.min2(t);
        thymesim_telemetry::add("serve.arrival", 1);
        let req = Request {
            arrival: t,
            key,
            set,
        };
        let decision = self.cfg.policy.decide(self.depth, lane);
        let admitted = !matches!(decision, Decision::Drop);
        match decision {
            Decision::Admit => self.enqueue(t, t, req),
            Decision::Defer(pause) => {
                self.report.throttled += 1;
                self.enqueue(t, t + pause, req);
            }
            Decision::Drop => {
                self.report.dropped += 1;
                thymesim_telemetry::add("serve.dropped", 1);
                thymesim_telemetry::phase_begin("serve.dropped", None);
                thymesim_telemetry::latency("serve.reject", self.cfg.reject_cost);
            }
        }
        thymesim_telemetry::counter_ratio("util.serve.admit_ratio", t, admitted as u64, 1);
    }

    /// Serve the queue head: worker pickup, stack cost, timed KV work.
    fn serve_one<R: RemoteBackend>(&mut self, sys: &mut MemSystem<R>) {
        let (ready, req) = self.pending.pop().expect("serve with empty queue");
        self.head_ready = self.pending.peek_time().unwrap_or(Time::NEVER);
        let start = self.ring.issue_at(ready);
        self.set_depth(start, self.depth - 1);

        // Queue wait attributes to the arrival phase, the service (stack
        // + memory stages recorded inside the store) to the admitted
        // phase. Re-asserted every step: interleaved contending
        // processes share the recorder's ambient phase.
        thymesim_telemetry::phase_begin("serve.arrival", None);
        let wait = start.since(req.arrival);
        thymesim_telemetry::latency("serve.queue_wait", wait);
        self.report.queue_wait.record(wait.as_ps());

        thymesim_telemetry::phase_begin("serve.admitted", None);
        let stack_rx = Dur::ps(self.cfg.server_stack.as_ps() / 2);
        let stack_tx = Dur::ps(self.cfg.server_stack.as_ps() - stack_rx.as_ps());
        thymesim_telemetry::latency("serve.stack", self.cfg.server_stack);
        let mut t = start + stack_rx;
        if req.set {
            self.report.sets += 1;
            t = self.store.set(sys, t, req.key, self.cfg.value_mlp);
        } else {
            self.report.gets += 1;
            let (ok, tt) = self.store.get(sys, t, req.key, self.cfg.value_mlp);
            self.report.data_ok &= ok;
            t = tt;
        }
        let done = t + stack_tx;
        self.ring.push(done);
        thymesim_telemetry::counter_level("util.serve.inflight", start, done, 1);
        let sojourn = done.since(req.arrival);
        thymesim_telemetry::latency("serve.sojourn", sojourn);
        self.report.sojourn.record(sojourn.as_ps());
        self.report.last_done = self.report.last_done.max2(done);
    }

    /// One open-loop transaction: the earlier of (next arrival, next
    /// service pickup); service wins ties so capacity frees before the
    /// tying arrival reads the queue depth.
    pub fn step_on<R: RemoteBackend>(&mut self, sys: &mut MemSystem<R>) -> Step {
        if !self.started {
            self.started = true;
            thymesim_telemetry::counter_bound(
                "util.serve.inflight",
                self.cfg.workers.max(1) as u64,
            );
        }
        let arrival = self.next_arrival.map_or(Time::NEVER, |(t, _)| t);
        let service = if self.head_ready == Time::NEVER {
            Time::NEVER
        } else {
            self.ring.issue_at(self.head_ready)
        };
        if service <= arrival {
            self.serve_one(sys);
        } else {
            self.admit_one();
        }
        if self.is_done() {
            thymesim_telemetry::phase_end();
            thymesim_telemetry::span_arg(
                "workload",
                "serve.open_loop",
                self.report.first_arrival,
                self.report.last_done.max2(self.report.first_arrival),
                "arrivals",
                self.report.arrivals,
            );
            Step::Done
        } else {
            Step::Continue
        }
    }

    /// Drive the engine alone (no contending processes) to completion.
    pub fn run_to_completion<R: RemoteBackend>(mut self, sys: &mut MemSystem<R>) -> ServeReport {
        while self.step_on(sys) == Step::Continue {}
        self.report
    }

    pub fn report(&self) -> &ServeReport {
        &self.report
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_mem::{
        shared_dram, Addr, AddressMap, CacheConfig, DramConfig, NoRemote, SysTiming,
    };

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(256 << 20, 256 << 20, 128),
            CacheConfig::tiny(),
            shared_dram(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    fn run(cfg: ServeConfig) -> ServeReport {
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 256 << 20);
        let p = ServeProcess::new(cfg, &mut s, &mut arena, Time::ZERO);
        p.run_to_completion(&mut s)
    }

    #[test]
    fn open_policy_serves_every_arrival() {
        let cfg = ServeConfig::tiny();
        let r = run(cfg);
        assert_eq!(r.arrivals, cfg.arrivals);
        assert_eq!(r.admitted, cfg.arrivals);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.gets + r.sets, cfg.arrivals);
        assert!(r.data_ok, "GET payloads must verify");
        assert_eq!(r.sojourn.count(), cfg.arrivals);
        assert!(r.sets > 0 && r.gets > r.sets);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ServeConfig::tiny();
        let a = run(cfg);
        let b = run(cfg);
        assert_eq!(a.sojourn.count(), b.sojourn.count());
        assert_eq!(a.sojourn.p999(), b.sojourn.p999());
        assert_eq!(a.queue_wait.sum(), b.queue_wait.sum());
        assert_eq!(a.gets, b.gets);
        assert_eq!(a.last_done, b.last_done);
    }

    #[test]
    fn sojourn_includes_queue_wait() {
        // Overload the single worker: sojourn must stretch past pure
        // service time and the queue wait must be visible.
        let cfg = ServeConfig::tiny().with_offered_rate(400_000.0);
        let r = run(cfg);
        assert!(r.queue_wait.max() > 0, "overload must queue");
        assert!(
            r.sojourn.mean() > r.queue_wait.mean(),
            "sojourn contains wait plus service"
        );
        assert!(r.tail_ratio() >= 1.0);
    }

    #[test]
    fn open_loop_tail_grows_with_offered_load() {
        let lo = run(ServeConfig::tiny().with_offered_rate(2_000.0));
        let hi = run(ServeConfig::tiny().with_offered_rate(150_000.0));
        assert!(
            hi.tail_ratio() > lo.tail_ratio(),
            "offered load must stretch the tail: {} vs {}",
            hi.tail_ratio(),
            lo.tail_ratio()
        );
        assert!(
            hi.queue_wait.mean() > lo.queue_wait.mean() * 2.0,
            "queue wait must grow with load"
        );
    }

    #[test]
    fn drop_policy_bounds_queue_wait() {
        let mut over = ServeConfig::tiny().with_offered_rate(400_000.0);
        let open = run(over);
        over.policy = AdmissionPolicy::Drop { queue_cap: 4 };
        let capped = run(over);
        assert!(capped.dropped > 0, "overload must shed");
        assert_eq!(capped.admitted + capped.dropped, capped.arrivals);
        assert!(
            (capped.sojourn.p999() as f64) < open.sojourn.p999() as f64 * 0.5,
            "drop@4 must cap p999: {} vs open {}",
            capped.sojourn.p999(),
            open.sojourn.p999()
        );
    }

    #[test]
    fn priority_lane_survives_overload() {
        let mut over = ServeConfig::tiny().with_offered_rate(400_000.0);
        over.policy = AdmissionPolicy::Priority { queue_cap: 4 };
        let r = run(over);
        assert!(r.dropped > 0, "best-effort lane must shed");
        // Lane 0 is every fourth shard ≈ a quarter of arrivals; they are
        // never dropped, so admissions must exceed the pure cap flow.
        assert!(
            r.admitted > r.arrivals / 5,
            "premium lane must keep flowing: {} of {}",
            r.admitted,
            r.arrivals
        );
    }

    #[test]
    fn throttle_defers_but_loses_nothing() {
        let mut over = ServeConfig::tiny().with_offered_rate(400_000.0);
        over.policy = AdmissionPolicy::Throttle {
            queue_cap: 4,
            backoff: Dur::us(50),
        };
        let r = run(over);
        assert_eq!(r.dropped, 0);
        assert!(r.throttled > 0);
        assert_eq!(r.gets + r.sets, r.arrivals, "everything eventually served");
        assert!(r.data_ok);
    }

    #[test]
    fn report_rates_are_sane() {
        let cfg = ServeConfig::tiny().with_offered_rate(10_000.0);
        let r = run(cfg);
        assert!(r.served_ops_per_sec() > 0.0);
        assert!(
            (cfg.offered_ops_per_sec() / 10_000.0 - 1.0).abs() < 1e-9,
            "with_offered_rate round-trips"
        );
    }
}
