//! Deterministic open-loop arrival processes.
//!
//! A production serving fleet is not a closed loop: users issue requests
//! on their own schedule, indifferent to whether the server has finished
//! the previous one. This module generates those arrival times as a
//! *sharded client population*: the population is split into `shards`
//! groups of `users_per_shard` users each, and every shard emits one
//! aggregate Poisson stream at `users × per-user rate`. Superposing the
//! per-user point processes is exactly an aggregate Poisson process, so
//! a shard needs constant state (one RNG, one pending arrival time) no
//! matter how many users it represents — millions of simulated users per
//! sweep point cost the same as dozens.
//!
//! Determinism argument: shard `i`'s stream is a pure function of
//! `(seed, i, pattern, rate)` — its RNG is derived from the population
//! seed and the shard index, and consumed only by that shard's draws.
//! The merged stream orders arrivals by `(time, shard index)`, a total
//! order independent of evaluation order or thread count, so a sweep
//! point replays byte-identically at any `--jobs`.
//!
//! Non-constant rates (diurnal swells, load spikes) are produced by
//! thinning: candidates are drawn at the pattern's peak rate and
//! accepted with probability `rate(t) / peak`, the standard construction
//! for a non-homogeneous Poisson process.

use serde::Serialize;
use thymesim_sim::{Dur, Time, Xoshiro256};

/// Shape of the offered load over time. Rates are relative to the
/// configured base rate; `Steady` is a homogeneous Poisson process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum ArrivalPattern {
    /// Constant rate.
    Steady,
    /// A triangle-wave day: rate swings between `trough × base` and
    /// `base` with the given period (deterministic — no trig, so the
    /// modulation is bit-exact everywhere).
    Diurnal { period: Dur, trough: f64 },
    /// A flash crowd: rate jumps to `factor × base` inside the window
    /// `[at, at + width)`.
    Spike { at: Dur, width: Dur, factor: f64 },
}

impl ArrivalPattern {
    /// Rate multiplier at `since_start`, in `[0, peak()]`.
    pub fn modulation(&self, since_start: Dur) -> f64 {
        match *self {
            ArrivalPattern::Steady => 1.0,
            ArrivalPattern::Diurnal { period, trough } => {
                let p = period.as_ps().max(1);
                let phase = (since_start.as_ps() % p) as f64 / p as f64;
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                trough + (1.0 - trough) * tri
            }
            ArrivalPattern::Spike { at, width, factor } => {
                let t = since_start.as_ps();
                if t >= at.as_ps() && t < at.as_ps() + width.as_ps() {
                    factor
                } else {
                    1.0
                }
            }
        }
    }

    /// Largest multiplier the pattern can reach (the thinning envelope).
    pub fn peak(&self) -> f64 {
        match *self {
            ArrivalPattern::Steady | ArrivalPattern::Diurnal { .. } => 1.0,
            ArrivalPattern::Spike { factor, .. } => factor.max(1.0),
        }
    }
}

/// One shard's aggregate stream: constant state for any user count.
#[derive(Clone, Debug)]
struct Shard {
    rng: Xoshiro256,
    next: Time,
}

/// The sharded client population: a deterministic merged arrival stream.
#[derive(Clone, Debug)]
pub struct ClientPopulation {
    shards: Vec<Shard>,
    pattern: ArrivalPattern,
    /// Aggregate arrivals/sec of one shard (`users_per_shard × per-user`).
    shard_rate_hz: f64,
    start: Time,
    remaining: u64,
}

impl ClientPopulation {
    /// `total` bounds the merged stream's length (the sweep's per-point
    /// request budget); the per-shard state never grows with it.
    pub fn new(
        shards: u32,
        users_per_shard: u64,
        rate_per_user_hz: f64,
        pattern: ArrivalPattern,
        seed: u64,
        start: Time,
        total: u64,
    ) -> ClientPopulation {
        assert!(shards > 0, "population needs at least one shard");
        let shard_rate_hz = users_per_shard as f64 * rate_per_user_hz;
        assert!(shard_rate_hz > 0.0, "population must offer a positive rate");
        let root = Xoshiro256::seed_from_u64(seed);
        let mut pop = ClientPopulation {
            shards: (0..shards)
                .map(|i| Shard {
                    rng: root.derive(i as u64),
                    next: Time::NEVER,
                })
                .collect(),
            pattern,
            shard_rate_hz,
            start,
            remaining: total,
        };
        for i in 0..pop.shards.len() {
            pop.shards[i].next = pop.draw(i, start);
        }
        pop
    }

    /// Next candidate-accept loop for shard `i` from time `from`
    /// (exclusive): thinning against the pattern's peak rate.
    fn draw(&mut self, i: usize, from: Time) -> Time {
        let peak_hz = self.shard_rate_hz * self.pattern.peak();
        let start = self.start;
        let pattern = self.pattern;
        let rng = &mut self.shards[i].rng;
        let mut t = from;
        loop {
            let gap_s = rng.exp(1.0 / peak_hz);
            // Clamp to one picosecond so the stream strictly advances
            // even when a gap rounds to zero.
            t += Dur::ps(((gap_s * 1e12) as u64).max(1));
            let accept = pattern.modulation(t.since(start)) / pattern.peak();
            if rng.next_f64() < accept {
                return t;
            }
        }
    }

    /// Pop the next arrival `(time, shard)` off the merged stream.
    /// Ties break by shard index — a total order, so the merge cannot
    /// depend on evaluation order.
    pub fn next_arrival(&mut self) -> Option<(Time, u32)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let i = self
            .shards
            .iter()
            .enumerate()
            .min_by_key(|(idx, s)| (s.next, *idx))
            .map(|(idx, _)| idx)
            .expect("at least one shard");
        let t = self.shards[i].next;
        self.shards[i].next = self.draw(i, t);
        Some((t, i as u32))
    }

    /// Arrivals still to be emitted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(mut pop: ClientPopulation) -> Vec<(Time, u32)> {
        let mut out = Vec::new();
        while let Some(a) = pop.next_arrival() {
            out.push(a);
        }
        out
    }

    fn steady(shards: u32, users: u64, rate: f64, n: u64) -> ClientPopulation {
        ClientPopulation::new(
            shards,
            users,
            rate,
            ArrivalPattern::Steady,
            42,
            Time::ZERO,
            n,
        )
    }

    #[test]
    fn stream_is_deterministic_and_time_ordered() {
        let a = collect(steady(8, 1000, 1.0, 500));
        let b = collect(steady(8, 1000, 1.0, 500));
        assert_eq!(a, b, "same parameters must replay identically");
        assert_eq!(a.len(), 500);
        assert!(
            a.windows(2).all(|w| w[0].0 <= w[1].0),
            "merged arrivals must be time-ordered"
        );
    }

    #[test]
    fn per_user_state_is_not_required() {
        // A shard models its users in aggregate: a million users at rate
        // r is byte-identical to a thousand users at 1000r. This is what
        // lets a sweep point carry millions of simulated users.
        let big = collect(steady(4, 1_000_000, 0.001, 300));
        let small = collect(steady(4, 1_000, 1.0, 300));
        assert_eq!(big, small);
    }

    #[test]
    fn steady_rate_is_close_to_nominal() {
        let n = 4000;
        let arrivals = collect(steady(16, 10_000, 1.0, n)); // 160k/s aggregate
        let span = arrivals.last().unwrap().0.since(arrivals[0].0);
        let rate = n as f64 / span.as_secs_f64();
        assert!(
            (rate / 160_000.0 - 1.0).abs() < 0.15,
            "observed {rate}/s vs nominal 160000/s"
        );
    }

    #[test]
    fn all_shards_contribute() {
        let arrivals = collect(steady(8, 1000, 1.0, 800));
        for shard in 0..8u32 {
            assert!(
                arrivals.iter().any(|&(_, s)| s == shard),
                "shard {shard} never fired"
            );
        }
    }

    #[test]
    fn diurnal_swells_and_ebbs() {
        let period = Dur::ms(10);
        let pop = ClientPopulation::new(
            4,
            10_000,
            1.0,
            ArrivalPattern::Diurnal {
                period,
                trough: 0.2,
            },
            7,
            Time::ZERO,
            2000,
        );
        let arrivals = collect(pop);
        // The triangle peaks mid-period: the middle half of each period
        // must collect clearly more arrivals than the outer half.
        let (mut inner, mut outer) = (0u64, 0u64);
        for &(t, _) in &arrivals {
            let phase = t.as_ps() % period.as_ps();
            if (period.as_ps() / 4..3 * period.as_ps() / 4).contains(&phase) {
                inner += 1;
            } else {
                outer += 1;
            }
        }
        assert!(
            inner as f64 > outer as f64 * 1.5,
            "diurnal peak not visible: inner {inner} vs outer {outer}"
        );
    }

    #[test]
    fn spike_concentrates_arrivals() {
        let pop = ClientPopulation::new(
            4,
            10_000,
            1.0,
            ArrivalPattern::Spike {
                at: Dur::ms(10),
                width: Dur::ms(5),
                factor: 8.0,
            },
            11,
            Time::ZERO,
            3000,
        );
        let arrivals = collect(pop);
        let in_window = arrivals
            .iter()
            .filter(|&&(t, _)| t >= Time::ms(10) && t < Time::ms(15))
            .count();
        // 5 ms at 8x against ~25 ms at 1x: the window should hold a
        // large multiple of its proportional share.
        let share = in_window as f64 / arrivals.len() as f64;
        assert!(share > 0.35, "spike share {share} too small");
    }

    #[test]
    fn modulation_envelope_is_respected() {
        let spike = ArrivalPattern::Spike {
            at: Dur::us(5),
            width: Dur::us(2),
            factor: 4.0,
        };
        for t in 0..20u64 {
            let m = spike.modulation(Dur::us(t));
            assert!(m <= spike.peak());
            assert!(m >= 1.0);
        }
        let day = ArrivalPattern::Diurnal {
            period: Dur::us(10),
            trough: 0.3,
        };
        for t in 0..30u64 {
            let m = day.modulation(Dur::us(t));
            assert!((0.3..=1.0).contains(&m), "diurnal modulation {m}");
        }
        assert_eq!(ArrivalPattern::Steady.modulation(Dur::ms(3)), 1.0);
    }

    #[test]
    fn arrivals_start_after_the_origin() {
        let start = Time::us(700);
        let pop = ClientPopulation::new(2, 1000, 10.0, ArrivalPattern::Steady, 5, start, 100);
        assert!(collect(pop).iter().all(|&(t, _)| t > start));
    }
}
