//! Admission control for the open-loop engine.
//!
//! Under open-loop load the queue is the failure mode: once offered load
//! crosses capacity, sojourn times grow without bound and p999 runs away
//! from the mean. These policies decide, per arrival, whether a request
//! enters the queue. The control signal is the instantaneous queue depth
//! — the exact quantity the engine also exports as the
//! `util.serve.qdepth` counter track, so a trace shows the same signal
//! the policy acted on.

use serde::Serialize;
use thymesim_sim::Dur;

/// What to do with one arrival, given the current queue depth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Enqueue now.
    Admit,
    /// Shed the request (the client gets an immediate error).
    Drop,
    /// Enqueue, but only become serviceable after the given pause.
    Defer(Dur),
}

/// Admission policy, applied at arrival time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub enum AdmissionPolicy {
    /// Admit everything — the no-policy baseline whose tail the others
    /// are measured against.
    Open,
    /// Tail drop: shed arrivals once the queue holds `queue_cap`
    /// requests. Bounds queue wait (and therefore p999) directly.
    Drop { queue_cap: u32 },
    /// Backpressure: beyond the cap, arrivals are paced — each excess
    /// request is deferred by `backoff × (excess + 1)`. Nothing is lost,
    /// but burst edges are smeared out.
    Throttle { queue_cap: u32, backoff: Dur },
    /// Two lanes: lane 0 (the premium slice of the client population)
    /// is always admitted; other lanes are tail-dropped beyond the cap.
    Priority { queue_cap: u32 },
}

impl AdmissionPolicy {
    /// Decide one arrival. `queue_depth` counts requests admitted but
    /// not yet picked up by a worker; `lane` is the request's QoS lane
    /// (0 is highest).
    pub fn decide(&self, queue_depth: u64, lane: u32) -> Decision {
        match *self {
            AdmissionPolicy::Open => Decision::Admit,
            AdmissionPolicy::Drop { queue_cap } => {
                if queue_depth < queue_cap as u64 {
                    Decision::Admit
                } else {
                    Decision::Drop
                }
            }
            AdmissionPolicy::Throttle { queue_cap, backoff } => {
                if queue_depth < queue_cap as u64 {
                    Decision::Admit
                } else {
                    let excess = queue_depth - queue_cap as u64 + 1;
                    Decision::Defer(Dur::ps(backoff.as_ps().saturating_mul(excess)))
                }
            }
            AdmissionPolicy::Priority { queue_cap } => {
                if lane == 0 || queue_depth < queue_cap as u64 {
                    Decision::Admit
                } else {
                    Decision::Drop
                }
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match *self {
            AdmissionPolicy::Open => "open".into(),
            AdmissionPolicy::Drop { queue_cap } => format!("drop@{queue_cap}"),
            AdmissionPolicy::Throttle { queue_cap, .. } => format!("throttle@{queue_cap}"),
            AdmissionPolicy::Priority { queue_cap } => format!("priority@{queue_cap}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_admits_any_depth() {
        for depth in [0, 1, 10_000] {
            assert_eq!(AdmissionPolicy::Open.decide(depth, 1), Decision::Admit);
        }
    }

    #[test]
    fn drop_sheds_at_the_cap() {
        let p = AdmissionPolicy::Drop { queue_cap: 4 };
        assert_eq!(p.decide(3, 1), Decision::Admit);
        assert_eq!(p.decide(4, 1), Decision::Drop);
        assert_eq!(p.decide(100, 0), Decision::Drop, "drop ignores lanes");
    }

    #[test]
    fn throttle_paces_with_growing_backoff() {
        let p = AdmissionPolicy::Throttle {
            queue_cap: 2,
            backoff: Dur::us(10),
        };
        assert_eq!(p.decide(1, 1), Decision::Admit);
        assert_eq!(p.decide(2, 1), Decision::Defer(Dur::us(10)));
        assert_eq!(
            p.decide(5, 1),
            Decision::Defer(Dur::us(40)),
            "backoff scales with excess depth"
        );
    }

    #[test]
    fn priority_protects_lane_zero() {
        let p = AdmissionPolicy::Priority { queue_cap: 4 };
        assert_eq!(p.decide(100, 0), Decision::Admit, "lane 0 never shed");
        assert_eq!(p.decide(3, 1), Decision::Admit);
        assert_eq!(p.decide(4, 1), Decision::Drop);
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(AdmissionPolicy::Open.label(), "open");
        assert_eq!(AdmissionPolicy::Drop { queue_cap: 8 }.label(), "drop@8");
        assert_eq!(
            AdmissionPolicy::Throttle {
                queue_cap: 8,
                backoff: Dur::us(1)
            }
            .label(),
            "throttle@8"
        );
        assert_eq!(
            AdmissionPolicy::Priority { queue_cap: 6 }.label(),
            "priority@6"
        );
    }
}
