//! Datacenter network latency envelopes.
//!
//! The paper validates its injector against production latency
//! measurements (Pingmesh \[13\], Swift \[24\]): the injected 1.2–150 µs range
//! "corresponds to the [0–90th]-percentile network latency in production
//! datacenter networks", while 4 ms is "far beyond the 99th percentile".
//! This module encodes an intra-datacenter latency profile approximating
//! those published envelopes and exposes percentile queries for choosing
//! sweep points and classifying injected delays.

use thymesim_sim::Dur;

/// A piecewise-linear latency CDF: `(percentile, latency)` knots.
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    name: &'static str,
    knots: Vec<(f64, Dur)>,
}

impl LatencyProfile {
    /// Intra-datacenter (cross-rack, switched) profile approximating the
    /// Pingmesh inter-pod TCP-connect envelope and Swift fabric RTTs:
    /// single-digit µs at the median, low hundreds of µs at the 90th, and
    /// ~1 ms at the 99th.
    pub fn intra_datacenter() -> LatencyProfile {
        LatencyProfile {
            name: "intra-datacenter",
            knots: vec![
                (0.0, Dur::us(1)),
                (0.10, Dur::us(3)),
                (0.25, Dur::us(8)),
                (0.50, Dur::us(25)),
                (0.75, Dur::us(70)),
                (0.90, Dur::us(150)),
                (0.95, Dur::us(300)),
                (0.99, Dur::us(1000)),
                (0.999, Dur::us(2500)),
                (1.0, Dur::us(4000)),
            ],
        }
    }

    /// Intra-rack profile (ToR only): markedly tighter.
    pub fn intra_rack() -> LatencyProfile {
        LatencyProfile {
            name: "intra-rack",
            knots: vec![
                (0.0, Dur::ns(800)),
                (0.50, Dur::us(2)),
                (0.90, Dur::us(10)),
                (0.99, Dur::us(50)),
                (1.0, Dur::us(200)),
            ],
        }
    }

    /// Build an empirical profile from measured samples (e.g. a congested
    /// run's per-access latencies), for comparing emergent congestion
    /// against published envelopes.
    pub fn from_samples(mut samples: Vec<Dur>) -> LatencyProfile {
        assert!(samples.len() >= 2, "need at least two samples");
        samples.sort_unstable();
        let n = samples.len();
        let knots = [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0]
            .iter()
            .map(|&p: &f64| {
                let idx = ((p * (n - 1) as f64).round() as usize).min(n - 1);
                (p, samples[idx])
            })
            .collect();
        LatencyProfile {
            name: "empirical",
            knots,
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Latency at percentile `p ∈ [0, 1]` (linear interpolation in ps).
    pub fn latency_at(&self, p: f64) -> Dur {
        let p = p.clamp(0.0, 1.0);
        let knots = &self.knots;
        if p <= knots[0].0 {
            return knots[0].1;
        }
        for w in knots.windows(2) {
            let (p0, d0) = w[0];
            let (p1, d1) = w[1];
            if p <= p1 {
                let f = (p - p0) / (p1 - p0);
                let ps = d0.as_ps() as f64 + f * (d1.as_ps() as f64 - d0.as_ps() as f64);
                return Dur::ps(ps.round() as u64);
            }
        }
        knots.last().unwrap().1
    }

    /// Percentile at which `latency` falls (inverse of [`LatencyProfile::latency_at`]).
    pub fn percentile_of(&self, latency: Dur) -> f64 {
        let knots = &self.knots;
        if latency <= knots[0].1 {
            return knots[0].0;
        }
        for w in knots.windows(2) {
            let (p0, d0) = w[0];
            let (p1, d1) = w[1];
            if latency <= d1 {
                let f =
                    (latency.as_ps() - d0.as_ps()) as f64 / (d1.as_ps() - d0.as_ps()).max(1) as f64;
                return p0 + f * (p1 - p0);
            }
        }
        1.0
    }

    /// Is `latency` within the `[0, p]`-percentile envelope?
    pub fn within(&self, latency: Dur, p: f64) -> bool {
        latency <= self.latency_at(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_monotone() {
        let prof = LatencyProfile::intra_datacenter();
        let mut prev = Dur::ZERO;
        for i in 0..=100 {
            let d = prof.latency_at(i as f64 / 100.0);
            assert!(d >= prev, "CDF must be nondecreasing at p={i}");
            prev = d;
        }
    }

    #[test]
    fn inverse_round_trips() {
        let prof = LatencyProfile::intra_datacenter();
        for p in [0.1, 0.33, 0.5, 0.9, 0.99] {
            let d = prof.latency_at(p);
            let p2 = prof.percentile_of(d);
            assert!((p - p2).abs() < 1e-9, "p={p} -> {d} -> {p2}");
        }
    }

    #[test]
    fn paper_range_is_within_90th() {
        // The injected 1.2–150 µs STREAM latencies are inside [0, 90th].
        let prof = LatencyProfile::intra_datacenter();
        assert!(prof.within(Dur::from_ns_f64(1200.0), 0.90));
        assert!(prof.within(Dur::us(150), 0.90));
        assert!(!prof.within(Dur::us(151), 0.90));
    }

    #[test]
    fn four_ms_is_beyond_the_99th() {
        let prof = LatencyProfile::intra_datacenter();
        let p99 = prof.latency_at(0.99);
        assert!(Dur::ms(4) > p99, "4 ms must exceed p99 ({p99})");
        assert!(prof.percentile_of(Dur::ms(4)) > 0.999);
    }

    #[test]
    fn rack_profile_is_tighter() {
        let rack = LatencyProfile::intra_rack();
        let dc = LatencyProfile::intra_datacenter();
        for p in [0.5, 0.9, 0.99] {
            assert!(rack.latency_at(p) < dc.latency_at(p), "at p={p}");
        }
        assert_eq!(rack.name(), "intra-rack");
    }

    #[test]
    fn empirical_profile_matches_its_samples() {
        let samples: Vec<Dur> = (1..=1000).map(Dur::us).collect();
        let prof = LatencyProfile::from_samples(samples);
        assert_eq!(prof.name(), "empirical");
        let p50 = prof.latency_at(0.50);
        assert!((p50.as_us_f64() - 500.0).abs() < 10.0, "p50 {p50}");
        let p99 = prof.latency_at(0.99);
        assert!((p99.as_us_f64() - 990.0).abs() < 10.0, "p99 {p99}");
        // Inverse works on empirical knots too.
        assert!((prof.percentile_of(Dur::us(750)) - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn empirical_profile_rejects_tiny_input() {
        let _ = LatencyProfile::from_samples(vec![Dur::us(1)]);
    }

    #[test]
    fn out_of_range_percentiles_clamp() {
        let prof = LatencyProfile::intra_datacenter();
        assert_eq!(prof.latency_at(-1.0), prof.latency_at(0.0));
        assert_eq!(prof.latency_at(2.0), prof.latency_at(1.0));
        assert_eq!(prof.percentile_of(Dur::secs(1)), 1.0);
        assert_eq!(prof.percentile_of(Dur::ZERO), 0.0);
    }
}
