//! Output-queued switch and multi-hop paths — the "beyond rack-scale"
//! fabric the paper's characterization anticipates.
//!
//! Each switch port's egress is a [`SerialLink`]; a message crossing the
//! switch pays a fixed forwarding latency and then queues on the output
//! port. Congestion (multiple flows converging on one output) emerges as
//! queueing delay, which is precisely the failure mode the delay injector
//! emulates on the prototype.

use crate::link::{LinkConfig, SerialLink};
use thymesim_sim::{Dur, Time};

/// A switch with `radix` ports, each with an egress link of the given
/// configuration.
pub struct Switch {
    ports: Vec<SerialLink>,
    /// Fixed cut-through forwarding latency.
    pub forward_latency: Dur,
}

impl Switch {
    pub fn new(radix: usize, egress: LinkConfig, forward_latency: Dur) -> Switch {
        assert!(radix >= 2);
        Switch {
            ports: (0..radix).map(|_| SerialLink::new(egress)).collect(),
            forward_latency,
        }
    }

    pub fn radix(&self) -> usize {
        self.ports.len()
    }

    /// Forward a message arriving at `at` out of `out_port`.
    pub fn forward(&mut self, at: Time, out_port: usize, bytes: u64) -> Time {
        thymesim_telemetry::add("switch.forwarded", 1);
        let queued_at = at + self.forward_latency;
        self.ports[out_port].send(queued_at, bytes)
    }

    pub fn port(&self, i: usize) -> &SerialLink {
        &self.ports[i]
    }
}

/// A route from borrower to lender: an access link, zero or more
/// (switch, out-port) hops, each followed by its egress wire.
pub struct Path {
    /// First hop: the sender's NIC egress wire.
    pub access: SerialLink,
    /// Subsequent switch hops (switch index managed by the caller).
    hops: Vec<(usize, usize)>, // (switch id, out port)
}

/// A small fabric: switches indexed by id, plus helper to push a message
/// along a path.
pub struct FabricNet {
    pub switches: Vec<Switch>,
}

impl FabricNet {
    pub fn new(switches: Vec<Switch>) -> FabricNet {
        FabricNet { switches }
    }

    /// Deliver a message along `path`, returning final arrival time.
    pub fn transfer(&mut self, path: &mut Path, at: Time, bytes: u64) -> Time {
        let mut t = path.access.send(at, bytes);
        for &(sw, port) in &path.hops {
            t = self.switches[sw].forward(t, port, bytes);
        }
        t
    }
}

impl Path {
    pub fn direct(access: LinkConfig) -> Path {
        Path {
            access: SerialLink::new(access),
            hops: Vec::new(),
        }
    }

    pub fn through(access: LinkConfig, hops: Vec<(usize, usize)>) -> Path {
        Path {
            access: SerialLink::new(access),
            hops,
        }
    }

    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_link() -> LinkConfig {
        LinkConfig {
            bits_per_sec: 100e9,
            propagation: Dur::ns(50),
        }
    }

    #[test]
    fn direct_path_is_just_the_link() {
        let mut net = FabricNet::new(vec![]);
        let mut p = Path::direct(fast_link());
        let t = net.transfer(&mut p, Time::ZERO, 128);
        assert_eq!(t, Time::ps(10_240 + 50_000));
        assert_eq!(p.hop_count(), 0);
    }

    #[test]
    fn each_hop_adds_latency() {
        let sw = || Switch::new(4, fast_link(), Dur::ns(300));
        let mut net = FabricNet::new(vec![sw(), sw()]);
        let mut direct = Path::direct(fast_link());
        let mut two_hop = Path::through(fast_link(), vec![(0, 1), (1, 2)]);
        let t0 = net.transfer(&mut direct, Time::ZERO, 128);
        let t2 = net.transfer(&mut two_hop, Time::ZERO, 128);
        // Two extra (forward + serialize + propagate) legs.
        let per_hop = Dur::ns(300) + Dur::ps(10_240) + Dur::ns(50);
        assert_eq!(t2, t0 + per_hop + per_hop);
    }

    #[test]
    fn converging_flows_congest_the_output_port() {
        // Two flows share switch 0 port 3: the second message queues.
        let mut net = FabricNet::new(vec![Switch::new(
            4,
            LinkConfig {
                bits_per_sec: 80e9,
                propagation: Dur::ZERO,
            },
            Dur::ZERO,
        )]);
        let mut a = Path::through(fast_link(), vec![(0, 3)]);
        let mut b = Path::through(fast_link(), vec![(0, 3)]);
        let big = 100_000u64; // 10 us at 10 GB/s on the shared egress
        let ta = net.transfer(&mut a, Time::ZERO, big);
        let tb = net.transfer(&mut b, Time::ZERO, big);
        assert!(tb > ta, "second flow must queue behind the first");
        // The queued flow finishes one full egress serialization (10 us at
        // 10 GB/s) after the first.
        assert_eq!(tb - ta, Dur::us(10));
    }

    #[test]
    fn distinct_output_ports_do_not_interfere() {
        let mut net = FabricNet::new(vec![Switch::new(4, fast_link(), Dur::ZERO)]);
        let mut a = Path::through(fast_link(), vec![(0, 0)]);
        let mut b = Path::through(fast_link(), vec![(0, 1)]);
        let ta = net.transfer(&mut a, Time::ZERO, 100_000);
        let tb = net.transfer(&mut b, Time::ZERO, 100_000);
        assert_eq!(ta, tb, "different ports must not queue on each other");
    }

    #[test]
    fn switch_port_stats_accumulate() {
        let mut sw = Switch::new(2, fast_link(), Dur::ns(100));
        sw.forward(Time::ZERO, 1, 128);
        sw.forward(Time::ZERO, 1, 128);
        assert_eq!(sw.port(1).messages, 2);
        assert_eq!(sw.port(1).bytes_sent, 256);
        assert_eq!(sw.port(0).messages, 0);
        assert_eq!(sw.radix(), 2);
    }
}
