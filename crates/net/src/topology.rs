//! A two-tier (ToR + spine) datacenter topology of shared links.
//!
//! Rack-local traffic crosses only its ToR; cross-rack traffic also
//! climbs the rack's uplink to the spine and descends the destination
//! rack's downlink. Oversubscription is explicit: each rack's uplink has
//! its own (typically smaller) capacity, and every flow through it shares
//! the same [`SharedLink`] resource.

use crate::link::{shared_link, LinkConfig, SharedLink};
use thymesim_sim::Dur;

/// Topology parameters.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct TreeConfig {
    pub racks: usize,
    /// ToR port links (node ↔ ToR).
    pub edge: LinkConfig,
    /// Rack uplinks (ToR ↔ spine); make these slower than
    /// `edge × nodes-per-rack` to model oversubscription.
    pub uplink: LinkConfig,
    /// Cut-through forwarding latency per switch hop.
    pub hop_latency: Dur,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            racks: 4,
            edge: LinkConfig::copper_100g(),
            uplink: LinkConfig::copper_100g(),
            hop_latency: Dur::ns(300),
        }
    }
}

/// A route: ordered shared hops plus per-hop latency.
#[derive(Clone)]
pub struct Route {
    pub hops: Vec<SharedLink>,
    pub hop_latency: Dur,
}

impl Route {
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

/// The instantiated tree: per-rack ToR fabrics and up/down spine links.
///
/// Every segment is directional (a request path and a response path never
/// share a queue — switch ports are full duplex), so a flow's own
/// responses cannot head-of-line-block its requests.
pub struct TreeTopology {
    cfg: TreeConfig,
    /// Intra-rack ToR traversal, borrower→lender direction, per rack.
    tor_fwd: Vec<SharedLink>,
    /// Intra-rack ToR traversal, lender→borrower direction, per rack.
    tor_rev: Vec<SharedLink>,
    /// Per-rack uplink (toward the spine) and downlink (from the spine).
    up: Vec<SharedLink>,
    down: Vec<SharedLink>,
}

impl TreeTopology {
    pub fn new(cfg: TreeConfig) -> TreeTopology {
        assert!(cfg.racks >= 1);
        TreeTopology {
            tor_fwd: (0..cfg.racks).map(|_| shared_link(cfg.edge)).collect(),
            tor_rev: (0..cfg.racks).map(|_| shared_link(cfg.edge)).collect(),
            up: (0..cfg.racks).map(|_| shared_link(cfg.uplink)).collect(),
            down: (0..cfg.racks).map(|_| shared_link(cfg.uplink)).collect(),
            cfg,
        }
    }

    pub fn config(&self) -> &TreeConfig {
        &self.cfg
    }

    /// The shared hops a *request* takes from a node in `src_rack` to a
    /// node in `dst_rack` (excluding the sender's own access link).
    pub fn route(&self, src_rack: usize, dst_rack: usize) -> Route {
        assert!(src_rack < self.cfg.racks && dst_rack < self.cfg.racks);
        let hops = if src_rack == dst_rack {
            // One ToR traversal.
            vec![SharedLink::clone(&self.tor_fwd[src_rack])]
        } else {
            vec![
                SharedLink::clone(&self.up[src_rack]),
                SharedLink::clone(&self.down[dst_rack]),
            ]
        };
        Route {
            hops,
            hop_latency: self.cfg.hop_latency,
        }
    }

    /// Both directions of a borrower(`src_rack`) ↔ lender(`dst_rack`)
    /// flow: `(request route, response route)`, guaranteed to use
    /// direction-distinct resources.
    pub fn route_pair(&self, src_rack: usize, dst_rack: usize) -> (Route, Route) {
        let fwd = self.route(src_rack, dst_rack);
        let rev = if src_rack == dst_rack {
            Route {
                hops: vec![SharedLink::clone(&self.tor_rev[src_rack])],
                hop_latency: self.cfg.hop_latency,
            }
        } else {
            self.route(dst_rack, src_rack)
        };
        (fwd, rev)
    }

    /// Total bytes that crossed rack `r`'s uplink.
    pub fn uplink_bytes(&self, r: usize) -> u64 {
        self.up[r].borrow().bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_sim::Time;

    #[test]
    fn intra_rack_is_one_hop_cross_rack_two() {
        let t = TreeTopology::new(TreeConfig::default());
        assert_eq!(t.route(1, 1).hop_count(), 1);
        assert_eq!(t.route(0, 3).hop_count(), 2);
    }

    #[test]
    fn cross_rack_flows_share_the_uplink() {
        let t = TreeTopology::new(TreeConfig::default());
        let r1 = t.route(0, 1);
        let r2 = t.route(0, 2);
        // Both flows leave rack 0: same uplink object.
        let big = 1_000_000u64;
        let a = r1.hops[0].borrow_mut().send(Time::ZERO, big);
        let b = r2.hops[0].borrow_mut().send(Time::ZERO, big);
        assert!(b > a, "second flow must queue on the shared uplink");
        assert_eq!(t.uplink_bytes(0), 2 * big);
    }

    #[test]
    fn different_racks_do_not_interfere() {
        let t = TreeTopology::new(TreeConfig::default());
        let r1 = t.route(0, 1);
        let r2 = t.route(2, 3);
        let big = 1_000_000u64;
        let a = r1.hops[0].borrow_mut().send(Time::ZERO, big);
        let b = r2.hops[0].borrow_mut().send(Time::ZERO, big);
        assert_eq!(a, b, "distinct racks have distinct uplinks");
    }

    #[test]
    fn intra_rack_traffic_avoids_the_spine() {
        let t = TreeTopology::new(TreeConfig::default());
        let r = t.route(1, 1);
        r.hops[0].borrow_mut().send(Time::ZERO, 4096);
        assert_eq!(t.uplink_bytes(1), 0);
    }

    #[test]
    fn route_pair_directions_are_distinct_resources() {
        let t = TreeTopology::new(TreeConfig::default());
        // Intra-rack: forward and reverse must not share a queue.
        let (fwd, rev) = t.route_pair(0, 0);
        let a = fwd.hops[0].borrow_mut().send(Time::ZERO, 1_000_000);
        let b = rev.hops[0].borrow_mut().send(Time::ZERO, 1_000_000);
        assert_eq!(a, b, "directions must not queue on each other");
        // Cross-rack: same property.
        let (fwd, rev) = t.route_pair(0, 1);
        let a = fwd.hops[0].borrow_mut().send(Time::ZERO, 1_000_000);
        let b = rev.hops[0].borrow_mut().send(Time::ZERO, 1_000_000);
        assert_eq!(a, b);
    }
}
