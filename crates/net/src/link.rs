//! Serial point-to-point links.
//!
//! ThymesisFlow's rack-scale prototype connects the two AlphaData cards
//! with a 100 Gb/s copper cable; beyond rack-scale the same model chains
//! through switches. A link is a serial resource: each message occupies it
//! for `bytes / rate`, then spends the propagation delay in flight. FIFO
//! ordering is inherent (it is a wire).

use std::cell::RefCell;
use std::rc::Rc;
use thymesim_sim::{Dur, Time};

/// Static link parameters.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct LinkConfig {
    /// Raw rate in bits per second.
    pub bits_per_sec: f64,
    /// One-way propagation delay (cable + PHY).
    pub propagation: Dur,
}

impl LinkConfig {
    /// The prototype's 100 Gb/s direct-attach copper link: ~5 m cable plus
    /// transceiver latency ≈ 100 ns each way.
    pub fn copper_100g() -> LinkConfig {
        LinkConfig {
            bits_per_sec: 100e9,
            propagation: Dur::ns(100),
        }
    }

    pub fn bytes_per_sec(&self) -> f64 {
        self.bits_per_sec / 8.0
    }
}

/// One direction of a link.
#[derive(Debug)]
pub struct SerialLink {
    cfg: LinkConfig,
    ps_per_byte: f64,
    next_free: Time,
    pub bytes_sent: u64,
    pub messages: u64,
    queue_wait_ps: u128,
    /// Windowed busy-fraction counter track, opt-in via
    /// [`SerialLink::with_track`]. `None` records nothing.
    track: Option<&'static str>,
}

impl SerialLink {
    pub fn new(cfg: LinkConfig) -> SerialLink {
        assert!(cfg.bits_per_sec > 0.0);
        SerialLink {
            cfg,
            ps_per_byte: 8.0e12 / cfg.bits_per_sec,
            next_free: Time::ZERO,
            bytes_sent: 0,
            messages: 0,
            queue_wait_ps: 0,
            track: None,
        }
    }

    /// Record this link's occupancy on the named windowed busy-fraction
    /// track. The name is claimed exclusively per simulated point: only
    /// the first link claiming it records, so a busy track always
    /// describes one serial wire and its window fractions stay within
    /// [0, 1] even when an experiment builds several identically
    /// labelled links in one point.
    pub fn with_track(mut self, track: &'static str) -> SerialLink {
        if thymesim_telemetry::claim(track) == 0 {
            self.track = Some(track);
        }
        self
    }

    pub fn config(&self) -> LinkConfig {
        self.cfg
    }

    /// Transmit a message; returns its arrival time at the far end.
    pub fn send(&mut self, at: Time, bytes: u64) -> Time {
        let start = at.max2(self.next_free);
        let ser = Dur::ps((bytes as f64 * self.ps_per_byte).round() as u64);
        self.next_free = start + ser;
        self.bytes_sent += bytes;
        self.messages += 1;
        self.queue_wait_ps += (start - at).as_ps() as u128;
        thymesim_telemetry::latency("link.queue_wait", start - at);
        thymesim_telemetry::add("link.bytes", bytes);
        if let Some(track) = self.track {
            thymesim_telemetry::counter_busy(track, start, start + ser);
        }
        start + ser + self.cfg.propagation
    }

    /// Mean time messages waited for the wire.
    pub fn mean_queue_wait(&self) -> Dur {
        if self.messages == 0 {
            Dur::ZERO
        } else {
            Dur::ps((self.queue_wait_ps / self.messages as u128) as u64)
        }
    }

    /// Achieved bandwidth over `[0, horizon]` in bytes/second.
    pub fn throughput(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.bytes_sent as f64 / horizon.as_secs_f64()
        }
    }
}

/// A link shared between several traffic sources on one virtual timeline
/// (an oversubscribed uplink, a spine port).
pub type SharedLink = Rc<RefCell<SerialLink>>;

/// Make a link shareable.
pub fn shared_link(cfg: LinkConfig) -> SharedLink {
    Rc::new(RefCell::new(SerialLink::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_plus_propagation() {
        let mut l = SerialLink::new(LinkConfig {
            bits_per_sec: 100e9,
            propagation: Dur::ns(100),
        });
        // 128 B = 1024 bits at 100 Gb/s = 10.24 ns + 100 ns.
        let t = l.send(Time::ZERO, 128);
        assert_eq!(t, Time::ps(10_240 + 100_000));
    }

    #[test]
    fn messages_queue_fifo() {
        let mut l = SerialLink::new(LinkConfig {
            bits_per_sec: 80e9, // 10 GB/s -> 0.1 ns/byte
            propagation: Dur::ZERO,
        });
        let a = l.send(Time::ZERO, 1000); // 100 ns
        let b = l.send(Time::ZERO, 1000); // waits
        assert_eq!(a, Time::ns(100));
        assert_eq!(b, Time::ns(200));
        assert_eq!(l.mean_queue_wait(), Dur::ns(50));
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut l = SerialLink::new(LinkConfig::copper_100g());
        l.send(Time::ZERO, 128);
        let t = l.send(Time::us(10), 128);
        assert!(t < Time::us(11));
        assert_eq!(l.messages, 2);
        assert_eq!(l.bytes_sent, 256);
    }

    #[test]
    fn saturated_link_reaches_configured_rate() {
        let mut l = SerialLink::new(LinkConfig::copper_100g());
        let n = 100_000u64;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = l.send(Time::ZERO, 128);
        }
        let bw = (n * 128) as f64 / (last.as_secs_f64() - 100e-9);
        assert!((bw / 12.5e9 - 1.0).abs() < 1e-3, "bw={bw}");
    }
}
