//! # thymesim-net
//!
//! The network substrate: serial point-to-point links with FIFO queueing
//! ([`link`]), output-queued switches and multi-hop paths for the
//! beyond-rack topologies the paper anticipates ([`switch`]), and
//! published datacenter latency envelopes used to classify injected
//! delays against production percentiles ([`datacenter`]).

//! ```
//! use thymesim_net::*;
//! use thymesim_sim::Time;
//!
//! // An oversubscribed rack uplink shared by two flows.
//! let up = shared_link(LinkConfig::copper_100g());
//! let a = up.borrow_mut().send(Time::ZERO, 100_000);
//! let b = up.borrow_mut().send(Time::ZERO, 100_000);
//! assert!(b > a); // the second flow queues
//! ```

pub mod datacenter;
pub mod link;
pub mod switch;
pub mod topology;

pub use datacenter::LatencyProfile;
pub use link::{shared_link, LinkConfig, SerialLink, SharedLink};
pub use switch::{FabricNet, Path, Switch};
pub use topology::{Route, TreeConfig, TreeTopology};
