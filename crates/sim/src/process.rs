//! Virtual-time process execution.
//!
//! Concurrent workload instances (e.g. eight STREAM processes contending for
//! one NIC) are modelled as [`Process`]es, each with its own logical clock.
//! The executor repeatedly steps the process with the earliest next-event
//! time, so accesses arrive at shared resources (delay gate, link, memory
//! bus) in near-global time order and contention emerges naturally.
//!
//! Each `step` should perform one externally visible transaction (one memory
//! access, one request) and advance the process's clock past it. Ties are
//! broken by process index, keeping runs exactly deterministic.

use crate::time::Time;

/// Outcome of stepping a process once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// The process has more work; `next_time` reflects its new clock.
    Continue,
    /// The process finished at its current clock.
    Done,
}

/// A workload instance advancing on the shared virtual timeline.
pub trait Process<S: ?Sized> {
    /// Virtual time at which this process's next transaction begins.
    /// Return [`Time::NEVER`] if the process is blocked forever or done.
    fn next_time(&self) -> Time;

    /// Perform one transaction against the shared state.
    fn step(&mut self, shared: &mut S) -> Step;
}

/// Statistics from an executor run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    pub steps: u64,
    /// Virtual time of the last step taken.
    pub end: Time,
    /// Number of processes that reported [`Step::Done`].
    pub finished: usize,
}

/// Run processes in global virtual-time order until all are done or every
/// remaining next-time exceeds `deadline`.
///
/// The min-scan is linear in the number of processes; experiments use at
/// most a few hundred, and each step does far more work than the scan.
/// `next_time` takes `&self` and processes cannot reach each other, so a
/// process's next time can only change when it steps — the executor
/// caches the times and re-queries only the stepped process, turning the
/// scan into a flat compare loop with no virtual calls.
pub fn run<S: ?Sized, P: Process<S>>(procs: &mut [P], shared: &mut S, deadline: Time) -> RunStats {
    // Done processes park at NEVER, which also encodes "blocked forever";
    // both are unrunnable, and only Done increments `finished`.
    let mut next: Vec<Time> = procs.iter().map(|p| p.next_time()).collect();
    let mut stats = RunStats::default();
    loop {
        let mut best: Option<(usize, Time)> = None;
        for (i, &t) in next.iter().enumerate() {
            match best {
                Some((_, bt)) if bt <= t => {}
                _ => best = Some((i, t)),
            }
        }
        let Some((i, t)) = best else { break };
        if t > deadline || t == Time::NEVER {
            break;
        }
        stats.steps += 1;
        stats.end = t;
        if procs[i].step(shared) == Step::Done {
            next[i] = Time::NEVER;
            stats.finished += 1;
        } else {
            next[i] = procs[i].next_time();
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    /// A process that appends (id, time) to a shared log every `period`.
    struct Ticker {
        id: u32,
        at: Time,
        period: Dur,
        remaining: u32,
    }

    impl Process<Vec<(u32, Time)>> for Ticker {
        fn next_time(&self) -> Time {
            if self.remaining == 0 {
                Time::NEVER
            } else {
                self.at
            }
        }
        fn step(&mut self, shared: &mut Vec<(u32, Time)>) -> Step {
            shared.push((self.id, self.at));
            self.at += self.period;
            self.remaining -= 1;
            if self.remaining == 0 {
                Step::Done
            } else {
                Step::Continue
            }
        }
    }

    #[test]
    fn steps_in_global_time_order() {
        let mut procs = vec![
            Ticker {
                id: 0,
                at: Time::ns(0),
                period: Dur::ns(10),
                remaining: 5,
            },
            Ticker {
                id: 1,
                at: Time::ns(3),
                period: Dur::ns(7),
                remaining: 5,
            },
        ];
        let mut log = Vec::new();
        let stats = run(&mut procs, &mut log, Time::NEVER);
        assert_eq!(stats.steps, 10);
        assert_eq!(stats.finished, 2);
        assert!(
            log.windows(2).all(|w| w[0].1 <= w[1].1),
            "log not time-ordered: {log:?}"
        );
    }

    #[test]
    fn tie_break_is_by_index() {
        let mut procs = vec![
            Ticker {
                id: 7,
                at: Time::ns(5),
                period: Dur::ns(100),
                remaining: 1,
            },
            Ticker {
                id: 3,
                at: Time::ns(5),
                period: Dur::ns(100),
                remaining: 1,
            },
        ];
        let mut log = Vec::new();
        run(&mut procs, &mut log, Time::NEVER);
        assert_eq!(log, vec![(7, Time::ns(5)), (3, Time::ns(5))]);
    }

    #[test]
    fn deadline_stops_execution() {
        let mut procs = vec![Ticker {
            id: 0,
            at: Time::ns(0),
            period: Dur::ns(10),
            remaining: 1000,
        }];
        let mut log = Vec::new();
        let stats = run(&mut procs, &mut log, Time::ns(55));
        // Ticks at 0,10,20,30,40,50 are <= 55.
        assert_eq!(stats.steps, 6);
        assert_eq!(stats.finished, 0);
        assert_eq!(stats.end, Time::ns(50));
    }

    #[test]
    fn empty_process_list() {
        let mut procs: Vec<Ticker> = Vec::new();
        let mut log = Vec::new();
        let stats = run(&mut procs, &mut log, Time::NEVER);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            (0..8u32)
                .map(|i| Ticker {
                    id: i,
                    at: Time::ns(i as u64 * 3),
                    period: Dur::ns(5 + i as u64),
                    remaining: 20,
                })
                .collect::<Vec<_>>()
        };
        let mut log1 = Vec::new();
        let mut log2 = Vec::new();
        run(&mut build(), &mut log1, Time::NEVER);
        run(&mut build(), &mut log2, Time::NEVER);
        assert_eq!(log1, log2);
    }
}
