//! A compact actor-based discrete-event engine.
//!
//! Components that exchange asynchronous messages (switch ports, the
//! memtier client/server pair, failure injectors) register as [`Actor`]s.
//! Each event carries a destination actor, an opaque `kind`, and a `u64`
//! payload; actors schedule further events through [`Ctx`]. Heavier state
//! rides inside the actors themselves, keeping events `Copy` and the queue
//! allocation-free on the hot path.

use crate::queue::EventQueue;
use crate::time::Time;

/// Identifies an actor registered with an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

/// An event in flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub to: ActorId,
    /// Actor-interpreted discriminator (e.g. "packet arrival", "timeout").
    pub kind: u32,
    pub payload: u64,
}

/// Scheduling interface handed to actors during dispatch.
pub struct Ctx<'a> {
    now: Time,
    queue: &'a mut EventQueue<Event>,
}

impl Ctx<'_> {
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule an event at an absolute instant (must not be in the past).
    ///
    /// Scheduling into the past breaks determinism silently (the event
    /// pops "next" regardless of causality), so the check is a hard
    /// `assert!` in every build profile — the same policy as
    /// [`Engine::post`].
    #[inline]
    pub fn schedule_at(&mut self, at: Time, ev: Event) {
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, ev);
    }

    /// Schedule an event `delay` after now.
    ///
    /// Checked like [`Ctx::schedule_at`]: `now + delay` wrapping around
    /// `u64::MAX` in a release build would otherwise land the event in
    /// the far past.
    #[inline]
    pub fn schedule_in(&mut self, delay: crate::time::Dur, ev: Event) {
        let at = self.now + delay;
        assert!(at >= self.now, "scheduling into the past");
        self.queue.push(at, ev);
    }
}

/// A message-driven simulation component.
pub trait Actor {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>);
}

/// Observes every dispatched event: `(dispatch time, event, queue depth
/// after pop)`. Installed by observability layers; the engine itself
/// never depends on them.
pub type Tracer = Box<dyn FnMut(Time, &Event, usize)>;

/// Owns the actors and the future-event list and runs the main loop.
pub struct Engine {
    actors: Vec<Box<dyn Actor>>,
    queue: EventQueue<Event>,
    now: Time,
    processed: u64,
    tracer: Option<Tracer>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Engine {
        Engine {
            actors: Vec::new(),
            queue: EventQueue::new(),
            now: Time::ZERO,
            processed: 0,
            tracer: None,
        }
    }

    /// Install a dispatch observer. Purely observational: the tracer
    /// sees each event before its actor runs but cannot influence
    /// scheduling, so an instrumented run is timing-identical.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    pub fn add_actor(&mut self, actor: Box<dyn Actor>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(actor);
        id
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Inject an event from outside the actor graph.
    pub fn post(&mut self, at: Time, ev: Event) {
        assert!(at >= self.now, "posting into the past");
        self.queue.push(at, ev);
    }

    /// Run until the queue drains or virtual time passes `deadline`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let start = self.processed;
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            self.now = at;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer(at, &ev, self.queue.len());
            }
            let idx = ev.to.0 as usize;
            assert!(idx < self.actors.len(), "event for unknown actor {idx}");
            // Split borrow: take the actor out so it can schedule through us.
            let mut ctx = Ctx {
                now: at,
                queue: &mut self.queue,
            };
            // Safety of logic: an actor never removes actors, so index stays valid.
            let actor = &mut self.actors[idx];
            actor.handle(ev, &mut ctx);
            self.processed += 1;
        }
        self.processed - start
    }

    /// Drain the queue completely.
    pub fn run(&mut self) -> u64 {
        self.run_until(Time::NEVER)
    }

    /// Mutable access to a registered actor (for inspection between phases).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut dyn Actor {
        self.actors[id.0 as usize].as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    /// Ping-pong pair: sends the payload back and forth, decrementing it.
    struct Ponger {
        peer: Option<ActorId>,
        latency: Dur,
        received: Vec<(Time, u64)>,
    }

    impl Actor for Ponger {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now(), ev.payload));
            if ev.payload > 0 {
                if let Some(peer) = self.peer {
                    ctx.schedule_in(
                        self.latency,
                        Event {
                            to: peer,
                            kind: 0,
                            payload: ev.payload - 1,
                        },
                    );
                }
            }
        }
    }

    #[test]
    fn ping_pong_terminates_with_correct_timing() {
        // Actor ids are assigned sequentially, so both peers are known up-front.
        let mut eng = Engine::new();
        let a = eng.add_actor(Box::new(Ponger {
            peer: Some(ActorId(1)),
            latency: Dur::ns(10),
            received: vec![],
        }));
        let _b = eng.add_actor(Box::new(Ponger {
            peer: Some(ActorId(0)),
            latency: Dur::ns(10),
            received: vec![],
        }));
        eng.post(
            Time::ZERO,
            Event {
                to: a,
                kind: 0,
                payload: 5,
            },
        );
        let n = eng.run();
        // payload 5 at t=0 (a), 4 at 10 (b), 3 at 20 (a), 2 at 30, 1 at 40, 0 at 50.
        assert_eq!(n, 6);
        assert_eq!(eng.now(), Time::ns(50));
    }

    #[test]
    fn tracer_sees_every_dispatch_without_changing_timing() {
        use std::cell::RefCell;
        use std::rc::Rc;
        type TraceLog = Rc<RefCell<Vec<(Time, u64, usize)>>>;
        let run = |trace: Option<TraceLog>| {
            let mut eng = Engine::new();
            let a = eng.add_actor(Box::new(Ponger {
                peer: Some(ActorId(1)),
                latency: Dur::ns(10),
                received: vec![],
            }));
            let _b = eng.add_actor(Box::new(Ponger {
                peer: Some(ActorId(0)),
                latency: Dur::ns(10),
                received: vec![],
            }));
            if let Some(log) = trace {
                eng.set_tracer(Box::new(move |at, ev, depth| {
                    log.borrow_mut().push((at, ev.payload, depth));
                }));
            }
            eng.post(
                Time::ZERO,
                Event {
                    to: a,
                    kind: 0,
                    payload: 3,
                },
            );
            eng.run();
            (eng.now(), eng.events_processed())
        };
        let log = Rc::new(RefCell::new(Vec::new()));
        let traced = run(Some(Rc::clone(&log)));
        let plain = run(None);
        assert_eq!(traced, plain, "tracer must not perturb the simulation");
        let log = log.borrow();
        assert_eq!(log.len(), 4, "one tracer call per dispatched event");
        assert_eq!(log[0], (Time::ZERO, 3, 0));
        assert_eq!(log[3].0, Time::ns(30));
    }

    #[test]
    fn run_until_respects_deadline() {
        struct SelfTicker;
        impl Actor for SelfTicker {
            fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
                ctx.schedule_in(Dur::ns(100), ev);
            }
        }
        let mut eng = Engine::new();
        let id = eng.add_actor(Box::new(SelfTicker));
        eng.post(
            Time::ZERO,
            Event {
                to: id,
                kind: 0,
                payload: 0,
            },
        );
        let n = eng.run_until(Time::ns(450));
        assert_eq!(n, 5); // t = 0,100,200,300,400
        assert_eq!(eng.now(), Time::ns(400));
        let n2 = eng.run_until(Time::ns(650));
        assert_eq!(n2, 2); // 500, 600
    }

    #[test]
    #[should_panic(expected = "posting into the past")]
    fn cannot_post_into_past() {
        struct Nop;
        impl Actor for Nop {
            fn handle(&mut self, _: Event, _: &mut Ctx<'_>) {}
        }
        let mut eng = Engine::new();
        let id = eng.add_actor(Box::new(Nop));
        eng.post(
            Time::ns(100),
            Event {
                to: id,
                kind: 0,
                payload: 0,
            },
        );
        eng.run();
        eng.post(
            Time::ns(50),
            Event {
                to: id,
                kind: 0,
                payload: 0,
            },
        );
    }
}
