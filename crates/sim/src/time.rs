//! Simulated time.
//!
//! All of thymesim runs on a single virtual timeline measured in integer
//! **picoseconds**. Picoseconds let us mix clock domains exactly (a 250 MHz
//! FPGA cycle is 4 000 ps, a 2 GHz CPU cycle is 500 ps, a 64 B flit on a
//! 100 Gb/s link is 5 120 ps) without accumulating rounding error. A `u64`
//! of picoseconds covers ~213 simulated days, far beyond any experiment.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in picoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

pub const PS: u64 = 1;
pub const NS: u64 = 1_000;
pub const US: u64 = 1_000_000;
pub const MS: u64 = 1_000_000_000;
pub const SEC: u64 = 1_000_000_000_000;

impl Time {
    pub const ZERO: Time = Time(0);
    /// A sentinel instant later than any reachable simulation time.
    pub const NEVER: Time = Time(u64::MAX);

    #[inline]
    pub fn ps(v: u64) -> Time {
        Time(v)
    }
    #[inline]
    pub fn ns(v: u64) -> Time {
        Time(v * NS)
    }
    #[inline]
    pub fn us(v: u64) -> Time {
        Time(v * US)
    }
    #[inline]
    pub fn ms(v: u64) -> Time {
        Time(v * MS)
    }
    #[inline]
    pub fn secs(v: u64) -> Time {
        Time(v * SEC)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Saturating difference `self - earlier` (zero if `earlier` is later).
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn min2(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
    #[inline]
    pub fn max2(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    #[inline]
    pub fn ps(v: u64) -> Dur {
        Dur(v)
    }
    #[inline]
    pub fn ns(v: u64) -> Dur {
        Dur(v * NS)
    }
    #[inline]
    pub fn us(v: u64) -> Dur {
        Dur(v * US)
    }
    #[inline]
    pub fn ms(v: u64) -> Dur {
        Dur(v * MS)
    }
    #[inline]
    pub fn secs(v: u64) -> Dur {
        Dur(v * SEC)
    }
    /// Build a duration from a (possibly fractional) count of nanoseconds.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Dur {
        debug_assert!(ns >= 0.0);
        Dur((ns * NS as f64).round() as u64)
    }

    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / NS as f64
    }
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / US as f64
    }
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / MS as f64
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}
impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}
impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ps(self.0))
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ps(self.0))
    }
}
impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ps(self.0))
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ps(self.0))
    }
}

/// Human-readable rendering of a picosecond count with an adaptive unit.
fn fmt_ps(ps: u64) -> String {
    if ps >= SEC {
        format!("{:.3}s", ps as f64 / SEC as f64)
    } else if ps >= MS {
        format!("{:.3}ms", ps as f64 / MS as f64)
    } else if ps >= US {
        format!("{:.3}us", ps as f64 / US as f64)
    } else if ps >= NS {
        format!("{:.3}ns", ps as f64 / NS as f64)
    } else {
        format!("{}ps", ps)
    }
}

/// A fixed-frequency clock domain used to convert between cycle counts and
/// picoseconds. Frequencies are stored as an exact picosecond cycle length,
/// so domains like 250 MHz (4 000 ps) round-trip losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    cycle_ps: u64,
}

impl Clock {
    /// A clock with the given cycle time.
    pub fn from_cycle(cycle: Dur) -> Clock {
        assert!(cycle.0 > 0, "clock cycle must be positive");
        Clock { cycle_ps: cycle.0 }
    }

    /// A clock with the given frequency in MHz. The frequency must divide
    /// 10^6 MHz·ps evenly (all realistic FPGA/CPU frequencies do).
    pub fn mhz(mhz: u64) -> Clock {
        assert!(mhz > 0, "clock frequency must be positive");
        assert_eq!(
            1_000_000 % mhz,
            0,
            "frequency {mhz} MHz does not give an integral picosecond period"
        );
        Clock {
            cycle_ps: 1_000_000 / mhz,
        }
    }

    pub fn ghz(ghz: u64) -> Clock {
        Clock::mhz(ghz * 1000)
    }

    #[inline]
    pub fn cycle(self) -> Dur {
        Dur(self.cycle_ps)
    }

    /// Number of *completed* cycles at instant `t` (cycle 0 spans [0, cycle)).
    #[inline]
    pub fn cycles_at(self, t: Time) -> u64 {
        t.0 / self.cycle_ps
    }

    /// The instant at which cycle `c` begins.
    #[inline]
    pub fn time_of_cycle(self, c: u64) -> Time {
        Time(c * self.cycle_ps)
    }

    /// Duration of `n` cycles.
    #[inline]
    pub fn cycles(self, n: u64) -> Dur {
        Dur(n * self.cycle_ps)
    }

    /// The first cycle boundary at or after `t`.
    #[inline]
    pub fn next_edge(self, t: Time) -> Time {
        let c = t.0.div_ceil(self.cycle_ps);
        Time(c * self.cycle_ps)
    }
}

// Serde impls are written by hand: `Time`/`Dur` serialize transparently
// as raw picosecond counts and `Clock` as its cycle length, so configs
// hash and round-trip as plain integers.
impl serde::Serialize for Time {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(self.0)
    }
}

impl serde::Deserialize for Time {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_u64()
            .map(Time)
            .ok_or_else(|| serde::Error::msg("Time: expected picosecond count"))
    }
}

impl serde::Serialize for Dur {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(self.0)
    }
}

impl serde::Deserialize for Dur {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        v.as_u64()
            .map(Dur)
            .ok_or_else(|| serde::Error::msg("Dur: expected picosecond count"))
    }
}

impl serde::Serialize for Clock {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(self.cycle_ps)
    }
}

impl serde::Deserialize for Clock {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_u64() {
            Some(ps) if ps > 0 => Ok(Clock { cycle_ps: ps }),
            _ => Err(serde::Error::msg("Clock: expected positive cycle length")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::ns(1).as_ps(), 1_000);
        assert_eq!(Time::us(1), Time::ns(1000));
        assert_eq!(Time::ms(1), Time::us(1000));
        assert_eq!(Time::secs(1), Time::ms(1000));
        assert_eq!(Dur::ns(3) * 4, Dur::ns(12));
        assert_eq!(Dur::ns(12) / 4, Dur::ns(3));
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::us(5);
        assert_eq!(t + Dur::us(2), Time::us(7));
        assert_eq!(Time::us(7) - t, Dur::us(2));
        assert_eq!(t.since(Time::us(9)), Dur::ZERO);
        assert_eq!(Time::us(9).since(t), Dur::us(4));
    }

    #[test]
    fn clock_cycle_round_trip() {
        let fpga = Clock::mhz(250);
        assert_eq!(fpga.cycle(), Dur::ns(4));
        assert_eq!(fpga.cycles_at(Time::ns(4)), 1);
        assert_eq!(fpga.cycles_at(Time::ns(3)), 0);
        assert_eq!(fpga.time_of_cycle(1000), Time::us(4));
        let cpu = Clock::ghz(2);
        assert_eq!(cpu.cycle(), Dur::ps(500));
    }

    #[test]
    fn clock_next_edge() {
        let c = Clock::mhz(250);
        assert_eq!(c.next_edge(Time::ZERO), Time::ZERO);
        assert_eq!(c.next_edge(Time::ns(1)), Time::ns(4));
        assert_eq!(c.next_edge(Time::ns(4)), Time::ns(4));
        assert_eq!(c.next_edge(Time::ns(5)), Time::ns(8));
    }

    #[test]
    #[should_panic(expected = "integral picosecond")]
    fn clock_rejects_non_integral_period() {
        let _ = Clock::mhz(333);
    }

    #[test]
    fn display_adapts_units() {
        assert_eq!(format!("{}", Time::ns(4)), "4.000ns");
        assert_eq!(format!("{}", Dur::us(150)), "150.000us");
        assert_eq!(format!("{}", Dur::ps(12)), "12ps");
        assert_eq!(format!("{}", Dur::ms(4)), "4.000ms");
    }

    #[test]
    fn dur_sum() {
        let total: Dur = [Dur::ns(1), Dur::ns(2), Dur::ns(3)].into_iter().sum();
        assert_eq!(total, Dur::ns(6));
    }
}
