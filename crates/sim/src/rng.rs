//! Deterministic pseudo-random number generation.
//!
//! Experiments must be exactly reproducible across runs, platforms, and
//! library versions, so the kernel carries its own small generators instead
//! of depending on the (version-sensitive) algorithms behind external
//! crates: [`SplitMix64`] for seeding and [`Xoshiro256`] (xoshiro256**) for
//! the main stream.

/// SplitMix64: a tiny, high-quality 64-bit generator used to expand a single
/// `u64` seed into the larger state of [`Xoshiro256`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for workload synthesis
/// (Kronecker edges, key choices, delay samples).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed from a single word via SplitMix64, per the xoshiro authors'
    /// recommendation. A zero seed is remapped to a fixed non-zero state.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        let mut s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        if s == [0; 4] {
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
        }
        Xoshiro256 { s }
    }

    /// Derive an independent stream for a sub-component: hashes the label
    /// into the seed so that adding components never perturbs existing ones.
    pub fn derive(&self, label: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(self.s[0] ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Xoshiro256::seed_from_u64(sm.next_u64())
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift rejection method.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening multiply maps a uniform u64 onto [0, bound) with a tiny,
        // rejected bias region.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed with the given mean (inverse-CDF method).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        // 1 - u is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_streams() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = Xoshiro256::seed_from_u64(7);
        let mut d1 = root.derive(1);
        let mut d1b = root.derive(1);
        let mut d2 = root.derive(2);
        assert_eq!(d1.next_u64(), d1b.next_u64());
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((2.9..3.1).contains(&mean), "exp mean {mean} far from 3");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left identity order"
        );
    }
}
