//! # thymesim-sim
//!
//! Discrete-event simulation kernel underlying the thymesim stack:
//!
//! * [`time`] — integer-picosecond virtual time and clock domains;
//! * [`queue`] — deterministic future-event list with FIFO tie-breaking;
//! * [`engine`] — actor-based event dispatch for message-driven components;
//! * [`process`] — virtual-time interleaving of workload instances;
//! * [`rng`] — self-contained deterministic generators (SplitMix64,
//!   xoshiro256**) so results are stable across platforms and crate
//!   versions;
//! * [`stats`] — Welford accumulators, log-linear histograms, throughput
//!   meters, and least-squares fits for the validation experiments.
//!
//! Everything in thymesim that advances "time" goes through these types;
//! no component reads wall-clock time, so every experiment is exactly
//! reproducible from its seed and configuration.

pub mod engine;
pub mod pool;
pub mod process;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Actor, ActorId, Ctx, Engine, Event};
pub use pool::{default_jobs, ordered_map};
pub use process::{run as run_processes, Process, RunStats, Step};
pub use queue::EventQueue;
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{linear_fit, Histogram, LinearFit, SeriesRecorder, ThroughputMeter, Welford};
pub use time::{Clock, Dur, Time};
