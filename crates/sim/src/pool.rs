//! A tiny deterministic work pool: run a function over a slice on `N`
//! OS threads and return the results **in input order**, regardless of
//! which thread finished which item when.
//!
//! This is the execution layer under `thymesim-core`'s sweep harness.
//! Determinism is structural, not accidental: each item's inputs (and
//! any RNG seed) depend only on the item itself, and the output vector
//! is reassembled by input index — thread scheduling can change wall
//! clock but never results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller doesn't say:
/// the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item of `items`, using up to `jobs` threads, and
/// collect the results in input order. `f` receives `(index, &item)`.
///
/// `jobs == 1` degenerates to a plain serial loop on the calling
/// thread, so serial and parallel runs share one code path for the
/// work itself. A panic in `f` propagates to the caller after all
/// in-flight items finish.
pub fn ordered_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                done.lock().expect("pool worker panicked").push((i, r));
            });
        }
    });

    let mut out = done.into_inner().expect("pool worker panicked");
    debug_assert_eq!(out.len(), items.len());
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for jobs in [1, 2, 8, 300] {
            let out = ordered_map(&items, jobs, |i, x| {
                // Stagger finish order to stress the reassembly.
                std::thread::sleep(std::time::Duration::from_micros((i % 7) as u64));
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                assert_eq!(*r, items[i] * 3);
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let serial = ordered_map(&items, 1, |i, x| x.wrapping_mul(i as u64 + 1));
        let parallel = ordered_map(&items, 8, |i, x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = ordered_map(&[] as &[u64], 8, |_, x| *x);
        assert!(out.is_empty());
    }
}
