//! Streaming statistics: Welford mean/variance, log-linear latency
//! histograms with percentile queries, throughput meters, and a tiny
//! least-squares helper used by the delay-injection validation experiment.

use crate::time::{Dur, Time};

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// HDR-style log-linear histogram over `u64` values (we store picoseconds).
///
/// Values are bucketed by (exponent, 32 linear sub-buckets), giving ≲ 3%
/// relative error on percentile queries over a 1 ps – 10 s span with a
/// fixed 2 KiB-per-histogram footprint.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// counts[exp][sub]: exp in 0..64-SUB_BITS, sub in 0..32
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BITS: u32 = 5;
const SUBS: usize = 1 << SUB_BITS;
// Region 0 is the linear range [0, SUBS); regions 1..=64-SUB_BITS cover one
// power-of-two exponent each, up to u64::MAX.
const EXPS: usize = 64 - SUB_BITS as usize + 1;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; EXPS * SUBS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index(v: u64) -> usize {
        // Values below SUBS map to the linear region (exp 0).
        if v < SUBS as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
                                          // For v in [2^exp, 2^(exp+1)), the SUB_BITS bits right below the top
                                          // bit select the linear sub-bucket.
        let shift = exp - SUB_BITS;
        let sub = ((v >> shift) & (SUBS as u64 - 1)) as usize;
        ((exp - SUB_BITS + 1) as usize) * SUBS + sub
    }

    /// Lower bound of the bucket with the given flat index.
    fn bucket_low(idx: usize) -> u64 {
        let exp = idx / SUBS;
        let sub = (idx % SUBS) as u64;
        if exp == 0 {
            sub
        } else {
            let shift = exp as u32 - 1 + SUB_BITS;
            (1u64 << shift) + (sub << (shift - SUB_BITS))
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    #[inline]
    pub fn record_dur(&mut self, d: Dur) {
        self.record(d.as_ps());
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    pub fn mean_dur(&self) -> Dur {
        Dur(self.mean().round() as u64)
    }

    /// Exact sum of all recorded values (histogram bucketing approximates
    /// percentiles, never the sum). Attribution reports divide per-stage
    /// sums by this kind of total, so it must be lossless.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Value at quantile `q` in [0, 1]; returns a bucket lower bound, i.e.
    /// an under-estimate by at most one bucket width (≈3%).
    ///
    /// Edge cases are exact: an empty histogram reports 0, `q <= 0`
    /// reports the recorded minimum and `q >= 1` the recorded maximum
    /// (the interior bucket search would under-report the maximum by up
    /// to one bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Self::bucket_low(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
    /// Extreme-tail quantile used by the open-loop serving reports. With
    /// fewer than 1000 samples this lands in the maximum's bucket, so it
    /// degrades gracefully toward `max()` on sparse histograms.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Counts bytes over simulated time to report sustained bandwidth.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    bytes: u64,
    first: Option<Time>,
    last: Time,
}

impl ThroughputMeter {
    pub fn new() -> ThroughputMeter {
        ThroughputMeter::default()
    }

    #[inline]
    pub fn record(&mut self, at: Time, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(at);
        }
        if at > self.last {
            self.last = at;
        }
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean bandwidth in bytes/second over the observed interval.
    pub fn bytes_per_sec(&self) -> f64 {
        match self.first {
            Some(first) if self.last > first => {
                self.bytes as f64 / (self.last - first).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    pub fn gib_per_sec(&self) -> f64 {
        self.bytes_per_sec() / (1u64 << 30) as f64
    }
}

/// Windowed time series: aggregates samples into fixed windows of
/// simulated time, for "metric over the run" reporting (e.g. latency
/// before/during/after a mid-run delay change).
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    window: Dur,
    origin: Time,
    /// (sum, count) per window index.
    windows: Vec<(u128, u64)>,
}

impl SeriesRecorder {
    pub fn new(origin: Time, window: Dur) -> SeriesRecorder {
        assert!(window.as_ps() > 0);
        SeriesRecorder {
            window,
            origin,
            windows: Vec::new(),
        }
    }

    /// Record `value` at instant `at` (times before `origin` clamp to
    /// window 0).
    pub fn record(&mut self, at: Time, value: u64) {
        let idx = (at.since(self.origin).as_ps() / self.window.as_ps()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, (0, 0));
        }
        let w = &mut self.windows[idx];
        w.0 += value as u128;
        w.1 += 1;
    }

    /// `(window_end_time, mean, count)` per window, in order.
    pub fn series(&self) -> Vec<(Time, f64, u64)> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, &(sum, n))| {
                let end = self.origin + Dur::ps(self.window.as_ps() * (i as u64 + 1));
                let mean = if n == 0 { 0.0 } else { sum as f64 / n as f64 };
                (end, mean, n)
            })
            .collect()
    }

    pub fn window(&self) -> Dur {
        self.window
    }
}

/// Simple ordinary-least-squares fit, used to validate the linear
/// PERIOD ↔ latency relationship the paper reports (§III-B).
#[derive(Clone, Copy, Debug)]
pub struct LinearFit {
    pub slope: f64,
    pub intercept: f64,
    /// Pearson correlation coefficient.
    pub r: f64,
}

pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let syy: f64 = points.iter().map(|p| p.1 * p.1).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let cov = sxy - sx * sy / n;
    let var_x = sxx - sx * sx / n;
    let var_y = syy - sy * sy / n;
    let slope = cov / var_x;
    let intercept = (sy - slope * sx) / n;
    let r = if var_x <= 0.0 || var_y <= 0.0 {
        0.0
    } else {
        cov / (var_x.sqrt() * var_y.sqrt())
    };
    LinearFit {
        slope,
        intercept,
        r,
    }
}

/// The all-zero fit. Exists so reports can mark a fit as
/// `#[serde(skip)]` and recompute it after deserialization.
impl Default for LinearFit {
    fn default() -> Self {
        LinearFit {
            slope: 0.0,
            intercept: 0.0,
            r: 0.0,
        }
    }
}

impl serde::Serialize for LinearFit {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("slope".to_string(), serde::Value::F64(self.slope)),
            ("intercept".to_string(), serde::Value::F64(self.intercept)),
            ("r".to_string(), serde::Value::F64(self.r)),
        ])
    }
}

impl serde::Deserialize for LinearFit {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let get = |k: &str| -> Result<f64, serde::Error> {
            v.get(k)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| serde::Error::msg(format!("LinearFit: missing `{k}`")))
        };
        Ok(LinearFit {
            slope: get("slope")?,
            intercept: get("intercept")?,
            r: get("r")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 10.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut whole = Welford::new();
        for i in 0..100 {
            let x = (i * i % 37) as f64;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1..10000 us in ps
        }
        let p50 = h.p50() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 / 5_000_000.0 - 1.0).abs() < 0.05, "p50={p50}");
        assert!((p99 / 9_900_000.0 - 1.0).abs() < 0.05, "p99={p99}");
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 10_000_000);
        assert!((h.mean() / 5_000_500.0 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extreme_quantiles_are_exact_min_and_max() {
        let mut h = Histogram::new();
        // Values chosen so bucket lower bounds differ from the extremes.
        for v in [1_000_003u64, 5_000_017, 9_000_041] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1_000_003, "q=0 is the exact minimum");
        assert_eq!(h.quantile(1.0), 9_000_041, "q=1 is the exact maximum");
        assert_eq!(h.quantile(-0.5), 1_000_003, "below-range q clamps to min");
        assert_eq!(h.quantile(1.5), 9_000_041, "above-range q clamps to max");
        // Interior quantiles stay within the recorded range.
        let p50 = h.quantile(0.5);
        assert!((1_000_003..=9_000_041).contains(&p50));
    }

    #[test]
    fn single_value_histogram_is_flat() {
        let mut h = Histogram::new();
        h.record(12_345);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 12_345, "q={q}");
        }
    }

    #[test]
    fn histogram_handles_tiny_and_huge() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(1.0) >= u64::MAX / 4);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..1000u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn bucket_low_is_monotone_and_consistent() {
        let mut prev = 0;
        for idx in 0..(EXPS * SUBS) {
            let low = Histogram::bucket_low(idx);
            assert!(low >= prev, "bucket lows must be nondecreasing");
            prev = low;
        }
        // Every value indexes into a bucket whose range contains it.
        for v in [0u64, 1, 31, 32, 33, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let idx = Histogram::index(v);
            let low = Histogram::bucket_low(idx);
            assert!(low <= v, "low {low} > value {v}");
        }
    }

    #[test]
    fn throughput_meter_bandwidth() {
        let mut m = ThroughputMeter::new();
        m.record(Time::ZERO, 0);
        m.record(Time::secs(1), 1 << 30);
        assert!((m.gib_per_sec() - 1.0).abs() < 1e-9);
        assert_eq!(m.bytes(), 1 << 30);
    }

    #[test]
    fn throughput_meter_empty_is_zero() {
        assert_eq!(ThroughputMeter::new().bytes_per_sec(), 0.0);
    }

    #[test]
    fn series_recorder_windows_and_means() {
        let mut r = SeriesRecorder::new(Time::us(10), Dur::us(5));
        r.record(Time::us(11), 100);
        r.record(Time::us(14), 200);
        r.record(Time::us(16), 50);
        r.record(Time::us(27), 10); // window 3, leaving window 2 empty
        let s = r.series();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (Time::us(15), 150.0, 2));
        assert_eq!(s[1], (Time::us(20), 50.0, 1));
        assert_eq!(s[2].2, 0, "empty window has zero count");
        assert_eq!(s[3].2, 1);
        // Times before the origin clamp into the first window.
        r.record(Time::us(1), 300);
        assert_eq!(r.series()[0].2, 3);
        assert_eq!(r.window(), Dur::us(5));
    }

    // Sweep-level telemetry merges per-point statistics in grid order;
    // these properties guarantee the merge result cannot depend on that
    // order (or any other).
    mod merge_order {
        use super::*;
        use proptest::prelude::*;

        fn welford_of(xs: &[u64]) -> Welford {
            let mut w = Welford::new();
            for &x in xs {
                w.push(x as f64);
            }
            w
        }

        fn histogram_of(xs: &[u64]) -> Histogram {
            let mut h = Histogram::new();
            for &x in xs {
                h.record(x);
            }
            h
        }

        proptest! {
            #[test]
            fn prop_welford_merge_is_order_independent(
                a in proptest::collection::vec(0u64..1_000_000, 0..100),
                b in proptest::collection::vec(0u64..1_000_000, 0..100),
            ) {
                let mut ab = welford_of(&a);
                ab.merge(&welford_of(&b));
                let mut ba = welford_of(&b);
                ba.merge(&welford_of(&a));
                prop_assert_eq!(ab.count(), ba.count());
                prop_assert_eq!(ab.min(), ba.min());
                prop_assert_eq!(ab.max(), ba.max());
                prop_assert!((ab.mean() - ba.mean()).abs() <= 1e-6 * (1.0 + ab.mean().abs()));
                prop_assert!(
                    (ab.variance() - ba.variance()).abs()
                        <= 1e-6 * (1.0 + ab.variance().abs())
                );
                // Merging must also agree with pushing everything into one
                // accumulator.
                let whole = welford_of(&[a, b].concat());
                prop_assert_eq!(ab.count(), whole.count());
                prop_assert!((ab.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
            }

            #[test]
            fn prop_histogram_merge_is_order_independent(
                a in proptest::collection::vec(0u64..u64::MAX / 2, 0..100),
                b in proptest::collection::vec(0u64..u64::MAX / 2, 0..100),
            ) {
                let mut ab = histogram_of(&a);
                ab.merge(&histogram_of(&b));
                let mut ba = histogram_of(&b);
                ba.merge(&histogram_of(&a));
                prop_assert_eq!(ab.count(), ba.count());
                prop_assert_eq!(ab.min(), ba.min());
                prop_assert_eq!(ab.max(), ba.max());
                prop_assert_eq!(ab.mean(), ba.mean());
                for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
                    prop_assert_eq!(ab.quantile(q), ba.quantile(q), "q={}", q);
                }
                let whole = histogram_of(&[a, b].concat());
                prop_assert_eq!(ab.count(), whole.count());
                prop_assert_eq!(ab.quantile(0.5), whole.quantile(0.5));
            }
        }
    }

    // The open-loop serving reports lean on extreme-tail quantiles
    // (p999 on histograms that may hold only a few hundred samples, or
    // whose mass sits many decades below a handful of outliers). These
    // properties pin the tail behavior: monotone in q, exact when the
    // values sit on bucket boundaries, and never more than one bucket
    // width (1/32 relative) below the exact order statistic.
    mod tail_quantiles {
        use super::*;
        use proptest::prelude::*;

        /// Values biased toward heavy tails: linear-region smalls, a
        /// mid-range band, and outliers spread across every exponent.
        fn heavy_tailed() -> impl Strategy<Value = u64> {
            prop_oneof![
                0u64..32,
                32u64..100_000,
                100_000u64..10_000_000_000,
                (0u32..63).prop_map(|e| 1u64 << e),
            ]
        }

        proptest! {
            #[test]
            fn prop_quantile_is_monotone_in_q(
                xs in proptest::collection::vec(heavy_tailed(), 1..200),
                // Half-open on purpose (the vendored proptest has no
                // inclusive f64 ranges); values ≥ 1.0 clamp to max and
                // are covered by the boundary property below.
                qs in proptest::collection::vec(0.0f64..1.0, 2..20),
            ) {
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let mut qs = qs;
                qs.sort_by(f64::total_cmp);
                let mut prev = h.min();
                for &q in &qs {
                    let v = h.quantile(q);
                    prop_assert!(v >= prev, "quantile({}) = {} < earlier {}", q, v, prev);
                    prop_assert!(v >= h.min() && v <= h.max());
                    prev = v;
                }
            }

            #[test]
            fn prop_bucket_boundary_values_are_exact(
                idxs in proptest::collection::vec(0usize..EXPS * SUBS, 1..100),
            ) {
                // Values sitting exactly on bucket lower bounds must be
                // reported exactly at any quantile: the bucket scan
                // returns lower bounds, and every recorded value *is*
                // one (distinct boundaries live in distinct buckets).
                let mut h = Histogram::new();
                let mut vals: Vec<u64> =
                    idxs.iter().map(|&i| Histogram::bucket_low(i)).collect();
                for &v in &vals {
                    h.record(v);
                }
                vals.sort_unstable();
                for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    let got = h.quantile(q);
                    prop_assert!(
                        vals.binary_search(&got).is_ok(),
                        "quantile({}) = {} is not a recorded boundary value",
                        q,
                        got
                    );
                }
            }

            #[test]
            fn prop_tail_quantile_relative_error_is_bounded(
                xs in proptest::collection::vec(heavy_tailed(), 1..300),
            ) {
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let mut sorted = xs.clone();
                sorted.sort_unstable();
                for q in [0.5, 0.99, 0.999] {
                    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
                    let exact = sorted[rank];
                    let got = h.quantile(q);
                    // The scan stops in the bucket holding the exact
                    // order statistic and reports its lower bound
                    // (clamped into [min, max]): never above the exact
                    // value, below it by at most one bucket width.
                    prop_assert!(got <= exact, "q={}: got {} > exact {}", q, got, exact);
                    prop_assert!(
                        exact - got <= got / 32 + 1,
                        "q={}: {} under-reports {} by more than a bucket",
                        q,
                        got,
                        exact
                    );
                }
            }

            #[test]
            fn prop_sparse_histogram_p999_tracks_the_max_bucket(
                xs in proptest::collection::vec(heavy_tailed(), 1..999),
            ) {
                // Below 1000 samples the 0.999 target rank *is* the
                // maximum, so p999 must land in the max's bucket and
                // sit between p99 and max.
                let mut h = Histogram::new();
                for &x in &xs {
                    h.record(x);
                }
                let p999 = h.p999();
                prop_assert!(p999 <= h.max());
                prop_assert!(p999 >= h.p99());
                prop_assert!(
                    h.max() - p999 <= p999 / 32 + 1,
                    "sparse p999 {} strayed from max {}",
                    p999,
                    h.max()
                );
            }
        }
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-9);
        assert!((f.intercept - 7.0).abs() < 1e-9);
        assert!((f.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_uncorrelated_r_small() {
        // A symmetric V shape has zero linear correlation.
        let pts: Vec<(f64, f64)> = (-25..=25).map(|i| (i as f64, (i as f64).abs())).collect();
        let f = linear_fit(&pts);
        assert!(f.r.abs() < 1e-9, "r={} for V shape", f.r);
    }
}
