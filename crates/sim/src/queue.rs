//! A deterministic future-event list.
//!
//! Events at the same instant pop in insertion order (FIFO tie-break via a
//! monotone sequence number), which makes multi-actor simulations exactly
//! reproducible regardless of heap internals.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Time,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-priority queue of `(Time, T)` with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    #[inline]
    pub fn push(&mut self, at: Time, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Time of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    #[inline]
    pub fn pop(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::ns(30), "c");
        q.push(Time::ns(10), "a");
        q.push(Time::ns(20), "b");
        assert_eq!(q.peek_time(), Some(Time::ns(10)));
        assert_eq!(q.pop(), Some((Time::ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::ns(20), "b")));
        assert_eq!(q.pop(), Some((Time::ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::us(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        let mut t = Time::ZERO;
        let mut popped = Vec::new();
        for round in 0..50u64 {
            q.push(t + Dur::ns(round % 7), round);
            if round % 3 == 0 {
                if let Some((at, _)) = q.pop() {
                    popped.push(at);
                    t = at;
                }
            }
        }
        while let Some((at, _)) = q.pop() {
            popped.push(at);
        }
        // Already-popped prefix is nondecreasing within each drain region.
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped.len(), 50);
        // Final drain must be fully sorted.
        let drain = &popped[popped.len() - 10..];
        assert!(drain.windows(2).all(|w| w[0] <= w[1]));
        let _ = sorted;
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
