//! A deterministic future-event list.
//!
//! Events at the same instant pop in insertion order (FIFO tie-break via a
//! monotone sequence number), which makes multi-actor simulations exactly
//! reproducible regardless of the scheduler's internals.
//!
//! # Calendar-queue scheduler
//!
//! The queue is a calendar queue (Brown 1988): a power-of-two ring of
//! *buckets*, each a power-of-two span of simulated picoseconds wide. An
//! event at time `t` lives in bucket `(t >> shift) & mask`; a cursor walks
//! the ring day by day, and a bucket's pending events for the current day
//! pop in `O(1)` from the end of a vector kept sorted in descending
//! `(time, seq)` order. When an entire lap of the ring finds nothing (the
//! next event is more than one "year" ahead), a direct scan of all bucket
//! minima re-aims the cursor, so far-future outliers cost one `O(buckets)`
//! hop instead of an empty-bucket crawl.
//!
//! The ring resizes (and re-picks its bucket width from the observed event
//! span) when the population outgrows or undershoots the bucket count, and
//! retired bucket vectors are recycled through a small pool so long sweeps
//! reuse allocations instead of growing monotonically.
//!
//! Two refinements keep the constant factor competitive with a binary heap
//! across *all* occupancy/spacing regimes, not just the dense ones:
//!
//! * **Scan-debt width adaptation.** A steady-state queue (constant
//!   population) never crosses a resize threshold, so the bucket width
//!   chosen at construction could stay wrong forever — a 16 ns bucket
//!   ring crawled day-by-day between events 10 µs apart. Each pop now
//!   records how many empty days it walked; when the accumulated debt
//!   outruns a small per-pop allowance the ring rebuilds in place,
//!   re-deriving the width from the live events' mean gap. Well-tuned
//!   queues never pay this, mis-tuned ones fix themselves in O(n).
//! * **Next-event hint.** The engine peeks then pops every iteration.
//!   Locating the minimum is cached: a push only invalidates (actually:
//!   replaces) the hint when the new event becomes the minimum, so a
//!   peek/pop pair costs one scan, and pop→push(later)→pop costs one.
//!
//! Pop order is *provably* identical to the previous binary-heap
//! implementation: the differential property test at the bottom of this
//! file drives both this queue and a reference heap with random
//! interleaved push/pop workloads (same-instant bursts, far-future
//! outliers) and demands identical `(time, seq, payload)` streams.

use crate::time::Time;

struct Entry<T> {
    at: Time,
    seq: u64,
    payload: T,
}

/// Smallest ring size; also the size `new()` starts with.
const MIN_BUCKETS: usize = 16;
/// Hard ceiling on the ring (2^20 buckets ≈ 16 MiB of headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Initial bucket width: 2^14 ps ≈ 16 ns, the natural event spacing of
/// the fabric reference model. Resizes re-estimate it from live events.
const INITIAL_SHIFT: u32 = 14;
/// Retired bucket vectors kept for reuse.
const POOL_CAP: usize = 64;
/// Empty-day probes a pop may spend "for free". Debt beyond
/// `allowance × pops` accumulates toward a corrective rebuild.
const SCAN_ALLOWANCE: usize = 4;

/// Min-priority queue of `(Time, T)` with FIFO tie-breaking.
pub struct EventQueue<T> {
    /// Each bucket is sorted descending by `(at, seq)`: the minimum is at
    /// the back, so popping it is `O(1)`.
    buckets: Vec<Vec<Entry<T>>>,
    /// `buckets.len() - 1`; the length is always a power of two.
    mask: usize,
    /// Bucket width is `1 << shift` picoseconds.
    shift: u32,
    /// Bucket index the cursor day lives in.
    cur: usize,
    /// Inclusive lower bound of the cursor day (multiple of the width).
    day_start: u64,
    len: usize,
    seq: u64,
    /// Recycled bucket storage (allocation-reuse story for long sweeps).
    pool: Vec<Vec<Entry<T>>>,
    /// Cached location of the minimum event, if known: `(bucket, day)`.
    /// The minimum is always at the *back* of its bucket's vector, so the
    /// hint survives pushes of later events (they insert in front of it).
    hint: Option<(usize, u64)>,
    /// Empty-day probes accumulated beyond the per-pop allowance; crossing
    /// `4 × buckets` triggers an in-place width re-estimate.
    scan_debt: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> EventQueue<T> {
        Self::with_geometry(MIN_BUCKETS, INITIAL_SHIFT)
    }

    pub fn with_capacity(cap: usize) -> EventQueue<T> {
        let n = cap.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        Self::with_geometry(n, INITIAL_SHIFT)
    }

    fn with_geometry(nbuckets: usize, shift: u32) -> EventQueue<T> {
        debug_assert!(nbuckets.is_power_of_two());
        EventQueue {
            buckets: std::iter::repeat_with(Vec::new).take(nbuckets).collect(),
            mask: nbuckets - 1,
            shift,
            cur: 0,
            day_start: 0,
            len: 0,
            seq: 0,
            pool: Vec::new(),
            hint: None,
            scan_debt: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, at: Time) -> usize {
        ((at.0 >> self.shift) as usize) & self.mask
    }

    #[inline]
    fn width(&self) -> u64 {
        1u64 << self.shift
    }

    #[inline]
    pub fn push(&mut self, at: Time, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        let idx = self.bucket_of(at);
        // The hint survives pushes of *later* events: the minimum stays at
        // the back of its bucket because descending insertion places
        // larger entries in front of it. A new minimum replaces the hint.
        match self.hint {
            Some((hidx, _)) => {
                let h = self.buckets[hidx].last().expect("hinted bucket empty");
                if (at, seq) < (h.at, h.seq) {
                    self.hint = Some((idx, at.0 & !(self.width() - 1)));
                }
            }
            None if self.len == 0 => {
                self.hint = Some((idx, at.0 & !(self.width() - 1)));
            }
            None => {}
        }
        let b = &mut self.buckets[idx];
        // Descending order: larger (at, seq) first. The common case is an
        // event later than everything in its bucket → front insertion is
        // rare; same-instant bursts insert *before* their older twins,
        // which keeps the FIFO order when popping from the back.
        let pos = b.partition_point(|e| (e.at, e.seq) > (at, seq));
        b.insert(pos, Entry { at, seq, payload });
        // An event earlier than the cursor day (general-purpose use allows
        // pushing below the last popped time) rewinds the cursor.
        if at.0 < self.day_start {
            self.day_start = at.0 & !(self.width() - 1);
            self.cur = idx;
        }
        self.len += 1;
        if self.len > self.buckets.len() * 4 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.len.next_power_of_two().min(MAX_BUCKETS));
        }
    }

    /// Locate the next event: returns the bucket holding it plus the
    /// cursor day that found it, caching the answer in `hint` and
    /// accruing scan debt for the empty days walked.
    fn find_next(&mut self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(found) = self.hint {
            return Some(found);
        }
        let width = self.width() as u128;
        let mut cur = self.cur;
        let mut day_start = self.day_start as u128;
        let mut probes = 0usize;
        // One lap of the ring: any event within the current "year" is
        // found day by day.
        let mut found = None;
        for _ in 0..=self.mask {
            if let Some(e) = self.buckets[cur].last() {
                if (e.at.0 as u128) < day_start + width {
                    found = Some((cur, day_start as u64));
                    break;
                }
            }
            probes += 1;
            cur = (cur + 1) & self.mask;
            day_start += width;
        }
        if found.is_none() {
            // Nothing within a year: aim directly at the global minimum.
            probes += self.buckets.len();
            let mut best: Option<(usize, Time, u64)> = None;
            for (i, b) in self.buckets.iter().enumerate() {
                if let Some(e) = b.last() {
                    if best.is_none_or(|(_, at, seq)| (e.at, e.seq) < (at, seq)) {
                        best = Some((i, e.at, e.seq));
                    }
                }
            }
            let (idx, at, _) = best.expect("len > 0 but no event found");
            found = Some((idx, at.0 & !(self.width() - 1)));
        }
        // Each locate gets a small allowance of empty-day probes; debt
        // beyond it means the bucket width no longer matches the event
        // spacing, and a rebuild re-estimates it from the live events.
        self.scan_debt += probes.saturating_sub(SCAN_ALLOWANCE);
        if self.scan_debt > self.buckets.len() * 4 {
            self.rebuild(self.buckets.len());
            return self.find_next();
        }
        self.hint = found;
        found
    }

    /// Time of the earliest pending event.
    #[inline]
    pub fn peek_time(&mut self) -> Option<Time> {
        self.find_next()
            .map(|(idx, _)| self.buckets[idx].last().expect("located bucket empty").at)
    }

    pub fn pop(&mut self) -> Option<(Time, T)> {
        let (idx, day_start) = self.find_next()?;
        self.cur = idx;
        self.day_start = day_start;
        self.hint = None;
        let e = self.buckets[idx].pop().expect("located bucket empty");
        self.len -= 1;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            let target = (self.len * 2)
                .next_power_of_two()
                .clamp(MIN_BUCKETS, MAX_BUCKETS);
            self.rebuild(target);
        }
        Some((e.at, e.payload))
    }

    /// Re-bucket every event into a ring of `nbuckets`, re-estimating the
    /// bucket width from the live event span so occupancy stays near one
    /// event per bucket-day.
    fn rebuild(&mut self, nbuckets: usize) {
        self.hint = None;
        self.scan_debt = 0;
        let mut all: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            all.append(b);
        }
        // Recycle or grow the ring storage.
        while self.buckets.len() > nbuckets {
            let v = self.buckets.pop().expect("sized above");
            if self.pool.len() < POOL_CAP {
                self.pool.push(v);
            }
        }
        while self.buckets.len() < nbuckets {
            self.buckets.push(self.pool.pop().unwrap_or_default());
        }
        self.mask = nbuckets - 1;

        // Width estimate: mean inter-event gap, rounded to a power of two.
        if !all.is_empty() {
            let min = all.iter().map(|e| e.at.0).min().expect("non-empty");
            let max = all.iter().map(|e| e.at.0).max().expect("non-empty");
            let gap = ((max - min) / all.len() as u64).max(1);
            self.shift = (63 - gap.next_power_of_two().leading_zeros()).min(40);
            self.cur = ((min >> self.shift) as usize) & self.mask;
            self.day_start = min & !(self.width() - 1);
        } else {
            self.cur = 0;
            self.day_start = 0;
        }

        // Distribute in descending (at, seq) order so each bucket's vector
        // comes out sorted without per-element search.
        all.sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
        for e in all {
            let idx = ((e.at.0 >> self.shift) as usize) & self.mask;
            self.buckets[idx].push(e);
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
    pub fn clear(&mut self) {
        for b in self.buckets.iter_mut() {
            b.clear();
        }
        self.len = 0;
        self.cur = 0;
        self.day_start = 0;
        self.hint = None;
        self.scan_debt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::ns(30), "c");
        q.push(Time::ns(10), "a");
        q.push(Time::ns(20), "b");
        assert_eq!(q.peek_time(), Some(Time::ns(10)));
        assert_eq!(q.pop(), Some((Time::ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::ns(20), "b")));
        assert_eq!(q.pop(), Some((Time::ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::us(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        let mut t = Time::ZERO;
        let mut popped = Vec::new();
        for round in 0..50u64 {
            q.push(t + Dur::ns(round % 7), round);
            if round % 3 == 0 {
                if let Some((at, _)) = q.pop() {
                    popped.push(at);
                    t = at;
                }
            }
        }
        while let Some((at, _)) = q.pop() {
            popped.push(at);
        }
        // Already-popped prefix is nondecreasing within each drain region.
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped.len(), 50);
        // Final drain must be fully sorted.
        let drain = &popped[popped.len() - 10..];
        assert!(drain.windows(2).all(|w| w[0] <= w[1]));
        let _ = sorted;
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn far_future_outlier_pops_last() {
        let mut q = EventQueue::new();
        q.push(Time::secs(100), "far");
        q.push(Time::ns(1), "near");
        q.push(Time::us(1), "mid");
        assert_eq!(q.pop(), Some((Time::ns(1), "near")));
        assert_eq!(q.pop(), Some((Time::us(1), "mid")));
        assert_eq!(q.peek_time(), Some(Time::secs(100)));
        assert_eq!(q.pop(), Some((Time::secs(100), "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn push_earlier_than_cursor_still_pops_first() {
        // General-purpose use may push below the last popped time; the
        // cursor must rewind rather than waiting a full ring lap.
        let mut q = EventQueue::new();
        q.push(Time::us(10), "late");
        assert_eq!(q.pop(), Some((Time::us(10), "late")));
        q.push(Time::ns(5), "early");
        q.push(Time::us(20), "later");
        assert_eq!(q.pop(), Some((Time::ns(5), "early")));
        assert_eq!(q.pop(), Some((Time::us(20), "later")));
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = EventQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            // Scatter over a wide span to force non-trivial bucketing.
            q.push(Time::ps(i * 977 % 1_000_000_007), i);
        }
        assert_eq!(q.len(), n as usize);
        let mut prev = (Time::ZERO, 0u64);
        let mut count = 0;
        while let Some((at, i)) = q.pop() {
            assert!(
                (prev.0, prev.1) <= (at, i) || count == 0,
                "out of order at {count}"
            );
            prev = (at, i);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn time_never_is_representable() {
        let mut q = EventQueue::new();
        q.push(Time::NEVER, "end");
        q.push(Time::ZERO, "start");
        assert_eq!(q.pop(), Some((Time::ZERO, "start")));
        assert_eq!(q.pop(), Some((Time::NEVER, "end")));
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        /// The previous implementation, kept verbatim as the ordering
        /// oracle for the calendar queue.
        struct RefEntry<T> {
            at: Time,
            seq: u64,
            payload: T,
        }
        impl<T> PartialEq for RefEntry<T> {
            fn eq(&self, other: &Self) -> bool {
                self.at == other.at && self.seq == other.seq
            }
        }
        impl<T> Eq for RefEntry<T> {}
        impl<T> PartialOrd for RefEntry<T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for RefEntry<T> {
            fn cmp(&self, other: &Self) -> Ordering {
                other
                    .at
                    .cmp(&self.at)
                    .then_with(|| other.seq.cmp(&self.seq))
            }
        }

        struct RefQueue<T> {
            heap: BinaryHeap<RefEntry<T>>,
            seq: u64,
        }
        impl<T> RefQueue<T> {
            fn new() -> Self {
                RefQueue {
                    heap: BinaryHeap::new(),
                    seq: 0,
                }
            }
            fn push(&mut self, at: Time, payload: T) {
                let seq = self.seq;
                self.seq += 1;
                self.heap.push(RefEntry { at, seq, payload });
            }
            fn pop(&mut self) -> Option<(Time, u64, T)> {
                self.heap.pop().map(|e| (e.at, e.seq, e.payload))
            }
        }

        #[derive(Clone, Debug)]
        enum Op {
            /// Push at base + offset; the offset pool mixes dense
            /// same-instant bursts with far-future outliers.
            Push(u64),
            Pop,
        }

        /// Weighted op mix: 2/8 dense near-term pushes (same-instant
        /// bursts collide on the exact picosecond), 2/8 mid-range spread,
        /// 1/8 far-future outliers (seconds ahead — multiple ring laps),
        /// 3/8 pops.
        struct OpStrategy;
        impl Strategy for OpStrategy {
            type Value = Op;
            fn sample(&self, rng: &mut proptest::TestRng) -> Op {
                match rng.below(8) {
                    0 | 1 => Op::Push(rng.below(50)),
                    2 | 3 => Op::Push(rng.below(1_000_000)),
                    4 => Op::Push(rng.below(5) * crate::time::SEC + 17),
                    _ => Op::Pop,
                }
            }
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            OpStrategy
        }

        proptest! {
            #[test]
            fn prop_calendar_queue_matches_heap(
                ops in proptest::collection::vec(op_strategy(), 1..400),
                base in 0u64..1_000_000_000,
            ) {
                let mut cal: EventQueue<u64> = EventQueue::new();
                let mut reference: RefQueue<u64> = RefQueue::new();
                let mut tag = 0u64;
                for op in &ops {
                    match op {
                        Op::Push(off) => {
                            let at = Time::ps(base + off);
                            cal.push(at, tag);
                            reference.push(at, tag);
                            tag += 1;
                        }
                        Op::Pop => {
                            let got = cal.pop();
                            let want = reference.pop().map(|(at, _seq, p)| (at, p));
                            prop_assert_eq!(got, want);
                        }
                    }
                    prop_assert_eq!(cal.len(), reference.heap.len());
                    prop_assert_eq!(
                        cal.peek_time(),
                        reference.heap.peek().map(|e| e.at)
                    );
                }
                // Drain: the full remaining streams must be identical.
                loop {
                    let got = cal.pop();
                    let want = reference.pop().map(|(at, _seq, p)| (at, p));
                    prop_assert_eq!(got, want);
                    if got.is_none() {
                        break;
                    }
                }
            }

            #[test]
            fn prop_same_instant_bursts_stay_fifo(
                burst_sizes in proptest::collection::vec(1usize..30, 1..20),
            ) {
                let mut cal: EventQueue<u64> = EventQueue::new();
                let mut reference: RefQueue<u64> = RefQueue::new();
                let mut tag = 0u64;
                for (i, &n) in burst_sizes.iter().enumerate() {
                    let at = Time::us(i as u64);
                    for _ in 0..n {
                        cal.push(at, tag);
                        reference.push(at, tag);
                        tag += 1;
                    }
                }
                loop {
                    let got = cal.pop();
                    let want = reference.pop().map(|(at, _seq, p)| (at, p));
                    prop_assert_eq!(got, want);
                    if got.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
