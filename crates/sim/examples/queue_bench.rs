//! Microbenchmark: calendar EventQueue vs the reference BinaryHeap at
//! engine-realistic occupancies. Run with
//! `cargo run --release -p thymesim-sim --example queue_bench`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;
use thymesim_sim::{EventQueue, Time};

struct HeapQueue {
    heap: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
    fn push(&mut self, at: Time, v: u32) {
        let s = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, s, v)));
    }
    fn pop(&mut self) -> Option<(Time, u32)> {
        self.heap.pop().map(|Reverse((at, _, v))| (at, v))
    }
}

/// Deterministic xorshift for reproducible gaps.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn scenario(occupancy: usize, iters: usize, mean_gap_ps: u64) {
    // Hold `occupancy` events outstanding; each pop schedules a successor
    // at now + U(0, 2*gap) — the closed-loop shape the engine produces.
    let mut cal = EventQueue::new();
    let mut heap = HeapQueue::new();

    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut now = Time::ZERO;
    for i in 0..occupancy {
        cal.push(now + thymesim_sim::Dur::ps(i as u64), i as u32);
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        let (at, v) = cal.pop().unwrap();
        now = at;
        let gap = rng.next() % (2 * mean_gap_ps) + 1;
        cal.push(now + thymesim_sim::Dur::ps(gap), v);
    }
    let cal_dt = t0.elapsed();

    let mut rng = Rng(0x9e3779b97f4a7c15);
    let mut now = Time::ZERO;
    for i in 0..occupancy {
        heap.push(now + thymesim_sim::Dur::ps(i as u64), i as u32);
    }
    let t1 = Instant::now();
    for _ in 0..iters {
        let (at, v) = heap.pop().unwrap();
        now = at;
        let gap = rng.next() % (2 * mean_gap_ps) + 1;
        heap.push(now + thymesim_sim::Dur::ps(gap), v);
    }
    let heap_dt = t1.elapsed();

    println!(
        "occ={occupancy:>6} gap={mean_gap_ps:>9}ps  calendar={:>8.1}ns/op  heap={:>8.1}ns/op  ratio={:.2}x",
        cal_dt.as_nanos() as f64 / iters as f64,
        heap_dt.as_nanos() as f64 / iters as f64,
        cal_dt.as_secs_f64() / heap_dt.as_secs_f64(),
    );
}

fn main() {
    let iters = 2_000_000;
    for &occ in &[2usize, 8, 32, 128, 1024, 16384] {
        for &gap in &[1_000u64, 100_000, 10_000_000] {
            scenario(occ, iters, gap);
        }
    }
}
