//! Chrome-trace / Perfetto JSON export and a structural checker.
//!
//! The exported file follows the Trace Event Format's JSON-object form:
//! `{"displayTimeUnit": "ms", "traceEvents": [...]}` with complete
//! (`"X"`), instant (`"i"`), counter (`"C"`) and metadata (`"M"`)
//! events. Each sweep point becomes one Perfetto *process* (`pid` =
//! grid index) and each track one named *thread* within it, so the
//! whole sweep loads as a side-by-side timeline in
//! <https://ui.perfetto.dev>.
//!
//! Timestamps are virtual sim time converted to microseconds (`f64`,
//! printed with Rust's shortest-round-trip formatting). Nothing in the
//! file depends on wall-clock, thread identity, or `--jobs`, so equal
//! runs export byte-identical traces.

use crate::recorder::{PointTrace, TraceEvent};
use serde::Value;

fn us(ps: u64) -> Value {
    Value::F64(ps as f64 / 1e6)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render one sweep's point traces as a Chrome-trace JSON string.
pub fn render(sweep: &str, traces: &[PointTrace]) -> String {
    let mut meta: Vec<Value> = Vec::new();
    // (pid, tid, event) triples, then a stable sort by timestamp — ties
    // keep recording order, so the result is fully deterministic.
    let mut timeline: Vec<(usize, usize, &TraceEvent)> = Vec::new();

    for trace in traces {
        let pid = trace.index;
        meta.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(pid as u64)),
            ("tid", Value::U64(0)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("{sweep} point {pid}")))]),
            ),
        ]));
        // Tracks become threads, numbered by first appearance; counters
        // live on the reserved tid 0.
        fn tid_of(track: &'static str, tracks: &mut Vec<&'static str>) -> usize {
            match tracks.iter().position(|t| *t == track) {
                Some(i) => i + 1,
                None => {
                    tracks.push(track);
                    tracks.len()
                }
            }
        }
        let mut tracks: Vec<&'static str> = Vec::new();
        for ev in &trace.events {
            let tid = match ev {
                TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => {
                    tid_of(track, &mut tracks)
                }
                TraceEvent::Counter { .. } => 0,
            };
            timeline.push((pid, tid, ev));
        }
        for (i, track) in tracks.iter().enumerate() {
            meta.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(pid as u64)),
                ("tid", Value::U64(i as u64 + 1)),
                ("args", obj(vec![("name", Value::Str((*track).into()))])),
            ]));
        }
    }

    timeline.sort_by_key(|(_, _, ev)| ev.ts_ps());

    let mut events = meta;
    events.reserve(timeline.len());
    for (pid, tid, ev) in timeline {
        let mut fields: Vec<(&str, Value)> = Vec::new();
        match ev {
            TraceEvent::Span {
                track,
                name,
                start_ps,
                end_ps,
                arg,
            } => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("cat", Value::Str((*track).into())));
                fields.push(("ph", Value::Str("X".into())));
                fields.push(("ts", us(*start_ps)));
                fields.push(("dur", us(end_ps.saturating_sub(*start_ps))));
                if let Some((k, v)) = arg {
                    fields.push(("args", obj(vec![(k, Value::U64(*v))])));
                }
            }
            TraceEvent::Instant { track, name, at_ps } => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("cat", Value::Str((*track).into())));
                fields.push(("ph", Value::Str("i".into())));
                fields.push(("s", Value::Str("t".into())));
                fields.push(("ts", us(*at_ps)));
            }
            TraceEvent::Counter { name, at_ps, value } => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("ph", Value::Str("C".into())));
                fields.push(("ts", us(*at_ps)));
                fields.push(("args", obj(vec![("value", Value::F64(*value))])));
            }
        }
        fields.push(("pid", Value::U64(pid as u64)));
        fields.push(("tid", Value::U64(tid as u64)));
        events.push(obj(fields));
    }

    let root = obj(vec![
        ("displayTimeUnit", Value::Str("ms".into())),
        ("traceEvents", Value::Array(events)),
    ]);
    serde_json::to_string(&root).expect("trace serializes")
}

/// Summary of a validated trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    pub events: usize,
    pub spans: usize,
    pub instants: usize,
    pub counters: usize,
}

/// Structurally validate a Chrome-trace JSON string: well-formed JSON,
/// required fields per event, nondecreasing timestamps, nonnegative
/// span durations, and balanced `B`/`E` pairs per `(pid, tid)` lane.
pub fn check(text: &str) -> Result<TraceCheck, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;
    let mut out = TraceCheck::default();
    let mut last_ts = f64::NEG_INFINITY;
    // Open B-span names per (pid, tid) lane.
    let mut open: Vec<((u64, u64), Vec<String>)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: String| Err(format!("event {i}: {msg}"));
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            return fail("missing ph".into());
        };
        if ev.get("name").and_then(Value::as_str).is_none() {
            return fail("missing name".into());
        }
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        out.events += 1;
        let Some(ts) = ev.get("ts").and_then(Value::as_f64) else {
            return fail(format!("ph {ph} missing numeric ts"));
        };
        if ts < last_ts {
            return fail(format!("timestamp {ts} decreases (prev {last_ts})"));
        }
        last_ts = ts;
        let pid = ev.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match ph {
            "X" => {
                out.spans += 1;
                match ev.get("dur").and_then(Value::as_f64) {
                    Some(d) if d >= 0.0 => {}
                    Some(d) => return fail(format!("negative span duration {d}")),
                    None => return fail("X event missing dur".into()),
                }
            }
            "i" | "I" => out.instants += 1,
            "C" => {
                out.counters += 1;
                if ev.get("args").and_then(|a| a.as_object()).is_none() {
                    return fail("C event missing args".into());
                }
            }
            "B" => {
                out.spans += 1;
                let name = ev.get("name").and_then(Value::as_str).unwrap_or_default();
                let lane = (pid, tid);
                match open.iter_mut().find(|(l, _)| *l == lane) {
                    Some((_, stack)) => stack.push(name.to_string()),
                    None => open.push((lane, vec![name.to_string()])),
                }
            }
            "E" => {
                let lane = (pid, tid);
                let popped = open
                    .iter_mut()
                    .find(|(l, _)| *l == lane)
                    .and_then(|(_, stack)| stack.pop());
                if popped.is_none() {
                    return fail(format!("E without matching B on lane {lane:?}"));
                }
            }
            other => return fail(format!("unknown ph {other:?}")),
        }
    }
    for (lane, stack) in &open {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced spans: {} B event(s) never closed on lane {lane:?}",
                stack.len()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceRecorder};
    use thymesim_sim::Time;

    fn sample() -> Vec<PointTrace> {
        let mut r = TraceRecorder::new(0, 100);
        r.span("fabric", "read", Time::ns(10), Time::ns(30));
        r.instant("workload", "phase", Time::ns(5));
        r.counter("depth", Time::ns(20), 3.0);
        let mut r1 = TraceRecorder::new(1, 100);
        r1.span_arg("workload", "copy", Time::ZERO, Time::ns(50), "rep", 2);
        vec![r.finish(), r1.finish()]
    }

    #[test]
    fn rendered_trace_passes_the_checker() {
        let text = render("test/sweep", &sample());
        let c = check(&text).expect("valid trace");
        assert_eq!(c.spans, 2);
        assert_eq!(c.instants, 1);
        assert_eq!(c.counters, 1);
        assert_eq!(c.events, 4);
    }

    #[test]
    fn render_is_deterministic() {
        let a = render("test/sweep", &sample());
        let b = render("test/sweep", &sample());
        assert_eq!(a, b);
    }

    #[test]
    fn events_are_sorted_by_timestamp() {
        let text = render("test/sweep", &sample());
        // The instant at 5 ns must precede the span starting at 0 ns? No:
        // sorting is global over ts, so 0 ns (point 1 span) comes first.
        let root: Value = serde_json::from_str(&text).unwrap();
        let ts: Vec<f64> = root
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
    }

    #[test]
    fn checker_rejects_broken_traces() {
        assert!(check("{ not json").is_err());
        assert!(check(r#"{"traceEvents": 3}"#).is_err());
        // Decreasing timestamps.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":0,"tid":1},
            {"name":"b","ph":"i","s":"t","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("decreases"));
        // Unbalanced B/E.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("unbalanced"));
        // E without B.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"E","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("without matching B"));
        // Missing dur.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"X","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("missing dur"));
    }
}
