//! Chrome-trace / Perfetto JSON export and a structural checker.
//!
//! The exported file follows the Trace Event Format's JSON-object form:
//! `{"displayTimeUnit": "ms", "traceEvents": [...]}` with complete
//! (`"X"`), instant (`"i"`), counter (`"C"`) and metadata (`"M"`)
//! events. Each sweep point becomes one Perfetto *process* (`pid` =
//! grid index) and each track one named *thread* within it, so the
//! whole sweep loads as a side-by-side timeline in
//! <https://ui.perfetto.dev>.
//!
//! Timestamps are virtual sim time converted to microseconds (`f64`,
//! printed with Rust's shortest-round-trip formatting). Nothing in the
//! file depends on wall-clock, thread identity, or `--jobs`, so equal
//! runs export byte-identical traces.

use crate::counters::CounterTrack;
use crate::recorder::{PointTrace, TraceEvent};
use serde::Value;

/// Prefix on windowed utilization counter-track names in the exported
/// trace, distinguishing them from ad-hoc sampled counters so the
/// checker can apply the stronger rules (monotone per-track timestamps,
/// fractions within [0, 1], level values within their bound).
pub const UTIL_PREFIX: &str = "util.";

fn us(ps: u64) -> Value {
    Value::F64(ps as f64 / 1e6)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// One entry of the render timeline: either a recorded event or a
/// synthesized utilization counter sample (one per covered window, plus
/// a closing zero after each run so Perfetto doesn't hold the last
/// value forever).
enum Entry<'a> {
    Rec(&'a TraceEvent),
    Util {
        name: &'static str,
        at_ps: u64,
        value: f64,
        kind: &'static str,
        bound: Option<u64>,
    },
}

impl Entry<'_> {
    fn ts_ps(&self) -> u64 {
        match self {
            Entry::Rec(ev) => ev.ts_ps(),
            Entry::Util { at_ps, .. } => *at_ps,
        }
    }
}

/// Render one sweep's point traces as a Chrome-trace JSON string.
/// `window_ps` is the counter-window width the traces were recorded
/// with; windowed tracks render as `util.<name>` counter series.
pub fn render(sweep: &str, traces: &[PointTrace], window_ps: u64) -> String {
    let mut meta: Vec<Value> = Vec::new();
    // (pid, tid, entry) triples, then a stable sort by timestamp — ties
    // keep push order, so the result is fully deterministic.
    let mut timeline: Vec<(usize, usize, Entry)> = Vec::new();

    for trace in traces {
        let pid = trace.index;
        meta.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(pid as u64)),
            ("tid", Value::U64(0)),
            (
                "args",
                obj(vec![("name", Value::Str(format!("{sweep} point {pid}")))]),
            ),
        ]));
        // Tracks become threads, numbered by first appearance; counters
        // live on the reserved tid 0.
        fn tid_of(track: &'static str, tracks: &mut Vec<&'static str>) -> usize {
            match tracks.iter().position(|t| *t == track) {
                Some(i) => i + 1,
                None => {
                    tracks.push(track);
                    tracks.len()
                }
            }
        }
        let mut tracks: Vec<&'static str> = Vec::new();
        for ev in &trace.events {
            let tid = match ev {
                TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => {
                    tid_of(track, &mut tracks)
                }
                TraceEvent::Counter { .. } => 0,
            };
            timeline.push((pid, tid, Entry::Rec(ev)));
        }
        for (i, track) in tracks.iter().enumerate() {
            meta.push(obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(pid as u64)),
                ("tid", Value::U64(i as u64 + 1)),
                ("args", obj(vec![("name", Value::Str((*track).into()))])),
            ]));
        }
        for tr in &trace.tracks {
            push_util_entries(&mut timeline, pid, tr, window_ps);
        }
    }

    timeline.sort_by_key(|(_, _, e)| e.ts_ps());

    let mut events = meta;
    events.reserve(timeline.len());
    for (pid, tid, entry) in timeline {
        let mut fields: Vec<(&str, Value)> = Vec::new();
        match entry {
            Entry::Rec(TraceEvent::Span {
                track,
                name,
                start_ps,
                end_ps,
                arg,
            }) => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("cat", Value::Str((*track).into())));
                fields.push(("ph", Value::Str("X".into())));
                fields.push(("ts", us(*start_ps)));
                fields.push(("dur", us(end_ps.saturating_sub(*start_ps))));
                if let Some((k, v)) = arg {
                    fields.push(("args", obj(vec![(k, Value::U64(*v))])));
                }
            }
            Entry::Rec(TraceEvent::Instant { track, name, at_ps }) => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("cat", Value::Str((*track).into())));
                fields.push(("ph", Value::Str("i".into())));
                fields.push(("s", Value::Str("t".into())));
                fields.push(("ts", us(*at_ps)));
            }
            Entry::Rec(TraceEvent::Counter { name, at_ps, value }) => {
                fields.push(("name", Value::Str((*name).into())));
                fields.push(("ph", Value::Str("C".into())));
                fields.push(("ts", us(*at_ps)));
                fields.push(("args", obj(vec![("value", Value::F64(*value))])));
            }
            Entry::Util {
                name,
                at_ps,
                value,
                kind,
                bound,
            } => {
                fields.push(("name", Value::Str(format!("{UTIL_PREFIX}{name}"))));
                fields.push(("ph", Value::Str("C".into())));
                fields.push(("ts", us(at_ps)));
                let mut args = vec![
                    ("value", Value::F64(value)),
                    ("kind", Value::Str(kind.into())),
                ];
                if let Some(b) = bound {
                    args.push(("bound", Value::U64(b)));
                }
                fields.push(("args", obj(args)));
            }
        }
        fields.push(("pid", Value::U64(pid as u64)));
        fields.push(("tid", Value::U64(tid as u64)));
        events.push(obj(fields));
    }

    let root = obj(vec![
        ("displayTimeUnit", Value::Str("ms".into())),
        ("traceEvents", Value::Array(events)),
    ]);
    serde_json::to_string(&root).expect("trace serializes")
}

/// Synthesize the counter events of one windowed track: one sample at
/// each covered window's start, and a closing zero one window after
/// each maximal run of consecutive covered windows (so gaps and the
/// tail render as idle instead of holding the last value).
fn push_util_entries<'a>(
    timeline: &mut Vec<(usize, usize, Entry<'a>)>,
    pid: usize,
    tr: &CounterTrack,
    window_ps: u64,
) {
    let kind = tr.kind.label();
    for i in 0..tr.windows.len() {
        let idx = tr.windows[i].0;
        timeline.push((
            pid,
            0,
            Entry::Util {
                name: tr.name,
                at_ps: idx * window_ps,
                value: tr.window_value(i, window_ps),
                kind,
                bound: tr.bound,
            },
        ));
        let run_ends = match tr.windows.get(i + 1) {
            Some(next) => next.0 > idx + 1,
            None => true,
        };
        if run_ends {
            timeline.push((
                pid,
                0,
                Entry::Util {
                    name: tr.name,
                    at_ps: (idx + 1) * window_ps,
                    value: 0.0,
                    kind,
                    bound: tr.bound,
                },
            ));
        }
    }
}

/// Summary of a validated trace file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    pub events: usize,
    pub spans: usize,
    pub instants: usize,
    pub counters: usize,
    /// `util.*` windowed counter samples among `counters`.
    pub util_counters: usize,
}

/// Structurally validate a Chrome-trace JSON string: well-formed JSON,
/// required fields per event, nondecreasing timestamps, nonnegative
/// span durations, balanced `B`/`E` pairs per `(pid, tid)` lane, and —
/// for `util.*` windowed counter tracks — strictly increasing window
/// timestamps per `(pid, track)`, busy/ratio fractions within [0, 1],
/// and bounded level values never exceeding their declared bound.
/// Returns the first failure; [`check_all`] collects every failure.
pub fn check(text: &str) -> Result<TraceCheck, String> {
    check_all(text).map_err(|errors| errors.join("\n"))
}

/// Like [`check`], but keeps validating after a failure and returns
/// **every** problem found, so one run of the checker reports all of a
/// broken trace instead of only its first defect.
pub fn check_all(text: &str) -> Result<TraceCheck, Vec<String>> {
    let root: Value =
        serde_json::from_str(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let Some(events) = root.get("traceEvents").and_then(Value::as_array) else {
        return Err(vec!["missing traceEvents array".into()]);
    };
    let mut out = TraceCheck::default();
    let mut errors: Vec<String> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    // Open B-span names per (pid, tid) lane.
    let mut open: Vec<((u64, u64), Vec<String>)> = Vec::new();
    // Last sample timestamp per (pid, util-track name).
    let mut util_last: Vec<((u64, String), f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let mut fail = |msg: String| errors.push(format!("event {i}: {msg}"));
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            fail("missing ph".into());
            continue;
        };
        let name = ev.get("name").and_then(Value::as_str);
        if name.is_none() {
            fail("missing name".into());
        }
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        out.events += 1;
        let Some(ts) = ev.get("ts").and_then(Value::as_f64) else {
            fail(format!("ph {ph} missing numeric ts"));
            continue;
        };
        if ts < last_ts {
            fail(format!("timestamp {ts} decreases (prev {last_ts})"));
        }
        last_ts = ts;
        let pid = ev.get("pid").and_then(Value::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match ph {
            "X" => {
                out.spans += 1;
                match ev.get("dur").and_then(Value::as_f64) {
                    Some(d) if d >= 0.0 => {}
                    Some(d) => fail(format!("negative span duration {d}")),
                    None => fail("X event missing dur".into()),
                }
            }
            "i" | "I" => out.instants += 1,
            "C" => {
                out.counters += 1;
                if ev.get("args").and_then(|a| a.as_object()).is_none() {
                    fail("C event missing args".into());
                    continue;
                }
                let name = name.unwrap_or_default();
                if let Some(short) = name.strip_prefix(UTIL_PREFIX) {
                    out.util_counters += 1;
                    check_util_sample(ev, i, pid, short, ts, &mut util_last, &mut errors);
                }
            }
            "B" => {
                out.spans += 1;
                let name = name.unwrap_or_default();
                let lane = (pid, tid);
                match open.iter_mut().find(|(l, _)| *l == lane) {
                    Some((_, stack)) => stack.push(name.to_string()),
                    None => open.push((lane, vec![name.to_string()])),
                }
            }
            "E" => {
                let lane = (pid, tid);
                let popped = open
                    .iter_mut()
                    .find(|(l, _)| *l == lane)
                    .and_then(|(_, stack)| stack.pop());
                if popped.is_none() {
                    fail(format!("E without matching B on lane {lane:?}"));
                }
            }
            other => fail(format!("unknown ph {other:?}")),
        }
    }
    for (lane, stack) in &open {
        if !stack.is_empty() {
            errors.push(format!(
                "unbalanced spans: {} B event(s) never closed on lane {lane:?}",
                stack.len()
            ));
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// Validate one `util.*` counter sample: strictly increasing timestamps
/// within its `(pid, track)` series, fraction kinds within [0, 1], and
/// bounded levels within their bound.
fn check_util_sample(
    ev: &Value,
    i: usize,
    pid: u64,
    track: &str,
    ts: f64,
    util_last: &mut Vec<((u64, String), f64)>,
    errors: &mut Vec<String>,
) {
    let mut fail = |msg: String| errors.push(format!("event {i}: util.{track}: {msg}"));
    let args = ev.get("args").expect("checked by caller");
    let Some(value) = args.get("value").and_then(Value::as_f64) else {
        fail("missing numeric value".into());
        return;
    };
    let key = (pid, track.to_string());
    match util_last.iter_mut().find(|(k, _)| *k == key) {
        Some((_, last)) => {
            if ts <= *last {
                fail(format!("window timestamp {ts} not after previous {last}"));
            }
            *last = ts;
        }
        None => util_last.push((key, ts)),
    }
    match args.get("kind").and_then(Value::as_str) {
        Some("busy") | Some("ratio") => {
            if !(0.0..=1.0).contains(&value) {
                fail(format!("fraction {value} outside [0, 1]"));
            }
        }
        Some("level") => {
            if value < 0.0 {
                fail(format!("negative level {value}"));
            }
            if let Some(bound) = args.get("bound").and_then(Value::as_u64) {
                if value > bound as f64 {
                    fail(format!("level {value} exceeds bound {bound}"));
                }
            }
        }
        _ => fail("missing or unknown kind".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceRecorder};
    use thymesim_sim::Time;

    const W: u64 = 1_000_000; // 1 µs windows for the tests

    fn sample() -> Vec<PointTrace> {
        let mut r = TraceRecorder::with_window(0, 100, W);
        r.span("fabric", "read", Time::ns(10), Time::ns(30));
        r.instant("workload", "phase", Time::ns(5));
        r.counter("depth", Time::ns(20), 3.0);
        let mut r1 = TraceRecorder::with_window(1, 100, W);
        r1.span_arg("workload", "copy", Time::ZERO, Time::ns(50), "rep", 2);
        vec![r.finish(), r1.finish()]
    }

    fn sample_with_util() -> Vec<PointTrace> {
        let mut r = TraceRecorder::with_window(0, 100, W);
        r.span("fabric", "read", Time::ns(10), Time::ns(30));
        r.counter_bound("credit.occupancy", 8);
        // Half of window 0 at level 4; windows 2..4 fully busy.
        r.counter_level("credit.occupancy", Time::ZERO, Time::ps(W / 2), 4);
        r.counter_busy("net.link_busy", Time::ps(2 * W), Time::ps(4 * W));
        r.counter_ratio("mem.llc_miss_rate", Time::ps(W / 4), 1, 4);
        vec![r.finish()]
    }

    #[test]
    fn rendered_trace_passes_the_checker() {
        let text = render("test/sweep", &sample(), W);
        let c = check(&text).expect("valid trace");
        assert_eq!(c.spans, 2);
        assert_eq!(c.instants, 1);
        assert_eq!(c.counters, 1);
        assert_eq!(c.events, 4);
        assert_eq!(c.util_counters, 0);
    }

    #[test]
    fn render_is_deterministic() {
        let a = render("test/sweep", &sample(), W);
        let b = render("test/sweep", &sample(), W);
        assert_eq!(a, b);
    }

    #[test]
    fn util_tracks_render_and_pass_the_checker() {
        let text = render("test/sweep", &sample_with_util(), W);
        let c = check(&text).expect("valid trace with util tracks");
        // credit.occupancy: window 0 + closing zero; net.link_busy:
        // windows 2,3 + closing zero; mem.llc_miss_rate: window 0 +
        // closing zero.
        assert_eq!(c.util_counters, 7);
        assert!(text.contains("util.credit.occupancy"));
        assert!(text.contains("util.net.link_busy"));
        assert!(text.contains("util.mem.llc_miss_rate"));
        assert!(text.contains(r#""kind":"level""#));
        assert!(text.contains(r#""bound":8"#));
    }

    #[test]
    fn events_are_sorted_by_timestamp() {
        let text = render("test/sweep", &sample(), W);
        // The instant at 5 ns must precede the span starting at 0 ns? No:
        // sorting is global over ts, so 0 ns (point 1 span) comes first.
        let root: Value = serde_json::from_str(&text).unwrap();
        let ts: Vec<f64> = root
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) != Some("M"))
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
    }

    #[test]
    fn checker_rejects_broken_traces() {
        assert!(check("{ not json").is_err());
        assert!(check(r#"{"traceEvents": 3}"#).is_err());
        // Decreasing timestamps.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":0,"tid":1},
            {"name":"b","ph":"i","s":"t","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("decreases"));
        // Unbalanced B/E.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"B","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("unbalanced"));
        // E without B.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"E","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("without matching B"));
        // Missing dur.
        let bad = r#"{"traceEvents": [
            {"name":"a","ph":"X","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("missing dur"));
    }

    #[test]
    fn checker_rejects_bad_util_tracks() {
        // Busy fraction above 1.
        let bad = r#"{"traceEvents": [
            {"name":"util.net.link_busy","ph":"C","ts":0.0,"pid":0,"tid":0,
             "args":{"value":1.5,"kind":"busy"}}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("outside [0, 1]"));
        // Level exceeding its declared bound (credit occupancy > credits).
        let bad = r#"{"traceEvents": [
            {"name":"util.credit.occupancy","ph":"C","ts":0.0,"pid":0,"tid":0,
             "args":{"value":9.0,"kind":"level","bound":8}}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("exceeds bound 8"));
        // Repeated window timestamp within one (pid, track) series.
        let bad = r#"{"traceEvents": [
            {"name":"util.net.link_busy","ph":"C","ts":1.0,"pid":0,"tid":0,
             "args":{"value":0.5,"kind":"busy"}},
            {"name":"util.net.link_busy","ph":"C","ts":1.0,"pid":0,"tid":0,
             "args":{"value":0.6,"kind":"busy"}}
        ]}"#;
        assert!(check(bad).unwrap_err().contains("not after previous"));
        // Same timestamp on a *different* pid is fine.
        let ok = r#"{"traceEvents": [
            {"name":"util.net.link_busy","ph":"C","ts":1.0,"pid":0,"tid":0,
             "args":{"value":0.5,"kind":"busy"}},
            {"name":"util.net.link_busy","ph":"C","ts":1.0,"pid":1,"tid":0,
             "args":{"value":0.6,"kind":"busy"}}
        ]}"#;
        assert!(check(ok).is_ok());
    }

    #[test]
    fn check_all_reports_every_failure() {
        let bad = r#"{"traceEvents": [
            {"name":"util.net.link_busy","ph":"C","ts":5.0,"pid":0,"tid":0,
             "args":{"value":2.0,"kind":"busy"}},
            {"name":"a","ph":"i","s":"t","ts":1.0,"pid":0,"tid":1},
            {"name":"b","ph":"X","ts":1.0,"pid":0,"tid":1},
            {"name":"c","ph":"E","ts":1.0,"pid":0,"tid":1}
        ]}"#;
        let errors = check_all(bad).unwrap_err();
        assert!(errors.len() >= 4, "expected all failures, got {errors:?}");
        let joined = errors.join("\n");
        assert!(joined.contains("outside [0, 1]"));
        assert!(joined.contains("decreases"));
        assert!(joined.contains("missing dur"));
        assert!(joined.contains("without matching B"));
    }
}
