//! Where-did-the-time-go attribution: fold the per-stage latency
//! histograms of a traced sweep into (a) a collapsed-stack report that
//! `flamegraph.pl` / `inferno` render directly and (b) a machine-readable
//! breakdown (`attribution.json`) of per-stage totals, means, and shares
//! for every grid point plus a sweep-merged entry.
//!
//! ## The read anatomy
//!
//! The paper's central figure decomposes one remote access into pipeline
//! stages: credit wait → NIC egress → delay-gate wait → wire (+ lender
//! NIC) → lender memory bus → return path. Those stages *partition* the
//! access span, so their per-point `share`s sum to 1 (see
//! [`READ_ANATOMY`]) and a PERIOD sweep shows the gate-wait share
//! growing against fixed wire / lender-bus shares — the "injected delay
//! dominates, everything else stays put" claim, now a queryable
//! artifact. Stages outside the anatomy (local DRAM misses, link
//! queueing, ...) are reported alongside without a share.
//!
//! ## Determinism
//!
//! Folding is order-independent: per-point entries sort by grid index,
//! stage lists are fixed-order (anatomy pipeline order, then name-sorted
//! others), and the merged entry is a histogram merge (itself
//! order-independent). The artifacts are therefore byte-identical
//! whatever order points were simulated in — `--jobs` is invisible,
//! and the golden fixtures under `tests/golden/` stay stable.

use crate::recorder::PointTrace;
use serde::Value;
use thymesim_sim::Histogram;

/// The remote-read anatomy stages in pipeline order:
/// `(histogram stage name, collapsed-stack leaf frame)`. Together they
/// partition one remote read end-to-end.
pub const READ_ANATOMY: [(&str, &str); 6] = [
    ("credit.wait", "credit_wait"),
    ("fabric.egress", "egress"),
    ("fabric.gate_wait", "gate_wait"),
    ("fabric.wire_out", "wire"),
    ("fabric.lender_bus", "lender_bus"),
    ("fabric.return", "return"),
];

/// The envelope stage measuring the whole read end-to-end (LLC miss to
/// line fill), recorded by `crates/mem`. Reported as `envelope_ps` so a
/// reader can judge anatomy coverage, but excluded from the
/// collapsed-stack output — its time is already covered by the anatomy
/// leaves under the `read` frame.
pub const READ_ENVELOPE: &str = "mem.remote_miss";

/// Stages excluded from the collapsed-stack output because their time is
/// already represented by anatomy leaves: the end-to-end envelope and
/// the delay gate's own view of the wait it injects (the same wait the
/// fabric observes as `fabric.gate_wait`).
const COLLAPSED_EXCLUDE: [&str; 2] = [READ_ENVELOPE, "gate.delay"];

/// One stage's slice of a point (or of the sweep-merged aggregate).
#[derive(Clone, Debug, PartialEq)]
pub struct StageSlice {
    /// Histogram stage name (`fabric.gate_wait`, `mem.local_miss`, ...).
    pub stage: String,
    /// Collapsed-stack frame path for this stage, `;`-separated
    /// (`read;gate_wait` for anatomy stages, `mem;local_miss` style for
    /// the rest).
    pub frame: String,
    pub count: u64,
    /// Exact sum of all observations, picoseconds.
    pub total_ps: u64,
    pub mean_ps: f64,
    /// Fraction of the read-anatomy total ([`PointAttribution::read_total_ps`]);
    /// `None` outside the anatomy or when nothing was attributed.
    pub share: Option<f64>,
}

impl StageSlice {
    fn of(stage: &str, frame: String, h: &Histogram, read_total_ps: u64) -> StageSlice {
        let total = clamp(h.sum());
        let share = READ_ANATOMY.iter().any(|(name, _)| *name == stage) && read_total_ps > 0;
        StageSlice {
            stage: stage.to_string(),
            frame,
            count: h.count(),
            total_ps: total,
            mean_ps: h.mean(),
            share: share.then(|| total as f64 / read_total_ps as f64),
        }
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("stage".into(), Value::Str(self.stage.clone())),
            ("frame".into(), Value::Str(self.frame.clone())),
            ("count".into(), Value::U64(self.count)),
            ("total_ps".into(), Value::U64(self.total_ps)),
            ("mean_ps".into(), Value::F64(self.mean_ps)),
            (
                "share".into(),
                match self.share {
                    Some(s) => Value::F64(s),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// Attribution for one sweep point (or, with `index: None`, for the
/// whole grid merged).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointAttribution {
    /// Grid index; `None` for the sweep-merged entry.
    pub index: Option<usize>,
    /// Compact JSON of the point's configuration, when the sweep
    /// harness provided it (so a reader can tie shares to e.g. PERIOD).
    pub config: Option<String>,
    /// Sum over anatomy-stage totals — the attributed whole-read time.
    pub read_total_ps: u64,
    /// Total of the envelope stage ([`READ_ENVELOPE`]), when recorded.
    pub envelope_ps: Option<u64>,
    /// Anatomy slices in pipeline order (only stages that recorded).
    pub anatomy: Vec<StageSlice>,
    /// Every other recorded stage, name-sorted.
    pub other: Vec<StageSlice>,
}

impl PointAttribution {
    /// Fold one stage set. `stages` may arrive in any order; output
    /// ordering is fixed (see module docs).
    fn fold<'a, I>(index: Option<usize>, config: Option<String>, stages: I) -> PointAttribution
    where
        I: IntoIterator<Item = (&'a str, &'a Histogram)>,
    {
        let stages: Vec<(&str, &Histogram)> = stages.into_iter().collect();
        let read_total: u128 = READ_ANATOMY
            .iter()
            .filter_map(|(name, _)| stages.iter().find(|(n, _)| n == name))
            .map(|(_, h)| h.sum())
            .sum();
        let read_total_ps = clamp(read_total);
        let anatomy: Vec<StageSlice> = READ_ANATOMY
            .iter()
            .filter_map(|(name, leaf)| {
                stages
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, h)| StageSlice::of(name, format!("read;{leaf}"), h, read_total_ps))
            })
            .collect();
        let mut other: Vec<StageSlice> = stages
            .iter()
            .filter(|(n, _)| !READ_ANATOMY.iter().any(|(name, _)| name == n))
            .map(|(n, h)| StageSlice::of(n, n.replace('.', ";"), h, read_total_ps))
            .collect();
        other.sort_by(|a, b| a.stage.cmp(&b.stage));
        let envelope_ps = stages
            .iter()
            .find(|(n, _)| *n == READ_ENVELOPE)
            .map(|(_, h)| clamp(h.sum()));
        PointAttribution {
            index,
            config,
            read_total_ps,
            envelope_ps,
            anatomy,
            other,
        }
    }

    /// Every slice, anatomy first.
    pub fn slices(&self) -> impl Iterator<Item = &StageSlice> {
        self.anatomy.iter().chain(&self.other)
    }

    /// Look up one stage's slice by histogram name.
    pub fn slice(&self, stage: &str) -> Option<&StageSlice> {
        self.slices().find(|s| s.stage == stage)
    }

    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        if let Some(i) = self.index {
            fields.push(("index".into(), Value::U64(i as u64)));
        }
        if let Some(c) = &self.config {
            fields.push(("config".into(), Value::Str(c.clone())));
        }
        fields.push(("read_total_ps".into(), Value::U64(self.read_total_ps)));
        fields.push((
            "envelope_ps".into(),
            match self.envelope_ps {
                Some(e) => Value::U64(e),
                None => Value::Null,
            },
        ));
        fields.push((
            "anatomy".into(),
            Value::Array(self.anatomy.iter().map(StageSlice::to_value).collect()),
        ));
        fields.push((
            "other".into(),
            Value::Array(self.other.iter().map(StageSlice::to_value).collect()),
        ));
        Value::Object(fields)
    }
}

/// Attribution for one sweep: every traced point plus the grid-merged
/// aggregate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepAttribution {
    pub sweep: String,
    /// Grid size of the sweep (points that hit the cache record
    /// nothing, so `per_point` may be shorter).
    pub points: usize,
    /// Traced points, sorted by grid index.
    pub per_point: Vec<PointAttribution>,
    /// All traced points merged (histogram merge, order-independent).
    pub merged: PointAttribution,
}

impl SweepAttribution {
    /// Fold a sweep's traced points. `configs[i]` is the compact JSON
    /// of grid point `i` (pass `&[]` when unavailable).
    pub fn fold(
        sweep: &str,
        points: usize,
        traces: &[PointTrace],
        configs: &[String],
    ) -> SweepAttribution {
        let mut per_point: Vec<PointAttribution> = traces
            .iter()
            .map(|t| {
                PointAttribution::fold(
                    Some(t.index),
                    configs.get(t.index).cloned(),
                    t.stages.iter().map(|(n, h)| (*n, h)),
                )
            })
            .collect();
        per_point.sort_by_key(|p| p.index);
        let mut merged_stages: Vec<(&'static str, Histogram)> = Vec::new();
        for t in traces {
            for (name, h) in &t.stages {
                match merged_stages.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(h),
                    None => merged_stages.push((name, h.clone())),
                }
            }
        }
        let merged = PointAttribution::fold(None, None, merged_stages.iter().map(|(n, h)| (*n, h)));
        SweepAttribution {
            sweep: sweep.to_string(),
            points,
            per_point,
            merged,
        }
    }

    /// Collapsed-stack report: one line per (point, stage), in the
    /// format `flamegraph.pl` / `inferno-flamegraph` consume verbatim —
    /// `frame;frame;...;frame <count>` with the stage's total
    /// picoseconds as the count. Anatomy stages nest under a `read`
    /// frame so the rendered tower's width is the whole-read time;
    /// envelope/alias stages are excluded (their time is already in the
    /// anatomy leaves).
    pub fn collapsed(&self) -> String {
        let root = crate::flat_name(&self.sweep);
        let mut out = String::new();
        for p in &self.per_point {
            let Some(idx) = p.index else { continue };
            for s in p.slices() {
                if COLLAPSED_EXCLUDE.contains(&s.stage.as_str()) {
                    continue;
                }
                out.push_str(&format!("{root};point_{idx};{} {}\n", s.frame, s.total_ps));
            }
        }
        out
    }

    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("sweep".into(), Value::Str(self.sweep.clone())),
            ("points".into(), Value::U64(self.points as u64)),
            (
                "traced_points".into(),
                Value::U64(self.per_point.len() as u64),
            ),
            (
                "per_point".into(),
                Value::Array(
                    self.per_point
                        .iter()
                        .map(PointAttribution::to_value)
                        .collect(),
                ),
            ),
            ("merged".into(), self.merged.to_value()),
        ])
    }
}

fn clamp(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------- validators

/// Summary of a validated collapsed-stack file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollapsedCheck {
    pub lines: usize,
    /// Distinct `root;point` prefixes.
    pub points: usize,
    /// Sum of all counts.
    pub total: u128,
}

/// Structurally validate collapsed-stack text the way `flamegraph.pl`
/// parses it: every line is `frame;frame;... <integer>`, frames are
/// non-empty and space-free, at least two frames deep. Empty input is
/// valid (a sweep whose every point hit the cache records nothing).
pub fn check_collapsed(text: &str) -> Result<CollapsedCheck, String> {
    let mut out = CollapsedCheck::default();
    let mut points: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let fail = |msg: String| Err(format!("line {}: {msg}", i + 1));
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return fail(format!("no space-separated count in {line:?}"));
        };
        let Ok(n) = count.parse::<u64>() else {
            return fail(format!("count {count:?} is not an unsigned integer"));
        };
        let frames: Vec<&str> = stack.split(';').collect();
        if frames.len() < 2 {
            return fail(format!("stack {stack:?} has fewer than two frames"));
        }
        if frames.iter().any(|f| f.is_empty() || f.contains(' ')) {
            return fail(format!(
                "stack {stack:?} has an empty or space-bearing frame"
            ));
        }
        let point = format!("{};{}", frames[0], frames[1]);
        if !points.contains(&point) {
            points.push(point);
        }
        out.lines += 1;
        out.total += n as u128;
    }
    out.points = points.len();
    Ok(out)
}

/// Summary of a validated `attribution.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttributionCheck {
    pub sweeps: usize,
    pub points: usize,
    pub slices: usize,
}

/// Structurally validate an `attribution.json`: schema version, shares
/// in [0, 1] summing to 1 over each attributed point's anatomy, means
/// consistent with totals and counts.
pub fn check_attribution(text: &str) -> Result<AttributionCheck, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if root.get("schema").and_then(Value::as_u64) != Some(1) {
        return Err("missing or unknown schema version".into());
    }
    let sweeps = root
        .get("sweeps")
        .and_then(Value::as_array)
        .ok_or("missing sweeps array")?;
    let mut out = AttributionCheck {
        sweeps: sweeps.len(),
        ..AttributionCheck::default()
    };
    for sweep in sweeps {
        let name = sweep
            .get("sweep")
            .and_then(Value::as_str)
            .ok_or("sweep entry missing name")?;
        let per_point = sweep
            .get("per_point")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{name}: missing per_point array"))?;
        let merged = sweep
            .get("merged")
            .ok_or_else(|| format!("{name}: missing merged entry"))?;
        for p in per_point.iter().chain(std::iter::once(merged)) {
            check_point(name, p)?;
            out.slices += p
                .get("anatomy")
                .and_then(Value::as_array)
                .map_or(0, <[_]>::len)
                + p.get("other")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
        }
        out.points += per_point.len();
    }
    Ok(out)
}

fn check_point(sweep: &str, p: &Value) -> Result<(), String> {
    let read_total = p
        .get("read_total_ps")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{sweep}: point missing read_total_ps"))?;
    let anatomy = p
        .get("anatomy")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{sweep}: point missing anatomy array"))?;
    let mut share_sum = 0.0;
    let mut total_sum = 0u128;
    for s in anatomy.iter().chain(
        p.get("other")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter(),
    ) {
        let stage = s.get("stage").and_then(Value::as_str).unwrap_or("?");
        let count = s
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing count"))?;
        let total = s
            .get("total_ps")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing total_ps"))?;
        let mean = s
            .get("mean_ps")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing mean_ps"))?;
        if count > 0 {
            let expect = total as f64 / count as f64;
            if (mean - expect).abs() > 1e-6 * (1.0 + expect) {
                return Err(format!(
                    "{sweep}/{stage}: mean {mean} inconsistent with total/count {expect}"
                ));
            }
        }
        if let Some(share) = s.get("share").and_then(Value::as_f64) {
            if !(0.0..=1.0).contains(&share) {
                return Err(format!("{sweep}/{stage}: share {share} outside [0, 1]"));
            }
            share_sum += share;
            total_sum += total as u128;
        }
    }
    if read_total > 0 {
        if (share_sum - 1.0).abs() > 1e-9 {
            return Err(format!(
                "{sweep}: anatomy shares sum to {share_sum}, expected 1"
            ));
        }
        if total_sum != read_total as u128 {
            return Err(format!(
                "{sweep}: anatomy totals sum to {total_sum}, read_total_ps is {read_total}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceRecorder};
    use thymesim_sim::Dur;

    /// A point whose anatomy stages are (base, 2·base, ...·base) and
    /// whose envelope is their exact sum, plus one non-anatomy stage.
    fn point(index: usize, base: u64) -> PointTrace {
        let mut r = TraceRecorder::new(index, 10);
        let mut whole = 0;
        for (i, (name, _)) in READ_ANATOMY.iter().enumerate() {
            let d = base * (i as u64 + 1);
            whole += d;
            // SAFETY of &'static: anatomy names are 'static consts.
            r.latency(name, Dur::ns(d));
        }
        r.latency(READ_ENVELOPE, Dur::ns(whole));
        r.latency("mem.local_miss", Dur::ns(base));
        r.finish()
    }

    #[test]
    fn shares_partition_the_read() {
        let att = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        for p in att.per_point.iter().chain(std::iter::once(&att.merged)) {
            let total: u64 = p.anatomy.iter().map(|s| s.total_ps).sum();
            assert_eq!(total, p.read_total_ps);
            assert_eq!(
                p.envelope_ps,
                Some(p.read_total_ps),
                "anatomy covers the envelope"
            );
            let share_sum: f64 = p.anatomy.iter().map(|s| s.share.unwrap()).sum();
            assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to {share_sum}");
        }
        // Anatomy is pipeline-ordered, others name-sorted.
        assert_eq!(att.merged.anatomy[0].stage, "credit.wait");
        assert_eq!(att.merged.anatomy[2].frame, "read;gate_wait");
        assert_eq!(att.merged.other[0].stage, "mem.local_miss");
        assert_eq!(att.merged.other[0].frame, "mem;local_miss");
        assert!(att.merged.other[0].share.is_none());
    }

    #[test]
    fn fold_is_order_independent() {
        let a = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        let b = SweepAttribution::fold("sw", 2, &[point(1, 7), point(0, 10)], &[]);
        assert_eq!(a, b);
        assert_eq!(a.collapsed(), b.collapsed());
        assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }

    #[test]
    fn empty_and_single_point_folds_are_sane() {
        let empty = SweepAttribution::fold("sw", 0, &[], &[]);
        assert_eq!(empty.per_point.len(), 0);
        assert_eq!(empty.merged.read_total_ps, 0);
        assert_eq!(empty.collapsed(), "");
        assert_eq!(
            check_collapsed(&empty.collapsed()),
            Ok(CollapsedCheck::default())
        );

        let one = SweepAttribution::fold("sw", 1, &[point(0, 3)], &[]);
        assert_eq!(one.per_point.len(), 1);
        assert_eq!(one.per_point[0], {
            let mut m = one.merged.clone();
            m.index = Some(0);
            m
        });
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let att = SweepAttribution::fold("fig2/sweep", 2, &[point(0, 10), point(1, 7)], &[]);
        let text = att.collapsed();
        let stats = check_collapsed(&text).expect("collapsed output validates");
        // 6 anatomy + 1 local-miss line per point; envelope excluded.
        assert_eq!(stats.lines, 14);
        assert_eq!(stats.points, 2);
        assert!(text.contains("fig2_sweep;point_0;read;gate_wait "));
        assert!(text.contains("fig2_sweep;point_1;mem;local_miss "));
        assert!(
            !text.contains("remote_miss"),
            "envelope stays out of the graph"
        );
    }

    #[test]
    fn configs_attach_to_points() {
        let configs = vec!["{\"period\":1}".to_string(), "{\"period\":2}".to_string()];
        let att = SweepAttribution::fold("sw", 2, &[point(1, 7), point(0, 10)], &configs);
        assert_eq!(att.per_point[0].config.as_deref(), Some("{\"period\":1}"));
        assert_eq!(att.per_point[1].config.as_deref(), Some("{\"period\":2}"));
        assert_eq!(att.merged.config, None);
    }

    #[test]
    fn checker_rejects_malformed_collapsed() {
        assert!(check_collapsed("noframe\n").is_err());
        assert!(check_collapsed("a;b notanumber\n").is_err());
        assert!(
            check_collapsed("toplevel 5\n").is_err(),
            "one frame is too shallow"
        );
        assert!(check_collapsed("a;;b 5\n").is_err(), "empty frame");
        assert!(
            check_collapsed("a;b c;d 5\n").is_err(),
            "space inside frame"
        );
        assert!(check_collapsed("a;b;c 5\n").is_ok());
    }

    #[test]
    fn attribution_json_round_trips_the_checker() {
        let att = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        let root = Value::Object(vec![
            ("schema".into(), Value::U64(1)),
            ("sweeps".into(), Value::Array(vec![att.to_value()])),
        ]);
        let text = serde_json::to_string_pretty(&root).unwrap();
        let stats = check_attribution(&text).expect("valid attribution.json");
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.points, 2);
        assert!(stats.slices > 0);
        // A perturbed share must be caught.
        let broken = text.replace("\"share\": 0.0", "\"share\": 7.5");
        if broken != text {
            assert!(check_attribution(&broken).is_err());
        }
        assert!(check_attribution("{}").is_err());
    }
}
