//! Where-did-the-time-go attribution: fold the per-stage latency
//! histograms of a traced sweep into (a) a collapsed-stack report that
//! `flamegraph.pl` / `inferno` render directly and (b) a machine-readable
//! breakdown (`attribution.json`) of per-stage totals, means, and shares
//! for every grid point plus a sweep-merged entry.
//!
//! ## Phases
//!
//! Workloads mark their phases (STREAM kernels, BFS levels, SSSP
//! buckets, KV warmup/steady, PageRank zero/push) via
//! `telemetry::phase_begin`, and the recorder buckets every latency
//! observation under the phase current at record time. The fold keeps
//! that split: each [`StageSlice`] carries per-phase [`PhaseSlice`]s
//! whose counts and totals sum *integer-exactly* to the stage's, the
//! collapsed output inserts a phase frame
//! (`root;point_N;<phase>;read;gate_wait`), and each point lists its
//! phase index with per-phase attributed read totals. Observations
//! outside any marker (attach, init, drain) fold into the `unphased`
//! phase, so a trace with no markers degenerates to single `unphased`
//! towers carrying exactly the old per-stage numbers.
//!
//! ## The read anatomy
//!
//! The paper's central figure decomposes one remote access into pipeline
//! stages: credit wait → NIC egress → delay-gate wait → wire (+ lender
//! NIC) → lender memory bus → return path. Those stages *partition* the
//! access span, so their per-point `share`s sum to 1 (see
//! [`READ_ANATOMY`]) and a PERIOD sweep shows the gate-wait share
//! growing against fixed wire / lender-bus shares — the "injected delay
//! dominates, everything else stays put" claim, now a queryable
//! artifact. Stages outside the anatomy (local DRAM misses, link
//! queueing, ...) are reported alongside without a share.
//!
//! ## Determinism
//!
//! Folding is order-independent: per-point entries sort by grid index,
//! stage lists are fixed-order (anatomy pipeline order, then name-sorted
//! others), and the merged entry is a histogram merge (itself
//! order-independent). The artifacts are therefore byte-identical
//! whatever order points were simulated in — `--jobs` is invisible,
//! and the golden fixtures under `tests/golden/` stay stable.

use crate::recorder::{Phase, PointTrace};
use serde::Value;
use thymesim_sim::Histogram;

/// The remote-read anatomy stages in pipeline order:
/// `(histogram stage name, collapsed-stack leaf frame)`. Together they
/// partition one remote read end-to-end.
pub const READ_ANATOMY: [(&str, &str); 6] = [
    ("credit.wait", "credit_wait"),
    ("fabric.egress", "egress"),
    ("fabric.gate_wait", "gate_wait"),
    ("fabric.wire_out", "wire"),
    ("fabric.lender_bus", "lender_bus"),
    ("fabric.return", "return"),
];

/// The envelope stage measuring the whole read end-to-end (LLC miss to
/// line fill), recorded by `crates/mem`. Reported as `envelope_ps` so a
/// reader can judge anatomy coverage, but excluded from the
/// collapsed-stack output — its time is already covered by the anatomy
/// leaves under the `read` frame.
pub const READ_ENVELOPE: &str = "mem.remote_miss";

/// Stages excluded from the collapsed-stack output because their time is
/// already represented by anatomy leaves: the end-to-end envelope and
/// the delay gate's own view of the wait it injects (the same wait the
/// fabric observes as `fabric.gate_wait`).
const COLLAPSED_EXCLUDE: [&str; 2] = [READ_ENVELOPE, "gate.delay"];

/// One workload phase's slice of a stage: the sub-histogram of the
/// observations recorded while that phase was current. For any stage,
/// phase counts and totals partition the stage's — sums are
/// integer-exact, never approximate.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSlice {
    pub phase: Phase,
    pub count: u64,
    /// Exact sum of the phase's observations, picoseconds.
    pub total_ps: u64,
    pub mean_ps: f64,
    /// Tail quantiles of the phase's observations (bucket lower bounds,
    /// like every histogram quantile): the serving-tail columns folded
    /// per phase.
    pub p99_ps: u64,
    pub p999_ps: u64,
    pub max_ps: u64,
}

impl PhaseSlice {
    fn of(phase: Phase, h: &Histogram) -> PhaseSlice {
        PhaseSlice {
            phase,
            count: h.count(),
            total_ps: clamp(h.sum()),
            mean_ps: h.mean(),
            p99_ps: h.p99(),
            p999_ps: h.p999(),
            max_ps: h.max(),
        }
    }

    /// Collapsed-frame-safe label (`copy`, `bfs_level_3`, `unphased`).
    pub fn label(&self) -> String {
        self.phase.label()
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("phase".into(), Value::Str(self.label())),
            ("count".into(), Value::U64(self.count)),
            ("total_ps".into(), Value::U64(self.total_ps)),
            ("mean_ps".into(), Value::F64(self.mean_ps)),
            ("p99_ps".into(), Value::U64(self.p99_ps)),
            ("p999_ps".into(), Value::U64(self.p999_ps)),
            ("max_ps".into(), Value::U64(self.max_ps)),
        ])
    }
}

/// One phase's attributed whole-read total at a point: the sum of its
/// anatomy-stage sub-totals. The per-point list of these doubles as the
/// point's phase index — every phase appearing in any slice appears
/// here, which is what lets the checker reject orphan phase frames.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseTotal {
    pub phase: Phase,
    pub read_total_ps: u64,
}

impl PhaseTotal {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("phase".into(), Value::Str(self.phase.label())),
            ("read_total_ps".into(), Value::U64(self.read_total_ps)),
        ])
    }
}

/// One stage's slice of a point (or of the sweep-merged aggregate).
#[derive(Clone, Debug, PartialEq)]
pub struct StageSlice {
    /// Histogram stage name (`fabric.gate_wait`, `mem.local_miss`, ...).
    pub stage: String,
    /// Collapsed-stack frame path for this stage, `;`-separated
    /// (`read;gate_wait` for anatomy stages, `mem;local_miss` style for
    /// the rest).
    pub frame: String,
    pub count: u64,
    /// Exact sum of all observations, picoseconds.
    pub total_ps: u64,
    pub mean_ps: f64,
    /// Tail quantiles next to the mean (histogram bucket lower bounds):
    /// the open-loop campaign reads these per stage to see which stage
    /// stretches the sojourn tail.
    pub p99_ps: u64,
    pub p999_ps: u64,
    pub max_ps: u64,
    /// Fraction of the read-anatomy total ([`PointAttribution::read_total_ps`]);
    /// `None` outside the anatomy or when nothing was attributed.
    pub share: Option<f64>,
    /// Per-phase sub-slices, phase-sorted; their counts and totals sum
    /// exactly to this slice's.
    pub phases: Vec<PhaseSlice>,
}

impl StageSlice {
    fn of(
        stage: &str,
        frame: String,
        h: &Histogram,
        read_total_ps: u64,
        phases: Vec<PhaseSlice>,
    ) -> StageSlice {
        let total = clamp(h.sum());
        let share = READ_ANATOMY.iter().any(|(name, _)| *name == stage) && read_total_ps > 0;
        StageSlice {
            stage: stage.to_string(),
            frame,
            count: h.count(),
            total_ps: total,
            mean_ps: h.mean(),
            p99_ps: h.p99(),
            p999_ps: h.p999(),
            max_ps: h.max(),
            share: share.then(|| total as f64 / read_total_ps as f64),
            phases,
        }
    }

    /// Look up one phase's sub-slice by collapsed label.
    pub fn phase(&self, label: &str) -> Option<&PhaseSlice> {
        self.phases.iter().find(|p| p.label() == label)
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("stage".into(), Value::Str(self.stage.clone())),
            ("frame".into(), Value::Str(self.frame.clone())),
            ("count".into(), Value::U64(self.count)),
            ("total_ps".into(), Value::U64(self.total_ps)),
            ("mean_ps".into(), Value::F64(self.mean_ps)),
            ("p99_ps".into(), Value::U64(self.p99_ps)),
            ("p999_ps".into(), Value::U64(self.p999_ps)),
            ("max_ps".into(), Value::U64(self.max_ps)),
            (
                "share".into(),
                match self.share {
                    Some(s) => Value::F64(s),
                    None => Value::Null,
                },
            ),
            (
                "phases".into(),
                Value::Array(self.phases.iter().map(PhaseSlice::to_value).collect()),
            ),
        ])
    }
}

/// Attribution for one sweep point (or, with `index: None`, for the
/// whole grid merged).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointAttribution {
    /// Grid index; `None` for the sweep-merged entry.
    pub index: Option<usize>,
    /// Compact JSON of the point's configuration, when the sweep
    /// harness provided it (so a reader can tie shares to e.g. PERIOD).
    pub config: Option<String>,
    /// Sum over anatomy-stage totals — the attributed whole-read time.
    pub read_total_ps: u64,
    /// Total of the envelope stage ([`READ_ENVELOPE`]), when recorded.
    pub envelope_ps: Option<u64>,
    /// The point's phase index, phase-sorted: every phase observed in
    /// any slice, with its attributed whole-read total.
    pub phases: Vec<PhaseTotal>,
    /// Anatomy slices in pipeline order (only stages that recorded).
    pub anatomy: Vec<StageSlice>,
    /// Every other recorded stage, name-sorted.
    pub other: Vec<StageSlice>,
}

impl PointAttribution {
    /// Fold one stage set plus its per-(stage, phase) sub-histograms.
    /// Inputs may arrive in any order; output ordering is fixed (see
    /// module docs).
    fn fold(
        index: Option<usize>,
        config: Option<String>,
        stages: &[(&str, &Histogram)],
        phased: &[(&str, Phase, &Histogram)],
    ) -> PointAttribution {
        let read_total: u128 = READ_ANATOMY
            .iter()
            .filter_map(|(name, _)| stages.iter().find(|(n, _)| n == name))
            .map(|(_, h)| h.sum())
            .sum();
        let read_total_ps = clamp(read_total);
        let phase_slices = |stage: &str| -> Vec<PhaseSlice> {
            let mut v: Vec<PhaseSlice> = phased
                .iter()
                .filter(|(n, _, _)| *n == stage)
                .map(|(_, p, h)| PhaseSlice::of(*p, h))
                .collect();
            v.sort_by_key(|s| s.phase);
            v
        };
        let anatomy: Vec<StageSlice> = READ_ANATOMY
            .iter()
            .filter_map(|(name, leaf)| {
                stages.iter().find(|(n, _)| n == name).map(|(_, h)| {
                    StageSlice::of(
                        name,
                        format!("read;{leaf}"),
                        h,
                        read_total_ps,
                        phase_slices(name),
                    )
                })
            })
            .collect();
        let mut other: Vec<StageSlice> = stages
            .iter()
            .filter(|(n, _)| !READ_ANATOMY.iter().any(|(name, _)| name == n))
            .map(|(n, h)| StageSlice::of(n, n.replace('.', ";"), h, read_total_ps, phase_slices(n)))
            .collect();
        other.sort_by(|a, b| a.stage.cmp(&b.stage));
        let envelope_ps = stages
            .iter()
            .find(|(n, _)| *n == READ_ENVELOPE)
            .map(|(_, h)| clamp(h.sum()));
        // Phase index: every phase seen in any slice, with the sum of
        // its anatomy sub-totals as the attributed whole-read time.
        let mut ids: Vec<Phase> = Vec::new();
        for (_, p, _) in phased {
            if !ids.contains(p) {
                ids.push(*p);
            }
        }
        ids.sort();
        let phases: Vec<PhaseTotal> = ids
            .into_iter()
            .map(|phase| PhaseTotal {
                phase,
                read_total_ps: clamp(
                    phased
                        .iter()
                        .filter(|(n, p, _)| {
                            *p == phase && READ_ANATOMY.iter().any(|(name, _)| name == n)
                        })
                        .map(|(_, _, h)| h.sum())
                        .sum(),
                ),
            })
            .collect();
        PointAttribution {
            index,
            config,
            read_total_ps,
            envelope_ps,
            phases,
            anatomy,
            other,
        }
    }

    /// Every slice, anatomy first.
    pub fn slices(&self) -> impl Iterator<Item = &StageSlice> {
        self.anatomy.iter().chain(&self.other)
    }

    /// Look up one stage's slice by histogram name.
    pub fn slice(&self, stage: &str) -> Option<&StageSlice> {
        self.slices().find(|s| s.stage == stage)
    }

    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        if let Some(i) = self.index {
            fields.push(("index".into(), Value::U64(i as u64)));
        }
        if let Some(c) = &self.config {
            fields.push(("config".into(), Value::Str(c.clone())));
        }
        fields.push(("read_total_ps".into(), Value::U64(self.read_total_ps)));
        fields.push((
            "envelope_ps".into(),
            match self.envelope_ps {
                Some(e) => Value::U64(e),
                None => Value::Null,
            },
        ));
        fields.push((
            "phases".into(),
            Value::Array(self.phases.iter().map(PhaseTotal::to_value).collect()),
        ));
        fields.push((
            "anatomy".into(),
            Value::Array(self.anatomy.iter().map(StageSlice::to_value).collect()),
        ));
        fields.push((
            "other".into(),
            Value::Array(self.other.iter().map(StageSlice::to_value).collect()),
        ));
        Value::Object(fields)
    }
}

/// Attribution for one sweep: every traced point plus the grid-merged
/// aggregate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepAttribution {
    pub sweep: String,
    /// Grid size of the sweep (points that hit the cache record
    /// nothing, so `per_point` may be shorter).
    pub points: usize,
    /// Traced points, sorted by grid index.
    pub per_point: Vec<PointAttribution>,
    /// All traced points merged (histogram merge, order-independent).
    pub merged: PointAttribution,
}

impl SweepAttribution {
    /// Fold a sweep's traced points. `configs[i]` is the compact JSON
    /// of grid point `i` (pass `&[]` when unavailable).
    pub fn fold(
        sweep: &str,
        points: usize,
        traces: &[PointTrace],
        configs: &[String],
    ) -> SweepAttribution {
        let mut per_point: Vec<PointAttribution> = traces
            .iter()
            .map(|t| {
                let stages: Vec<(&str, &Histogram)> =
                    t.stages.iter().map(|(n, h)| (*n, h)).collect();
                let phased: Vec<(&str, Phase, &Histogram)> =
                    t.phased.iter().map(|(n, p, h)| (*n, *p, h)).collect();
                PointAttribution::fold(
                    Some(t.index),
                    configs.get(t.index).cloned(),
                    &stages,
                    &phased,
                )
            })
            .collect();
        per_point.sort_by_key(|p| p.index);
        let mut merged_stages: Vec<(&'static str, Histogram)> = Vec::new();
        let mut merged_phased: Vec<(&'static str, Phase, Histogram)> = Vec::new();
        for t in traces {
            for (name, h) in &t.stages {
                match merged_stages.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(h),
                    None => merged_stages.push((name, h.clone())),
                }
            }
            for (name, phase, h) in &t.phased {
                match merged_phased
                    .iter_mut()
                    .find(|(n, p, _)| n == name && p == phase)
                {
                    Some((_, _, acc)) => acc.merge(h),
                    None => merged_phased.push((name, *phase, h.clone())),
                }
            }
        }
        let stages: Vec<(&str, &Histogram)> = merged_stages.iter().map(|(n, h)| (*n, h)).collect();
        let phased: Vec<(&str, Phase, &Histogram)> =
            merged_phased.iter().map(|(n, p, h)| (*n, *p, h)).collect();
        let merged = PointAttribution::fold(None, None, &stages, &phased);
        SweepAttribution {
            sweep: sweep.to_string(),
            points,
            per_point,
            merged,
        }
    }

    /// Collapsed-stack report: one line per (point, phase, stage), in
    /// the format `flamegraph.pl` / `inferno-flamegraph` consume
    /// verbatim — `frame;frame;...;frame <count>` with the phase's
    /// total picoseconds as the count. The phase frame sits between the
    /// point and the stage path (`root;point_3;copy;read;gate_wait`),
    /// so per-stage totals are the rendered sums of their phase
    /// children. Anatomy stages nest under a `read` frame so the
    /// rendered tower's width is the whole-read time; envelope/alias
    /// stages are excluded (their time is already in the anatomy
    /// leaves). A stage with no phase buckets (hand-built traces) emits
    /// one `unphased` line carrying the stage total.
    pub fn collapsed(&self) -> String {
        let root = crate::flat_name(&self.sweep);
        let mut out = String::new();
        for p in &self.per_point {
            let Some(idx) = p.index else { continue };
            for s in p.slices() {
                if COLLAPSED_EXCLUDE.contains(&s.stage.as_str()) {
                    continue;
                }
                if s.phases.is_empty() {
                    out.push_str(&format!(
                        "{root};point_{idx};unphased;{} {}\n",
                        s.frame, s.total_ps
                    ));
                    continue;
                }
                for ph in &s.phases {
                    out.push_str(&format!(
                        "{root};point_{idx};{};{} {}\n",
                        ph.label(),
                        s.frame,
                        ph.total_ps
                    ));
                }
            }
        }
        out
    }

    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("sweep".into(), Value::Str(self.sweep.clone())),
            ("points".into(), Value::U64(self.points as u64)),
            (
                "traced_points".into(),
                Value::U64(self.per_point.len() as u64),
            ),
            (
                "per_point".into(),
                Value::Array(
                    self.per_point
                        .iter()
                        .map(PointAttribution::to_value)
                        .collect(),
                ),
            ),
            ("merged".into(), self.merged.to_value()),
        ])
    }
}

fn clamp(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------- validators

/// Summary of a validated collapsed-stack file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollapsedCheck {
    pub lines: usize,
    /// Distinct `root;point` prefixes.
    pub points: usize,
    /// Distinct `root;point;phase` prefixes among point-anchored lines.
    pub phases: usize,
    /// Sum of all counts.
    pub total: u128,
}

/// Structurally validate collapsed-stack text the way `flamegraph.pl`
/// parses it: every line is `frame;frame;... <integer>`, frames are
/// non-empty and space-free, at least two frames deep. A point-anchored
/// line (`root;point_N;...`) must carry a phase frame *and* a stage
/// path below it — a bare `root;point_N;<phase>` line is an orphan
/// phase with no stage leaf and is rejected. Empty input is valid (a
/// sweep whose every point hit the cache records nothing).
pub fn check_collapsed(text: &str) -> Result<CollapsedCheck, String> {
    let mut out = CollapsedCheck::default();
    let mut points: Vec<String> = Vec::new();
    let mut phases: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let fail = |msg: String| Err(format!("line {}: {msg}", i + 1));
        let Some((stack, count)) = line.rsplit_once(' ') else {
            return fail(format!("no space-separated count in {line:?}"));
        };
        let Ok(n) = count.parse::<u64>() else {
            return fail(format!("count {count:?} is not an unsigned integer"));
        };
        let frames: Vec<&str> = stack.split(';').collect();
        if frames.len() < 2 {
            return fail(format!("stack {stack:?} has fewer than two frames"));
        }
        if frames.iter().any(|f| f.is_empty() || f.contains(' ')) {
            return fail(format!(
                "stack {stack:?} has an empty or space-bearing frame"
            ));
        }
        if frames[1].starts_with("point_") {
            // root;point;phase;stage... — anything shorter is a phase
            // frame with no stage leaf under it.
            if frames.len() < 4 {
                return fail(format!(
                    "stack {stack:?} is an orphan phase frame (no stage below the phase)"
                ));
            }
            let phase = format!("{};{};{}", frames[0], frames[1], frames[2]);
            if !phases.contains(&phase) {
                phases.push(phase);
            }
        }
        let point = format!("{};{}", frames[0], frames[1]);
        if !points.contains(&point) {
            points.push(point);
        }
        out.lines += 1;
        out.total += n as u128;
    }
    out.points = points.len();
    out.phases = phases.len();
    Ok(out)
}

/// Summary of a validated `attribution.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttributionCheck {
    pub sweeps: usize,
    pub points: usize,
    pub slices: usize,
    /// Total per-phase sub-slices across all stage slices.
    pub phases: usize,
}

/// Structurally validate an `attribution.json`: schema version, shares
/// in [0, 1] summing to 1 over each attributed point's anatomy, means
/// consistent with totals and counts, and — for the per-phase split —
/// each slice's phase counts/totals summing *exactly* to the slice's
/// (a phase sum exceeding its stage total is rejected), every slice
/// phase present in the point's phase index (no orphans), and each
/// index entry's `read_total_ps` equal to the sum of that phase's
/// anatomy sub-totals.
pub fn check_attribution(text: &str) -> Result<AttributionCheck, String> {
    let root: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if root.get("schema").and_then(Value::as_u64) != Some(1) {
        return Err("missing or unknown schema version".into());
    }
    let sweeps = root
        .get("sweeps")
        .and_then(Value::as_array)
        .ok_or("missing sweeps array")?;
    let mut out = AttributionCheck {
        sweeps: sweeps.len(),
        ..AttributionCheck::default()
    };
    for sweep in sweeps {
        let name = sweep
            .get("sweep")
            .and_then(Value::as_str)
            .ok_or("sweep entry missing name")?;
        let per_point = sweep
            .get("per_point")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{name}: missing per_point array"))?;
        let merged = sweep
            .get("merged")
            .ok_or_else(|| format!("{name}: missing merged entry"))?;
        for p in per_point.iter().chain(std::iter::once(merged)) {
            out.phases += check_point(name, p)?;
            out.slices += p
                .get("anatomy")
                .and_then(Value::as_array)
                .map_or(0, <[_]>::len)
                + p.get("other")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
        }
        out.points += per_point.len();
    }
    Ok(out)
}

/// Validate the tail-quantile columns of one slice (stage or phase
/// sub-slice): present, ordered `p99 ≤ p999 ≤ max`, and bounded by the
/// slice's total. Histogram quantiles are bucket lower bounds, so the
/// only exact invariants are the ordering ones.
fn check_tails(ctx: &str, s: &Value, count: u64, total: u64) -> Result<(), String> {
    let get = |field: &str| {
        s.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{ctx}: missing {field}"))
    };
    let p99 = get("p99_ps")?;
    let p999 = get("p999_ps")?;
    let max = get("max_ps")?;
    if !(p99 <= p999 && p999 <= max) {
        return Err(format!(
            "{ctx}: tail quantiles out of order (p99 {p99}, p999 {p999}, max {max})"
        ));
    }
    if count > 0 && max > total {
        return Err(format!(
            "{ctx}: max_ps {max} exceeds the slice total {total}"
        ));
    }
    Ok(())
}

/// Validate one point entry; returns the number of per-phase sub-slices
/// it carries.
fn check_point(sweep: &str, p: &Value) -> Result<usize, String> {
    let read_total = p
        .get("read_total_ps")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{sweep}: point missing read_total_ps"))?;
    let anatomy = p
        .get("anatomy")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{sweep}: point missing anatomy array"))?;
    // The point's phase index: labels must be unique and non-empty;
    // slice phases are checked against this set (orphan detection) and
    // the per-phase anatomy totals must reproduce its read totals.
    let mut phase_index: Vec<(String, u64)> = Vec::new();
    for e in p
        .get("phases")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
    {
        let label = e
            .get("phase")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{sweep}: phase index entry missing label"))?;
        if label.is_empty() {
            return Err(format!("{sweep}: empty phase label in phase index"));
        }
        if phase_index.iter().any(|(l, _)| l == label) {
            return Err(format!("{sweep}: duplicate phase {label:?} in phase index"));
        }
        let total = e
            .get("read_total_ps")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{sweep}/phase {label}: missing read_total_ps"))?;
        phase_index.push((label.to_string(), total));
    }
    let mut share_sum = 0.0;
    let mut total_sum = 0u128;
    let mut phase_slices = 0usize;
    let mut anatomy_phase_totals: Vec<(String, u128)> = Vec::new();
    let others = p.get("other").and_then(Value::as_array).unwrap_or(&[]);
    for (s, in_anatomy) in anatomy
        .iter()
        .map(|s| (s, true))
        .chain(others.iter().map(|s| (s, false)))
    {
        let stage = s.get("stage").and_then(Value::as_str).unwrap_or("?");
        let count = s
            .get("count")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing count"))?;
        let total = s
            .get("total_ps")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing total_ps"))?;
        let mean = s
            .get("mean_ps")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{sweep}/{stage}: missing mean_ps"))?;
        if count > 0 {
            let expect = total as f64 / count as f64;
            if (mean - expect).abs() > 1e-6 * (1.0 + expect) {
                return Err(format!(
                    "{sweep}/{stage}: mean {mean} inconsistent with total/count {expect}"
                ));
            }
        }
        check_tails(&format!("{sweep}/{stage}"), s, count, total)?;
        if let Some(share) = s.get("share").and_then(Value::as_f64) {
            if !(0.0..=1.0).contains(&share) {
                return Err(format!("{sweep}/{stage}: share {share} outside [0, 1]"));
            }
            share_sum += share;
            total_sum += total as u128;
        }
        // Per-phase sub-slices: orphan-free, internally consistent, and
        // partitioning the stage exactly.
        let phases = s.get("phases").and_then(Value::as_array).unwrap_or(&[]);
        let mut phase_count_sum = 0u64;
        let mut phase_total_sum = 0u128;
        for e in phases {
            let label = e
                .get("phase")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{sweep}/{stage}: phase entry missing label"))?;
            if label.is_empty() {
                return Err(format!("{sweep}/{stage}: empty phase label"));
            }
            if !phase_index.iter().any(|(l, _)| l == label) {
                return Err(format!(
                    "{sweep}/{stage}: orphan phase {label:?} not in the point's phase index"
                ));
            }
            let pc = e
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{sweep}/{stage}/{label}: missing count"))?;
            let pt = e
                .get("total_ps")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{sweep}/{stage}/{label}: missing total_ps"))?;
            let pm = e
                .get("mean_ps")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{sweep}/{stage}/{label}: missing mean_ps"))?;
            if pc > 0 {
                let expect = pt as f64 / pc as f64;
                if (pm - expect).abs() > 1e-6 * (1.0 + expect) {
                    return Err(format!(
                        "{sweep}/{stage}/{label}: mean {pm} inconsistent with total/count {expect}"
                    ));
                }
            }
            check_tails(&format!("{sweep}/{stage}/{label}"), e, pc, pt)?;
            phase_count_sum += pc;
            phase_total_sum += pt as u128;
            phase_slices += 1;
            if in_anatomy {
                match anatomy_phase_totals.iter_mut().find(|(l, _)| l == label) {
                    Some((_, acc)) => *acc += pt as u128,
                    None => anatomy_phase_totals.push((label.to_string(), pt as u128)),
                }
            }
        }
        if !phases.is_empty() {
            if phase_count_sum != count {
                return Err(format!(
                    "{sweep}/{stage}: phase counts sum to {phase_count_sum}, stage count is {count}"
                ));
            }
            if phase_total_sum != total as u128 {
                return Err(format!(
                    "{sweep}/{stage}: phase totals sum to {phase_total_sum}, \
                     stage total_ps is {total}"
                ));
            }
        }
    }
    // The phase index's read totals must reproduce from the anatomy
    // sub-totals (integer-exact, like read_total_ps from the stages).
    for (label, expect) in &phase_index {
        let got = anatomy_phase_totals
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, t)| *t);
        if got != *expect as u128 {
            return Err(format!(
                "{sweep}/phase {label}: anatomy sub-totals sum to {got}, \
                 phase index claims {expect}"
            ));
        }
    }
    if read_total > 0 {
        if (share_sum - 1.0).abs() > 1e-9 {
            return Err(format!(
                "{sweep}: anatomy shares sum to {share_sum}, expected 1"
            ));
        }
        if total_sum != read_total as u128 {
            return Err(format!(
                "{sweep}: anatomy totals sum to {total_sum}, read_total_ps is {read_total}"
            ));
        }
    }
    Ok(phase_slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceRecorder};
    use thymesim_sim::Dur;

    /// A point whose anatomy stages are (base, 2·base, ...·base) and
    /// whose envelope is their exact sum, plus one non-anatomy stage.
    /// Anatomy observations split across two phases (`copy`, then a
    /// second copy of each stage in `scale`); the envelope and the
    /// local miss record outside any marker, i.e. `unphased`.
    fn point(index: usize, base: u64) -> PointTrace {
        let mut r = TraceRecorder::new(index, 10);
        let mut whole = 0;
        for (i, (name, _)) in READ_ANATOMY.iter().enumerate() {
            let d = base * (i as u64 + 1);
            whole += 2 * d;
            // SAFETY of &'static: anatomy names are 'static consts.
            r.phase_begin("copy", None);
            r.latency(name, Dur::ns(d));
            r.phase_begin("scale", None);
            r.latency(name, Dur::ns(d));
            r.phase_end();
        }
        r.latency(READ_ENVELOPE, Dur::ns(whole));
        r.latency("mem.local_miss", Dur::ns(base));
        r.finish()
    }

    #[test]
    fn shares_partition_the_read() {
        let att = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        for p in att.per_point.iter().chain(std::iter::once(&att.merged)) {
            let total: u64 = p.anatomy.iter().map(|s| s.total_ps).sum();
            assert_eq!(total, p.read_total_ps);
            assert_eq!(
                p.envelope_ps,
                Some(p.read_total_ps),
                "anatomy covers the envelope"
            );
            let share_sum: f64 = p.anatomy.iter().map(|s| s.share.unwrap()).sum();
            assert!((share_sum - 1.0).abs() < 1e-12, "shares sum to {share_sum}");
        }
        // Anatomy is pipeline-ordered, others name-sorted.
        assert_eq!(att.merged.anatomy[0].stage, "credit.wait");
        assert_eq!(att.merged.anatomy[2].frame, "read;gate_wait");
        assert_eq!(att.merged.other[0].stage, "mem.local_miss");
        assert_eq!(att.merged.other[0].frame, "mem;local_miss");
        assert!(att.merged.other[0].share.is_none());
    }

    #[test]
    fn phase_slices_partition_each_stage_exactly() {
        let att = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        for p in att.per_point.iter().chain(std::iter::once(&att.merged)) {
            for s in p.slices() {
                assert!(!s.phases.is_empty(), "{}: every stage is phased", s.stage);
                let count: u64 = s.phases.iter().map(|ph| ph.count).sum();
                let total: u64 = s.phases.iter().map(|ph| ph.total_ps).sum();
                assert_eq!(count, s.count, "{}: phase counts partition", s.stage);
                assert_eq!(total, s.total_ps, "{}: phase totals partition", s.stage);
            }
            // Anatomy stages split copy/scale; the envelope and local
            // miss recorded outside any marker.
            let gate = p.slice("fabric.gate_wait").unwrap();
            assert_eq!(
                gate.phases
                    .iter()
                    .map(PhaseSlice::label)
                    .collect::<Vec<_>>(),
                ["copy", "scale"]
            );
            assert_eq!(gate.phase("copy").unwrap().total_ps, gate.total_ps / 2);
            let miss = p.slice("mem.local_miss").unwrap();
            assert_eq!(miss.phases.len(), 1);
            assert_eq!(miss.phases[0].label(), "unphased");
            // The phase index reproduces per-phase read totals.
            let labels: Vec<String> = p.phases.iter().map(|pt| pt.phase.label()).collect();
            assert_eq!(labels, ["copy", "scale", "unphased"]);
            let index_sum: u64 = p.phases.iter().map(|pt| pt.read_total_ps).sum();
            assert_eq!(index_sum, p.read_total_ps);
            assert_eq!(p.phases[2].read_total_ps, 0, "unphased saw no anatomy");
        }
    }

    #[test]
    fn fold_is_order_independent() {
        let a = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        let b = SweepAttribution::fold("sw", 2, &[point(1, 7), point(0, 10)], &[]);
        assert_eq!(a, b);
        assert_eq!(a.collapsed(), b.collapsed());
        assert_eq!(
            serde_json::to_string(&a.to_value()).unwrap(),
            serde_json::to_string(&b.to_value()).unwrap()
        );
    }

    #[test]
    fn empty_and_single_point_folds_are_sane() {
        let empty = SweepAttribution::fold("sw", 0, &[], &[]);
        assert_eq!(empty.per_point.len(), 0);
        assert_eq!(empty.merged.read_total_ps, 0);
        assert_eq!(empty.collapsed(), "");
        assert_eq!(
            check_collapsed(&empty.collapsed()),
            Ok(CollapsedCheck::default())
        );

        let one = SweepAttribution::fold("sw", 1, &[point(0, 3)], &[]);
        assert_eq!(one.per_point.len(), 1);
        assert_eq!(one.per_point[0], {
            let mut m = one.merged.clone();
            m.index = Some(0);
            m
        });
    }

    #[test]
    fn collapsed_output_is_flamegraph_shaped() {
        let att = SweepAttribution::fold("fig2/sweep", 2, &[point(0, 10), point(1, 7)], &[]);
        let text = att.collapsed();
        let stats = check_collapsed(&text).expect("collapsed output validates");
        // Per point: 6 anatomy stages × 2 phases + 1 unphased local-miss
        // line; the envelope is excluded.
        assert_eq!(stats.lines, 26);
        assert_eq!(stats.points, 2);
        assert_eq!(stats.phases, 6, "copy/scale/unphased per point");
        assert!(text.contains("fig2_sweep;point_0;copy;read;gate_wait "));
        assert!(text.contains("fig2_sweep;point_0;scale;read;gate_wait "));
        assert!(text.contains("fig2_sweep;point_1;unphased;mem;local_miss "));
        assert!(
            !text.contains("remote_miss"),
            "envelope stays out of the graph"
        );
    }

    #[test]
    fn configs_attach_to_points() {
        let configs = vec!["{\"period\":1}".to_string(), "{\"period\":2}".to_string()];
        let att = SweepAttribution::fold("sw", 2, &[point(1, 7), point(0, 10)], &configs);
        assert_eq!(att.per_point[0].config.as_deref(), Some("{\"period\":1}"));
        assert_eq!(att.per_point[1].config.as_deref(), Some("{\"period\":2}"));
        assert_eq!(att.merged.config, None);
    }

    #[test]
    fn checker_rejects_malformed_collapsed() {
        assert!(check_collapsed("noframe\n").is_err());
        assert!(check_collapsed("a;b notanumber\n").is_err());
        assert!(
            check_collapsed("toplevel 5\n").is_err(),
            "one frame is too shallow"
        );
        assert!(check_collapsed("a;;b 5\n").is_err(), "empty frame");
        assert!(
            check_collapsed("a;b c;d 5\n").is_err(),
            "space inside frame"
        );
        assert!(check_collapsed("a;b;c 5\n").is_ok());
    }

    #[test]
    fn checker_rejects_orphan_phase_frames_in_collapsed() {
        // A point-anchored line must be root;point;phase;stage... — a
        // phase with no stage leaf under it is rejected.
        let err = check_collapsed("sw;point_0;copy 5\n").unwrap_err();
        assert!(err.contains("orphan phase"), "{err}");
        assert!(check_collapsed("sw;point_0;copy;read;gate_wait 5\n").is_ok());
        // Non-point lines keep plain flamegraph semantics.
        assert!(check_collapsed("a;b;c 5\n").is_ok());
    }

    /// A minimal hand-written attribution.json with one single-stage
    /// point, parameterized on the phase fragments so negative tests
    /// can inject exactly one defect.
    fn mini_attribution(index_phases: &str, slice_phases: &str) -> String {
        let point = format!(
            r#"{{
                "read_total_ps": 10,
                "envelope_ps": null,
                "phases": [{index_phases}],
                "anatomy": [{{
                    "stage": "credit.wait",
                    "frame": "read;credit_wait",
                    "count": 2,
                    "total_ps": 10,
                    "mean_ps": 5.0,
                    "p99_ps": 5,
                    "p999_ps": 5,
                    "max_ps": 5,
                    "share": 1.0,
                    "phases": [{slice_phases}]
                }}],
                "other": []
            }}"#
        );
        format!(
            r#"{{
                "schema": 1,
                "sweeps": [{{
                    "sweep": "sw",
                    "per_point": [],
                    "merged": {point}
                }}]
            }}"#
        )
    }

    #[test]
    fn checker_rejects_malformed_phase_entries() {
        let index = r#"{"phase": "copy", "read_total_ps": 10}"#;
        let good = mini_attribution(
            index,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0, "p99_ps": 5, "p999_ps": 5, "max_ps": 5}"#,
        );
        let stats = check_attribution(&good).expect("well-formed phases pass");
        assert_eq!(stats.phases, 1);

        // Orphan: slice names a phase the point's index never declared.
        let orphan = mini_attribution(
            index,
            r#"{"phase": "ghost", "count": 2, "total_ps": 10, "mean_ps": 5.0, "p99_ps": 5, "p999_ps": 5, "max_ps": 5}"#,
        );
        let err = check_attribution(&orphan).unwrap_err();
        assert!(err.contains("orphan phase"), "{err}");

        // Phase totals exceeding the stage total are rejected.
        let exceed = mini_attribution(
            r#"{"phase": "copy", "read_total_ps": 13}"#,
            r#"{"phase": "copy", "count": 2, "total_ps": 13, "mean_ps": 6.5, "p99_ps": 7, "p999_ps": 7, "max_ps": 7}"#,
        );
        let err = check_attribution(&exceed).unwrap_err();
        assert!(err.contains("phase totals sum to 13"), "{err}");

        // So are partitions that drop observations (counts short).
        let short = mini_attribution(
            index,
            r#"{"phase": "copy", "count": 1, "total_ps": 10, "mean_ps": 10.0, "p99_ps": 10, "p999_ps": 10, "max_ps": 10}"#,
        );
        let err = check_attribution(&short).unwrap_err();
        assert!(err.contains("phase counts sum to 1"), "{err}");

        // Index totals must reproduce from the anatomy sub-totals.
        let inflated = mini_attribution(
            r#"{"phase": "copy", "read_total_ps": 9}"#,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0, "p99_ps": 5, "p999_ps": 5, "max_ps": 5}"#,
        );
        let err = check_attribution(&inflated).unwrap_err();
        assert!(err.contains("phase index claims 9"), "{err}");

        // Duplicate index labels are rejected.
        let dup = mini_attribution(
            r#"{"phase": "copy", "read_total_ps": 10}, {"phase": "copy", "read_total_ps": 0}"#,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0, "p99_ps": 5, "p999_ps": 5, "max_ps": 5}"#,
        );
        let err = check_attribution(&dup).unwrap_err();
        assert!(err.contains("duplicate phase"), "{err}");
    }

    #[test]
    fn checker_rejects_disordered_or_missing_tails() {
        let index = r#"{"phase": "copy", "read_total_ps": 10}"#;
        // p999 below p99 is a broken fold.
        let disordered = mini_attribution(
            index,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0,
                "p99_ps": 6, "p999_ps": 5, "max_ps": 6}"#,
        );
        let err = check_attribution(&disordered).unwrap_err();
        assert!(err.contains("tail quantiles out of order"), "{err}");

        // A max above the slice total is impossible for latencies.
        let oversized = mini_attribution(
            index,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0,
                "p99_ps": 5, "p999_ps": 5, "max_ps": 11}"#,
        );
        let err = check_attribution(&oversized).unwrap_err();
        assert!(err.contains("exceeds the slice total"), "{err}");

        // The columns are part of the schema, not optional.
        let missing = mini_attribution(
            index,
            r#"{"phase": "copy", "count": 2, "total_ps": 10, "mean_ps": 5.0}"#,
        );
        let err = check_attribution(&missing).unwrap_err();
        assert!(err.contains("missing p99_ps"), "{err}");
    }

    #[test]
    fn attribution_json_round_trips_the_checker() {
        let att = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 7)], &[]);
        let root = Value::Object(vec![
            ("schema".into(), Value::U64(1)),
            ("sweeps".into(), Value::Array(vec![att.to_value()])),
        ]);
        let text = serde_json::to_string_pretty(&root).unwrap();
        let stats = check_attribution(&text).expect("valid attribution.json");
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.points, 2);
        assert!(stats.slices > 0);
        // A perturbed share must be caught.
        let broken = text.replace("\"share\": 0.0", "\"share\": 7.5");
        if broken != text {
            assert!(check_attribution(&broken).is_err());
        }
        assert!(check_attribution("{}").is_err());
    }
}
