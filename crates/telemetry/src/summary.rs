//! Compact per-sweep summaries: the `telemetry.json` side of the
//! exporter pair. Stage histograms and totals from every traced point
//! are merged (histogram merge is order-independent, see
//! `thymesim_sim::stats`), then keyed fields are emitted sorted by name
//! so the file is stable whatever order probes first fired in.

use crate::recorder::PointTrace;
use serde::Value;
use thymesim_sim::Histogram;

/// Merged telemetry for one sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepSummary {
    pub sweep: String,
    /// Grid size of the sweep.
    pub points: usize,
    /// Points that actually recorded (cache hits record nothing).
    pub traced_points: usize,
    /// Timeline events kept / dropped across all points.
    pub events: u64,
    pub dropped: u64,
    /// Per-stage latency histograms, merged across points, name-sorted.
    pub stages: Vec<(String, Histogram)>,
    /// Monotonic totals, summed across points, name-sorted.
    pub counters: Vec<(String, u64)>,
}

impl SweepSummary {
    /// Merge the traced points of one sweep.
    pub fn merge(sweep: &str, points: usize, traces: &[PointTrace]) -> SweepSummary {
        let mut s = SweepSummary {
            sweep: sweep.to_string(),
            points,
            traced_points: traces.len(),
            ..SweepSummary::default()
        };
        for t in traces {
            s.events += t.events.len() as u64;
            s.dropped += t.dropped;
            for (name, h) in &t.stages {
                match s.stages.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(h),
                    None => s.stages.push((name.to_string(), h.clone())),
                }
            }
            for (name, c) in &t.counters {
                match s.counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => *acc += c,
                    None => s.counters.push((name.to_string(), *c)),
                }
            }
        }
        s.stages.sort_by(|a, b| a.0.cmp(&b.0));
        s.counters.sort_by(|a, b| a.0.cmp(&b.0));
        s
    }

    pub fn to_value(&self) -> Value {
        let stages = self
            .stages
            .iter()
            .map(|(name, h)| {
                Value::Object(vec![
                    ("stage".into(), Value::Str(name.clone())),
                    ("count".into(), Value::U64(h.count())),
                    ("mean_ps".into(), Value::F64(h.mean())),
                    ("min_ps".into(), Value::U64(h.min())),
                    ("p50_ps".into(), Value::U64(h.p50())),
                    ("p99_ps".into(), Value::U64(h.p99())),
                    ("max_ps".into(), Value::U64(h.max())),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, c)| {
                Value::Object(vec![
                    ("name".into(), Value::Str(name.clone())),
                    ("total".into(), Value::U64(*c)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("sweep".into(), Value::Str(self.sweep.clone())),
            ("points".into(), Value::U64(self.points as u64)),
            (
                "traced_points".into(),
                Value::U64(self.traced_points as u64),
            ),
            ("events".into(), Value::U64(self.events)),
            ("dropped".into(), Value::U64(self.dropped)),
            ("stages".into(), Value::Array(stages)),
            ("counters".into(), Value::Array(counters)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceRecorder};
    use thymesim_sim::{Dur, Time};

    fn point(index: usize, base: u64) -> PointTrace {
        let mut r = TraceRecorder::new(index, 10);
        r.span("t", "s", Time::ns(base), Time::ns(base + 5));
        r.latency("wire", Dur::ns(base + 1));
        r.latency("gate", Dur::ns(2 * base + 1));
        r.add("reads", base);
        r.finish()
    }

    #[test]
    fn merge_sums_and_sorts() {
        let s = SweepSummary::merge("sw", 4, &[point(0, 10), point(1, 20)]);
        assert_eq!(s.points, 4);
        assert_eq!(s.traced_points, 2);
        assert_eq!(s.events, 2);
        // Name-sorted regardless of first-observation order.
        assert_eq!(s.stages[0].0, "gate");
        assert_eq!(s.stages[1].0, "wire");
        assert_eq!(s.stages[0].1.count(), 2);
        assert_eq!(s.counters, vec![("reads".to_string(), 30)]);
    }

    #[test]
    fn merge_is_order_independent() {
        let ab = SweepSummary::merge("sw", 2, &[point(0, 10), point(1, 20)]);
        let ba = SweepSummary::merge("sw", 2, &[point(1, 20), point(0, 10)]);
        assert_eq!(
            serde_json::to_string(&ab.to_value()).unwrap(),
            serde_json::to_string(&ba.to_value()).unwrap()
        );
    }
}
