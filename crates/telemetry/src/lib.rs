//! # thymesim-telemetry
//!
//! Zero-overhead-when-disabled observability for the whole stack, in
//! **virtual sim time**. Probes throughout the simulator (fabric
//! pipeline stages, credit window, delay gate, memory hierarchy, links,
//! workload phases) call the free functions in this crate — [`span`],
//! [`instant`], [`counter`], [`latency`], [`add`], [`phase_begin`] /
//! [`phase_end`] — which forward to a thread-local [`Recorder`] when one
//! is installed and cost a single thread-local flag read otherwise.
//! Workloads declare phases ([`phase_begin`]) and every latency
//! observation lands in the phase current at record time, so each stage
//! histogram splits into per-phase sub-histograms that sum exactly to
//! the stage total.
//!
//! The sweep harness (`thymesim_core::sweep`) installs a
//! [`TraceRecorder`] around each simulated point and exports two
//! artifacts per sweep:
//!
//! * `<dir>/<sweep>.trace.json` — Chrome-trace/Perfetto JSON timeline
//!   ([`chrome`]), loadable at <https://ui.perfetto.dev>;
//! * one cumulative `<dir>/telemetry.json` — compact per-sweep summary
//!   of merged stage histograms and totals ([`summary`]).
//!
//! ## Determinism contract
//!
//! Telemetry is purely observational: recorders never feed data back
//! into the simulation, so `results/` output is byte-identical whether
//! tracing is on or off (CI-enforced). Events carry only virtual time;
//! each point records on the one thread that simulates it and traces
//! are assembled in grid order, so trace files are byte-identical
//! across `--jobs` settings too.

pub mod attribution;
pub mod baseline;
pub mod chrome;
pub mod counters;
pub mod recorder;
pub mod summary;

pub use attribution::{PhaseSlice, PointAttribution, StageSlice, SweepAttribution};
pub use baseline::{Baseline, Drift};
pub use counters::{
    CounterKind, CounterRecorder, CounterReport, CounterTrack, PointUtilization, SweepUtilization,
};
pub use recorder::{NoopRecorder, Phase, PointTrace, Recorder, TraceEvent, TraceRecorder};
pub use summary::SweepSummary;

use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::sync::Mutex;
use thymesim_sim::{Dur, Time};

// ------------------------------------------------------------- config

/// Process-wide tracing configuration, set once by the CLI
/// (`repro --trace[=<filter>] [--trace-out <dir>]`).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Only sweeps whose name contains this substring record; `None`
    /// traces every sweep.
    pub filter: Option<String>,
    /// Directory receiving `<sweep>.trace.json` files and the merged
    /// `telemetry.json`. Kept separate from `results/` so result trees
    /// stay byte-identical with tracing on.
    pub dir: PathBuf,
    /// Per-point cap on buffered timeline events (histograms and totals
    /// are never capped; overflow is counted as `dropped`).
    pub max_events_per_point: usize,
    /// Write per-sweep artifact files (`<sweep>.trace.json`,
    /// `<sweep>.collapsed`, `telemetry.json`, `attribution.json`,
    /// `utilization.json`)? `false` runs the recorders and accumulates
    /// summaries / attributions / utilizations in memory only —
    /// baseline record/check mode uses this to gate stage and counter
    /// means without touching the filesystem.
    pub artifacts: bool,
    /// Width of the fixed virtual-time windows counter gauges fold onto,
    /// in picoseconds.
    pub counter_window_ps: u64,
    /// A counter window is saturated when its value exceeds this
    /// fraction (of the bound, for bounded level counters).
    pub saturation_threshold: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            filter: None,
            dir: PathBuf::from("traces"),
            max_events_per_point: 20_000,
            artifacts: true,
            counter_window_ps: counters::DEFAULT_WINDOW_PS,
            saturation_threshold: counters::DEFAULT_SATURATION_THRESHOLD,
        }
    }
}

static CONFIG: Mutex<Option<TraceConfig>> = Mutex::new(None);
static SUMMARIES: Mutex<Vec<SweepSummary>> = Mutex::new(Vec::new());
static ATTRIBUTIONS: Mutex<Vec<SweepAttribution>> = Mutex::new(Vec::new());
static UTILIZATIONS: Mutex<Vec<SweepUtilization>> = Mutex::new(Vec::new());

/// Install the process-wide tracing configuration.
pub fn configure(cfg: TraceConfig) {
    *CONFIG.lock().expect("telemetry config poisoned") = Some(cfg);
}

/// Disable tracing process-wide (and forget accumulated summaries,
/// attributions, and utilizations).
pub fn disable() {
    *CONFIG.lock().expect("telemetry config poisoned") = None;
    SUMMARIES.lock().expect("summaries poisoned").clear();
    ATTRIBUTIONS.lock().expect("attributions poisoned").clear();
    UTILIZATIONS.lock().expect("utilizations poisoned").clear();
}

/// The currently installed configuration, if tracing is on.
pub fn config() -> Option<TraceConfig> {
    CONFIG.lock().expect("telemetry config poisoned").clone()
}

/// Should the named sweep record? True iff tracing is configured and
/// the filter (if any) matches.
pub fn sweep_traced(name: &str) -> bool {
    match &*CONFIG.lock().expect("telemetry config poisoned") {
        Some(cfg) => cfg
            .filter
            .as_deref()
            .is_none_or(|needle| name.contains(needle)),
        None => false,
    }
}

// ---------------------------------------------------- ambient recorder

thread_local! {
    /// Fast-path flag: probes read only this when tracing is off.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<TraceRecorder>> = const { RefCell::new(None) };
}

/// Is a recorder installed on this thread? Probes use this to skip
/// argument computation; the free functions below also check it.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Install a recorder for the current thread (one sweep point).
pub fn install(rec: TraceRecorder) {
    RECORDER.with(|r| *r.borrow_mut() = Some(rec));
    ENABLED.with(|e| e.set(true));
}

/// Remove the thread's recorder and return what it captured.
pub fn take() -> Option<PointTrace> {
    ENABLED.with(|e| e.set(false));
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(TraceRecorder::finish)
}

#[inline]
fn with(f: impl FnOnce(&mut TraceRecorder)) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

// ------------------------------------------------------------- probes

/// Record a completed interval `[start, end]` on `track`.
#[inline]
pub fn span(track: &'static str, name: &'static str, start: Time, end: Time) {
    if enabled() {
        with(|r| r.span(track, name, start, end));
    }
}

/// Like [`span`], with one `key = value` argument.
#[inline]
pub fn span_arg(
    track: &'static str,
    name: &'static str,
    start: Time,
    end: Time,
    key: &'static str,
    value: u64,
) {
    if enabled() {
        with(|r| r.span_arg(track, name, start, end, key, value));
    }
}

/// Record a point-in-time marker.
#[inline]
pub fn instant(track: &'static str, name: &'static str, at: Time) {
    if enabled() {
        with(|r| r.instant(track, name, at));
    }
}

/// Record a sampled counter value.
#[inline]
pub fn counter(name: &'static str, at: Time, value: f64) {
    if enabled() {
        with(|r| r.counter(name, at, value));
    }
}

/// Record one observation of a per-stage latency. The observation is
/// attributed to the workload phase current at record time (see
/// [`phase_begin`]), so per-phase sub-histograms partition each stage
/// histogram exactly.
#[inline]
pub fn latency(stage: &'static str, d: Dur) {
    if enabled() {
        with(|r| r.latency(stage, d));
    }
}

/// Enter a workload phase (STREAM kernel, BFS level, KV steady state,
/// ...). Subsequent [`latency`] observations on this thread attribute to
/// it until the next `phase_begin` or [`phase_end`]. Re-asserting the
/// current phase is idempotent; interleaved processes restate theirs
/// each step.
#[inline]
pub fn phase_begin(name: &'static str, index: Option<u64>) {
    if enabled() {
        with(|r| r.phase_begin(name, index));
    }
}

/// Leave the current workload phase; later observations are `unphased`.
#[inline]
pub fn phase_end() {
    if enabled() {
        with(|r| r.phase_end());
    }
}

/// Bump a monotonic total.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if enabled() {
        with(|r| r.add(name, delta));
    }
}

/// Record that a component was occupied over `[start, end)` — folded
/// onto fixed virtual-time windows as a busy fraction. Emit
/// non-overlapping intervals per counter (serialized resources do so
/// naturally) so window fractions stay within [0, 1].
#[inline]
pub fn counter_busy(name: &'static str, start: Time, end: Time) {
    if enabled() {
        with(|r| r.counter_busy(name, start, end));
    }
}

/// Record an integer gauge held at `level` over `[start, end)` — folded
/// onto windows as a time-weighted level. Overlapping segments add, so
/// emitting one unit segment per waiting request folds into the
/// instantaneous queue depth.
#[inline]
pub fn counter_level(name: &'static str, start: Time, end: Time, level: u64) {
    if enabled() {
        with(|r| r.counter_level(name, start, end, level));
    }
}

/// Record a numerator/denominator event pair at an instant (e.g. one
/// cache access that did or did not miss) — folded onto windows as a
/// rate in [0, 1].
#[inline]
pub fn counter_ratio(name: &'static str, at: Time, num: u64, den: u64) {
    if enabled() {
        with(|r| r.counter_ratio(name, at, num, den));
    }
}

/// Declare a level counter's capacity (credit window size, ...); the
/// exported track carries it and saturation is measured against it.
#[inline]
pub fn counter_bound(name: &'static str, bound: u64) {
    if enabled() {
        with(|r| r.counter_bound(name, bound));
    }
}

/// Claim the next instance slot of an exclusive counter family on this
/// point's recorder; returns the zero-based slot (0 when tracing is
/// off). Components whose busy/level tracks must not overlap claim at
/// construction and emit only from slot 0 — experiments that build
/// several links, buses, or engines inside one point otherwise sum
/// their occupancies into fractions above 1.
#[inline]
pub fn claim(family: &'static str) -> u64 {
    if !enabled() {
        return 0;
    }
    RECORDER.with(|r| r.borrow_mut().as_mut().map_or(0, |rec| rec.claim(family)))
}

// ------------------------------------------------------------- export

/// Flatten a sweep name for the filesystem (same rule as the sweep
/// cache): every non-alphanumeric character becomes `_`.
pub fn flat_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Export one finished sweep: write its Chrome trace to
/// `<dir>/<flat>.trace.json` and its collapsed-stack attribution to
/// `<dir>/<flat>.collapsed`, and fold its summary and attribution into
/// the process-wide accumulators (written later by [`write_summary`] /
/// [`write_attribution`]). Called by the sweep harness with traces
/// already in grid order; `configs[i]` is the compact config JSON of
/// grid point `i`.
pub fn export_sweep(
    name: &str,
    points: usize,
    traces: &[PointTrace],
    configs: &[String],
) -> Option<PathBuf> {
    let cfg = config()?;
    let attribution = SweepAttribution::fold(name, points, traces, configs);
    let utilization = SweepUtilization::fold(
        name,
        points,
        traces,
        cfg.counter_window_ps,
        cfg.saturation_threshold,
    );
    let path = cfg.dir.join(format!("{}.trace.json", flat_name(name)));
    if cfg.artifacts {
        std::fs::create_dir_all(&cfg.dir).expect("trace directory must be creatable");
        std::fs::write(&path, chrome::render(name, traces, cfg.counter_window_ps))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        let collapsed = cfg.dir.join(format!("{}.collapsed", flat_name(name)));
        std::fs::write(&collapsed, attribution.collapsed())
            .unwrap_or_else(|e| panic!("write {}: {e}", collapsed.display()));
    }
    let summary = SweepSummary::merge(name, points, traces);
    let mut all = SUMMARIES.lock().expect("summaries poisoned");
    // Re-running a sweep in-process (tests, repeated experiments)
    // replaces its entry instead of duplicating it.
    match all.iter_mut().find(|s| s.sweep == name) {
        Some(slot) => *slot = summary,
        None => all.push(summary),
    }
    drop(all);
    let mut atts = ATTRIBUTIONS.lock().expect("attributions poisoned");
    match atts.iter_mut().find(|a| a.sweep == name) {
        Some(slot) => *slot = attribution,
        None => atts.push(attribution),
    }
    drop(atts);
    let mut utils = UTILIZATIONS.lock().expect("utilizations poisoned");
    match utils.iter_mut().find(|u| u.sweep == name) {
        Some(slot) => *slot = utilization,
        None => utils.push(utilization),
    }
    Some(path)
}

/// Snapshot of every sweep attribution accumulated so far, in execution
/// order. Baseline record/check consume this in-process.
pub fn attributions() -> Vec<SweepAttribution> {
    ATTRIBUTIONS.lock().expect("attributions poisoned").clone()
}

/// Snapshot of every sweep utilization accumulated so far, in execution
/// order. Baseline record/check gate counter means from this.
pub fn utilizations() -> Vec<SweepUtilization> {
    UTILIZATIONS.lock().expect("utilizations poisoned").clone()
}

/// Write the cumulative `telemetry.json` (all sweeps exported so far,
/// in execution order). Returns the path, or `None` when tracing is off,
/// artifacts are disabled, or nothing recorded.
pub fn write_summary() -> Option<PathBuf> {
    let cfg = config()?;
    if !cfg.artifacts {
        return None;
    }
    let all = SUMMARIES.lock().expect("summaries poisoned");
    if all.is_empty() {
        return None;
    }
    let root = serde::Value::Object(vec![
        ("schema".into(), serde::Value::U64(1)),
        (
            "sweeps".into(),
            serde::Value::Array(all.iter().map(SweepSummary::to_value).collect()),
        ),
    ]);
    let path = cfg.dir.join("telemetry.json");
    std::fs::create_dir_all(&cfg.dir).expect("trace directory must be creatable");
    let text = serde_json::to_string_pretty(&root).expect("summary serializes");
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    Some(path)
}

/// Write the cumulative `attribution.json` (per-stage shares and means
/// for every sweep exported so far, in execution order). Returns the
/// path, or `None` when tracing is off, artifacts are disabled, or
/// nothing recorded.
pub fn write_attribution() -> Option<PathBuf> {
    let cfg = config()?;
    if !cfg.artifacts {
        return None;
    }
    let all = ATTRIBUTIONS.lock().expect("attributions poisoned");
    if all.is_empty() {
        return None;
    }
    let root = serde::Value::Object(vec![
        ("schema".into(), serde::Value::U64(1)),
        (
            "sweeps".into(),
            serde::Value::Array(all.iter().map(SweepAttribution::to_value).collect()),
        ),
    ]);
    let path = cfg.dir.join("attribution.json");
    std::fs::create_dir_all(&cfg.dir).expect("trace directory must be creatable");
    let text = serde_json::to_string_pretty(&root).expect("attribution serializes");
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    Some(path)
}

/// Write the cumulative `utilization.json` (windowed counter means,
/// peaks, and saturation metrics for every sweep exported so far, in
/// execution order). Returns `Ok(None)` when tracing is off, artifacts
/// are disabled, or nothing recorded; unlike the older writers this
/// surfaces I/O failures (unwritable directory, ...) as errors instead
/// of panicking, so the CLI can fail with a named error.
pub fn write_utilization() -> std::io::Result<Option<PathBuf>> {
    let Some(cfg) = config() else {
        return Ok(None);
    };
    if !cfg.artifacts {
        return Ok(None);
    }
    let all = UTILIZATIONS.lock().expect("utilizations poisoned");
    if all.is_empty() {
        return Ok(None);
    }
    let root = serde::Value::Object(vec![
        ("schema".into(), serde::Value::U64(1)),
        (
            "sweeps".into(),
            serde::Value::Array(all.iter().map(SweepUtilization::to_value).collect()),
        ),
    ]);
    let path = cfg.dir.join("utilization.json");
    std::fs::create_dir_all(&cfg.dir)?;
    let text = serde_json::to_string_pretty(&root).expect("utilization serializes");
    std::fs::write(&path, text)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_are_inert() {
        assert!(!enabled());
        span("t", "s", Time::ZERO, Time::ns(1));
        latency("s", Dur::ns(1));
        add("c", 1);
        assert!(take().is_none());
    }

    #[test]
    fn install_record_take_round_trip() {
        install(TraceRecorder::new(3, 100));
        assert!(enabled());
        span("t", "s", Time::ZERO, Time::ns(1));
        latency("stage", Dur::ns(5));
        add("c", 2);
        let t = take().expect("recorder was installed");
        assert!(!enabled());
        assert_eq!(t.index, 3);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.stages[0].0, "stage");
        assert_eq!(t.counters, vec![("c", 2)]);
    }

    #[test]
    fn recorders_are_thread_local() {
        install(TraceRecorder::new(0, 100));
        add("main", 1);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!enabled(), "other threads must not see the recorder");
                add("other", 1);
                assert!(take().is_none());
            });
        });
        let t = take().expect("main thread recorder intact");
        assert_eq!(t.counters, vec![("main", 1)]);
    }

    #[test]
    fn flat_name_flattens() {
        assert_eq!(flat_name("fig2/stream-delay"), "fig2_stream_delay");
    }
}
