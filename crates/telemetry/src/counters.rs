//! Windowed counter tracks: virtual-time utilization and saturation.
//!
//! Latency histograms (PR 3/4) answer *where* time went; this module
//! answers *when* the system was busy and how deep queues got — the
//! contention axis. Instrumentation sites emit three sample shapes
//! through the thread-local recorder:
//!
//! * **busy** — a component occupied over `[start, end)` ps (link
//!   serialization, DRAM bus transfer, delay-gate grant slot);
//! * **level** — an integer gauge held over `[start, end)` ps (credit
//!   occupancy, queue depth, outstanding reads). Overlapping unit
//!   segments sum, so "one segment per waiting request" folds into the
//!   instantaneous queue depth by construction;
//! * **ratio** — a numerator/denominator event pair at an instant
//!   (LLC misses over accesses).
//!
//! [`CounterRecorder`] clips every sample onto **fixed virtual-time
//! windows** of `window_ps` and accumulates integer sums per covered
//! window: busy/level windows hold `Σ value·overlap_ps` (u128), ratio
//! windows hold `(Σ num, Σ den)`. Window values derive exactly from
//! those integers — `busy/level: num / window_ps`, `ratio: num / den` —
//! so the fold is order-independent: any arrival order of the same
//! samples produces byte-identical tracks, and any `--jobs` produces a
//! byte-identical `utilization.json`.
//!
//! [`SweepUtilization::fold`] turns per-point tracks into the report:
//! per counter, the time-weighted mean over the point's horizon (the
//! last covered window's end; uncovered time counts as idle/zero), the
//! peak window value, and saturation metrics — total virtual time in
//! windows whose value exceeds the configured threshold, and the
//! longest run of consecutive saturated windows. All time quantities
//! are exact picosecond integers.

use serde::Value;

/// Default window width: 10 µs of virtual time.
pub const DEFAULT_WINDOW_PS: u64 = 10_000_000;

/// Default saturation threshold: a window counts as saturated when its
/// value exceeds this fraction (busy/ratio tracks) or this fraction of
/// the declared bound (bounded level tracks).
pub const DEFAULT_SATURATION_THRESHOLD: f64 = 0.9;

/// What a track's per-window integer accumulators mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterKind {
    /// Windows hold occupied picoseconds; value = `num / window_ps`,
    /// always in [0, 1] when busy intervals never overlap.
    Busy,
    /// Windows hold `Σ level·overlap_ps`; value = `num / window_ps`,
    /// the time-weighted mean level over the window.
    Level,
    /// Windows hold event sums; value = `num / den`.
    Ratio,
}

impl CounterKind {
    pub fn label(self) -> &'static str {
        match self {
            CounterKind::Busy => "busy",
            CounterKind::Level => "level",
            CounterKind::Ratio => "ratio",
        }
    }

    pub fn from_label(s: &str) -> Option<CounterKind> {
        match s {
            "busy" => Some(CounterKind::Busy),
            "level" => Some(CounterKind::Level),
            "ratio" => Some(CounterKind::Ratio),
            _ => None,
        }
    }

    /// Are this kind's window values fractions that must sit in [0, 1]?
    pub fn is_fraction(self) -> bool {
        matches!(self, CounterKind::Busy | CounterKind::Ratio)
    }
}

/// One counter's windowed accumulators for one sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterTrack {
    pub name: &'static str,
    pub kind: CounterKind,
    /// Declared capacity for level tracks (credit window size, ...);
    /// window values must never exceed it, and saturation is measured
    /// against `bound · threshold`.
    pub bound: Option<u64>,
    /// Sparse, sorted by window index: `(index, num, den)`. `num` is
    /// occupied/weighted picoseconds (busy/level) or the numerator event
    /// sum (ratio); `den` is the denominator event sum (ratio only).
    pub windows: Vec<(u64, u128, u128)>,
}

impl CounterTrack {
    /// The value of the window at position `i`, given the window width.
    pub fn window_value(&self, i: usize, window_ps: u64) -> f64 {
        let (_, num, den) = self.windows[i];
        match self.kind {
            CounterKind::Busy | CounterKind::Level => num as f64 / window_ps as f64,
            CounterKind::Ratio => {
                if den == 0 {
                    0.0
                } else {
                    num as f64 / den as f64
                }
            }
        }
    }

    /// The threshold a window value is compared against for saturation:
    /// the configured fraction, scaled by the bound for bounded levels.
    /// Unbounded level tracks never saturate (their values are open-ended).
    fn saturation_cut(&self, threshold: f64) -> Option<f64> {
        match (self.kind, self.bound) {
            (CounterKind::Level, Some(b)) => Some(threshold * b as f64),
            (CounterKind::Level, None) => None,
            _ => Some(threshold),
        }
    }
}

/// Accumulates windowed counter samples for one sweep point. Owned by
/// the thread-local `TraceRecorder`; never capped (like the stage
/// histograms), so the utilization fold survives the timeline event cap.
#[derive(Clone, Debug)]
pub struct CounterRecorder {
    window_ps: u64,
    tracks: Vec<CounterTrack>,
}

impl CounterRecorder {
    pub fn new(window_ps: u64) -> CounterRecorder {
        assert!(window_ps > 0, "counter window must be positive");
        CounterRecorder {
            window_ps,
            tracks: Vec::new(),
        }
    }

    pub fn window_ps(&self) -> u64 {
        self.window_ps
    }

    fn track(&mut self, name: &'static str, kind: CounterKind) -> &mut CounterTrack {
        // Track sets are tiny (single digits); linear scan, like stages.
        match self.tracks.iter().position(|t| t.name == name) {
            Some(i) => {
                debug_assert_eq!(self.tracks[i].kind, kind, "counter {name} changed kind");
                &mut self.tracks[i]
            }
            None => {
                self.tracks.push(CounterTrack {
                    name,
                    kind,
                    bound: None,
                    windows: Vec::new(),
                });
                self.tracks.last_mut().expect("just pushed")
            }
        }
    }

    fn deposit(track: &mut CounterTrack, idx: u64, num: u128, den: u128) {
        // Samples arrive almost always in time order; binary search makes
        // shuffled arrival (tests) land identically.
        match track.windows.binary_search_by_key(&idx, |w| w.0) {
            Ok(i) => {
                track.windows[i].1 += num;
                track.windows[i].2 += den;
            }
            Err(i) => track.windows.insert(i, (idx, num, den)),
        }
    }

    /// Spread `weight · overlap_ps` over every window the interval
    /// `[start, end)` touches. A degenerate interval still registers the
    /// track (so e.g. an always-idle link appears with zero busy).
    fn spread(&mut self, name: &'static str, kind: CounterKind, start: u64, end: u64, weight: u64) {
        let w = self.window_ps;
        let track = self.track(name, kind);
        if end <= start {
            return;
        }
        let mut idx = start / w;
        let last = (end - 1) / w;
        while idx <= last {
            let lo = idx as u128 * w as u128;
            let hi = lo + w as u128;
            let overlap = (end as u128).min(hi) - (start as u128).max(lo);
            Self::deposit(track, idx, overlap * weight as u128, 0);
            idx += 1;
        }
    }

    /// The component was occupied over `[start, end)` ps. Callers must
    /// emit non-overlapping intervals per counter (serialized resources
    /// do so naturally), keeping window fractions within [0, 1].
    pub fn busy(&mut self, name: &'static str, start_ps: u64, end_ps: u64) {
        self.spread(name, CounterKind::Busy, start_ps, end_ps, 1);
    }

    /// An integer gauge held `level` over `[start, end)` ps. Overlapping
    /// segments add: emitting one unit segment per waiting request folds
    /// into the instantaneous queue depth.
    pub fn level(&mut self, name: &'static str, start_ps: u64, end_ps: u64, level: u64) {
        self.spread(name, CounterKind::Level, start_ps, end_ps, level);
    }

    /// A numerator/denominator event pair at instant `at_ps` (e.g. one
    /// cache access that did or did not miss).
    pub fn ratio(&mut self, name: &'static str, at_ps: u64, num: u64, den: u64) {
        let w = self.window_ps;
        let track = self.track(name, CounterKind::Ratio);
        Self::deposit(track, at_ps / w, num as u128, den as u128);
    }

    /// Declare a level track's capacity (idempotent).
    pub fn bound(&mut self, name: &'static str, bound: u64) {
        self.track(name, CounterKind::Level).bound = Some(bound);
    }

    /// Consume the recorder into its tracks, name-sorted (canonical
    /// order, independent of first-observation order).
    pub fn finish(mut self) -> Vec<CounterTrack> {
        self.tracks.sort_by(|a, b| a.name.cmp(b.name));
        self.tracks
    }
}

// ----------------------------------------------------------------- fold

/// One counter's utilization report — for one point, or merged over a
/// sweep. Integer fields are exact; floats derive from them.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterReport {
    pub name: String,
    pub kind: CounterKind,
    pub bound: Option<u64>,
    /// Covered (sampled) windows.
    pub windows: u64,
    /// `windows · window_ps`.
    pub covered_ps: u64,
    /// Virtual time the mean is weighted over: the point's horizon
    /// (merged: the sum of contributing points' horizons).
    pub horizon_ps: u64,
    /// Exact numerator: occupied/weighted ps (busy/level) or events (ratio).
    pub num: u128,
    /// Exact denominator: `horizon_ps` (busy/level) or events (ratio).
    pub den: u128,
    /// Time-weighted mean value: `num / den` (0 when nothing recorded).
    pub mean: f64,
    /// Maximum window value.
    pub peak: f64,
    /// Virtual time in saturated windows (value above the threshold).
    pub saturated_ps: u64,
    /// `saturated_ps / horizon_ps` (0 when the horizon is empty).
    pub saturated_frac: f64,
    /// Longest run of consecutive saturated windows, in ps.
    pub longest_saturated_ps: u64,
}

impl CounterReport {
    fn of(t: &CounterTrack, horizon_ps: u64, window_ps: u64, threshold: f64) -> CounterReport {
        let mut num = 0u128;
        let mut ratio_den = 0u128;
        let mut peak = 0.0f64;
        let mut saturated_ps = 0u64;
        let mut longest = 0u64;
        let mut run = 0u64;
        let mut prev_saturated: Option<u64> = None;
        let cut = t.saturation_cut(threshold);
        for (i, &(idx, n, d)) in t.windows.iter().enumerate() {
            num += n;
            ratio_den += d;
            let v = t.window_value(i, window_ps);
            if v > peak {
                peak = v;
            }
            if cut.is_some_and(|c| v > c) {
                saturated_ps += window_ps;
                run = match prev_saturated {
                    Some(p) if idx == p + 1 => run + window_ps,
                    _ => window_ps,
                };
                if run > longest {
                    longest = run;
                }
                prev_saturated = Some(idx);
            } else {
                prev_saturated = None;
            }
        }
        let den = match t.kind {
            CounterKind::Ratio => ratio_den,
            _ => horizon_ps as u128,
        };
        CounterReport {
            name: t.name.to_string(),
            kind: t.kind,
            bound: t.bound,
            windows: t.windows.len() as u64,
            covered_ps: t.windows.len() as u64 * window_ps,
            horizon_ps,
            num,
            den,
            mean: if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            },
            peak,
            saturated_ps,
            saturated_frac: if horizon_ps == 0 {
                0.0
            } else {
                saturated_ps as f64 / horizon_ps as f64
            },
            longest_saturated_ps: longest,
        }
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("kind".into(), Value::Str(self.kind.label().into())),
            (
                "bound".into(),
                match self.bound {
                    Some(b) => Value::U64(b),
                    None => Value::Null,
                },
            ),
            ("windows".into(), Value::U64(self.windows)),
            ("covered_ps".into(), Value::U64(self.covered_ps)),
            ("horizon_ps".into(), Value::U64(self.horizon_ps)),
            ("num".into(), Value::U64(clamp(self.num))),
            ("den".into(), Value::U64(clamp(self.den))),
            ("mean".into(), Value::F64(self.mean)),
            ("peak".into(), Value::F64(self.peak)),
            ("saturated_ps".into(), Value::U64(self.saturated_ps)),
            ("saturated_frac".into(), Value::F64(self.saturated_frac)),
            (
                "longest_saturated_ps".into(),
                Value::U64(self.longest_saturated_ps),
            ),
        ])
    }
}

/// One point's utilization: every counter it sampled, name-sorted.
#[derive(Clone, Debug, PartialEq)]
pub struct PointUtilization {
    pub index: usize,
    /// End of the last covered window across all of the point's tracks —
    /// the virtual time means are weighted over (idle tail included).
    pub horizon_ps: u64,
    pub counters: Vec<CounterReport>,
}

impl PointUtilization {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("index".into(), Value::U64(self.index as u64)),
            ("horizon_ps".into(), Value::U64(self.horizon_ps)),
            (
                "counters".into(),
                Value::Array(self.counters.iter().map(CounterReport::to_value).collect()),
            ),
        ])
    }
}

/// One sweep's utilization report: per-point and sweep-merged counter
/// reports, byte-identical at any `--jobs` (points sort by grid index,
/// counters by name, and every accumulator is a commutative integer sum).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepUtilization {
    pub sweep: String,
    pub window_ps: u64,
    pub threshold: f64,
    /// Grid size (cached points record nothing, so `per_point` may be
    /// shorter).
    pub points: usize,
    pub per_point: Vec<PointUtilization>,
    /// Per-counter reports merged over all traced points: sums of the
    /// integer accumulators, max of peak / longest.
    pub merged: Vec<CounterReport>,
}

impl SweepUtilization {
    pub fn fold(
        sweep: &str,
        points: usize,
        traces: &[crate::recorder::PointTrace],
        window_ps: u64,
        threshold: f64,
    ) -> SweepUtilization {
        let mut per_point: Vec<PointUtilization> = traces
            .iter()
            .map(|t| {
                let horizon = t
                    .tracks
                    .iter()
                    .filter_map(|tr| tr.windows.last().map(|w| w.0 + 1))
                    .max()
                    .unwrap_or(0)
                    * window_ps;
                let mut counters: Vec<CounterReport> = t
                    .tracks
                    .iter()
                    .map(|tr| CounterReport::of(tr, horizon, window_ps, threshold))
                    .collect();
                counters.sort_by(|a, b| a.name.cmp(&b.name));
                PointUtilization {
                    index: t.index,
                    horizon_ps: horizon,
                    counters,
                }
            })
            .collect();
        per_point.sort_by_key(|p| p.index);

        let mut merged: Vec<CounterReport> = Vec::new();
        for p in &per_point {
            for r in &p.counters {
                match merged.iter_mut().find(|m| m.name == r.name) {
                    Some(m) => {
                        m.windows += r.windows;
                        m.covered_ps += r.covered_ps;
                        m.horizon_ps += p.horizon_ps;
                        m.num += r.num;
                        m.den += match r.kind {
                            CounterKind::Ratio => r.den,
                            _ => p.horizon_ps as u128,
                        };
                        m.peak = m.peak.max(r.peak);
                        m.saturated_ps += r.saturated_ps;
                        m.longest_saturated_ps = m.longest_saturated_ps.max(r.longest_saturated_ps);
                        // Points may run different capacities (the window
                        // ablation sweeps the credit cap); the merged bound
                        // is the largest, so merged values stay within it.
                        m.bound = match (m.bound, r.bound) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            (a, b) => a.or(b),
                        };
                    }
                    None => {
                        let mut m = r.clone();
                        m.horizon_ps = p.horizon_ps;
                        m.den = match r.kind {
                            CounterKind::Ratio => r.den,
                            _ => p.horizon_ps as u128,
                        };
                        merged.push(m);
                    }
                }
            }
        }
        for m in &mut merged {
            m.mean = if m.den == 0 {
                0.0
            } else {
                m.num as f64 / m.den as f64
            };
            m.saturated_frac = if m.horizon_ps == 0 {
                0.0
            } else {
                m.saturated_ps as f64 / m.horizon_ps as f64
            };
        }
        merged.sort_by(|a, b| a.name.cmp(&b.name));

        SweepUtilization {
            sweep: sweep.to_string(),
            window_ps,
            threshold,
            points,
            per_point,
            merged,
        }
    }

    /// Look up a merged counter report by name.
    pub fn merged_counter(&self, name: &str) -> Option<&CounterReport> {
        self.merged.iter().find(|c| c.name == name)
    }

    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("sweep".into(), Value::Str(self.sweep.clone())),
            ("window_ps".into(), Value::U64(self.window_ps)),
            ("threshold".into(), Value::F64(self.threshold)),
            ("points".into(), Value::U64(self.points as u64)),
            (
                "traced_points".into(),
                Value::U64(self.per_point.len() as u64),
            ),
            (
                "per_point".into(),
                Value::Array(
                    self.per_point
                        .iter()
                        .map(PointUtilization::to_value)
                        .collect(),
                ),
            ),
            (
                "merged".into(),
                Value::Array(self.merged.iter().map(CounterReport::to_value).collect()),
            ),
        ])
    }
}

fn clamp(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

// ----------------------------------------------------------- validator

/// Summary of a validated `utilization.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UtilizationCheck {
    pub sweeps: usize,
    pub points: usize,
    pub counters: usize,
}

/// Structurally validate a `utilization.json`, collecting **every**
/// failure instead of stopping at the first: schema version, window
/// width, known kinds, fraction values in [0, 1], bounded level values
/// within their bound, saturation accounting consistent with the
/// horizon, and means consistent with their exact accumulators.
pub fn check_utilization(text: &str) -> Result<UtilizationCheck, Vec<String>> {
    let root: Value =
        serde_json::from_str(text).map_err(|e| vec![format!("not valid JSON: {e}")])?;
    let mut errors: Vec<String> = Vec::new();
    if root.get("schema").and_then(Value::as_u64) != Some(1) {
        errors.push("missing or unknown schema version".into());
    }
    let Some(sweeps) = root.get("sweeps").and_then(Value::as_array) else {
        errors.push("missing sweeps array".into());
        return Err(errors);
    };
    let mut out = UtilizationCheck {
        sweeps: sweeps.len(),
        ..UtilizationCheck::default()
    };
    for sweep in sweeps {
        let name = sweep
            .get("sweep")
            .and_then(Value::as_str)
            .unwrap_or("<unnamed>");
        let window_ps = sweep.get("window_ps").and_then(Value::as_u64).unwrap_or(0);
        if window_ps == 0 {
            errors.push(format!("{name}: missing or zero window_ps"));
        }
        match sweep.get("threshold").and_then(Value::as_f64) {
            Some(t) if (0.0..=1.0).contains(&t) => {}
            _ => errors.push(format!("{name}: threshold missing or outside [0, 1]")),
        }
        let per_point = sweep
            .get("per_point")
            .and_then(Value::as_array)
            .unwrap_or_else(|| {
                errors.push(format!("{name}: missing per_point array"));
                &[]
            });
        out.points += per_point.len();
        for p in per_point {
            let horizon = p.get("horizon_ps").and_then(Value::as_u64).unwrap_or(0);
            let idx = p.get("index").and_then(Value::as_u64).unwrap_or(0);
            let ctx = format!("{name}/point {idx}");
            out.counters += check_counters(&ctx, p.get("counters"), Some(horizon), &mut errors);
        }
        out.counters += check_counters(name, sweep.get("merged"), None, &mut errors);
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(errors)
    }
}

/// Validate one counters array; returns how many entries it held.
fn check_counters(
    ctx: &str,
    counters: Option<&Value>,
    point_horizon: Option<u64>,
    errors: &mut Vec<String>,
) -> usize {
    let Some(list) = counters.and_then(Value::as_array) else {
        errors.push(format!("{ctx}: missing counters array"));
        return 0;
    };
    let mut prev_name = String::new();
    for c in list {
        let cname = c.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        let ctx = format!("{ctx}/{cname}");
        if cname < prev_name.as_str() {
            errors.push(format!("{ctx}: counters not name-sorted"));
        }
        prev_name = cname.to_string();
        let kind = c
            .get("kind")
            .and_then(Value::as_str)
            .and_then(CounterKind::from_label);
        if kind.is_none() {
            errors.push(format!("{ctx}: missing or unknown kind"));
        }
        let bound = c.get("bound").and_then(Value::as_u64);
        let mean = c.get("mean").and_then(Value::as_f64).unwrap_or(-1.0);
        let peak = c.get("peak").and_then(Value::as_f64).unwrap_or(-1.0);
        if mean < 0.0 || peak < 0.0 {
            errors.push(format!("{ctx}: missing or negative mean/peak"));
        }
        if kind.is_some_and(CounterKind::is_fraction) {
            for (field, v) in [("mean", mean), ("peak", peak)] {
                if v > 1.0 {
                    errors.push(format!("{ctx}: {field} {v} outside [0, 1]"));
                }
            }
        }
        if let (Some(CounterKind::Level), Some(b)) = (kind, bound) {
            if peak > b as f64 {
                errors.push(format!("{ctx}: peak {peak} exceeds bound {b}"));
            }
            if mean > b as f64 {
                errors.push(format!("{ctx}: mean {mean} exceeds bound {b}"));
            }
        }
        let horizon = c.get("horizon_ps").and_then(Value::as_u64).unwrap_or(0);
        if let Some(ph) = point_horizon {
            if horizon != ph {
                errors.push(format!(
                    "{ctx}: horizon_ps {horizon} differs from the point's {ph}"
                ));
            }
        }
        let covered = c.get("covered_ps").and_then(Value::as_u64).unwrap_or(0);
        let saturated = c.get("saturated_ps").and_then(Value::as_u64).unwrap_or(0);
        let longest = c
            .get("longest_saturated_ps")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if covered > horizon {
            errors.push(format!(
                "{ctx}: covered_ps {covered} exceeds horizon_ps {horizon}"
            ));
        }
        if saturated > covered {
            errors.push(format!(
                "{ctx}: saturated_ps {saturated} exceeds covered_ps {covered}"
            ));
        }
        if longest > saturated {
            errors.push(format!(
                "{ctx}: longest_saturated_ps {longest} exceeds saturated_ps {saturated}"
            ));
        }
        if let Some(frac) = c.get("saturated_frac").and_then(Value::as_f64) {
            let expect = if horizon == 0 {
                0.0
            } else {
                saturated as f64 / horizon as f64
            };
            if (frac - expect).abs() > 1e-9 * (1.0 + expect) {
                errors.push(format!(
                    "{ctx}: saturated_frac {frac} inconsistent with saturated/horizon {expect}"
                ));
            }
        } else {
            errors.push(format!("{ctx}: missing saturated_frac"));
        }
        let num = c.get("num").and_then(Value::as_u64);
        let den = c.get("den").and_then(Value::as_u64);
        match (num, den) {
            (Some(n), Some(d)) => {
                let expect = if d == 0 { 0.0 } else { n as f64 / d as f64 };
                if (mean - expect).abs() > 1e-9 * (1.0 + expect) {
                    errors.push(format!(
                        "{ctx}: mean {mean} inconsistent with num/den {expect}"
                    ));
                }
            }
            _ => errors.push(format!("{ctx}: missing num/den accumulators")),
        }
    }
    list.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::PointTrace;

    const W: u64 = 1_000; // 1 ns windows for readable tests

    fn trace(index: usize, tracks: Vec<CounterTrack>) -> PointTrace {
        PointTrace {
            index,
            tracks,
            ..PointTrace::default()
        }
    }

    #[test]
    fn busy_intervals_clip_onto_windows() {
        let mut r = CounterRecorder::new(W);
        r.busy("link", 500, 2_500); // touches windows 0, 1, 2
        r.busy("link", 2_500, 2_600);
        let tracks = r.finish();
        assert_eq!(tracks.len(), 1);
        let t = &tracks[0];
        assert_eq!(t.kind, CounterKind::Busy);
        assert_eq!(t.windows, vec![(0, 500, 0), (1, 1_000, 0), (2, 600, 0)]);
        assert_eq!(t.window_value(0, W), 0.5);
        assert_eq!(t.window_value(1, W), 1.0);
    }

    #[test]
    fn overlapping_level_segments_sum_to_queue_depth() {
        let mut r = CounterRecorder::new(W);
        // Two requests waiting simultaneously over window 0.
        r.level("q", 0, 1_000, 1);
        r.level("q", 500, 1_500, 1);
        let tracks = r.finish();
        assert_eq!(tracks[0].windows, vec![(0, 1_500, 0), (1, 500, 0)]);
        assert_eq!(tracks[0].window_value(0, W), 1.5);
    }

    #[test]
    fn ratio_windows_accumulate_events() {
        let mut r = CounterRecorder::new(W);
        r.ratio("miss", 100, 1, 1);
        r.ratio("miss", 200, 0, 1);
        r.ratio("miss", 1_100, 1, 1);
        let tracks = r.finish();
        assert_eq!(tracks[0].windows, vec![(0, 1, 2), (1, 1, 1)]);
        assert_eq!(tracks[0].window_value(0, W), 0.5);
        assert_eq!(tracks[0].window_value(1, W), 1.0);
    }

    #[test]
    fn zero_length_sample_registers_an_idle_track() {
        let mut r = CounterRecorder::new(W);
        r.busy("link", 700, 700);
        let tracks = r.finish();
        assert_eq!(tracks.len(), 1);
        assert!(tracks[0].windows.is_empty());
    }

    #[test]
    fn recorder_output_is_arrival_order_independent() {
        let samples: Vec<(u64, u64)> = vec![(0, 300), (2_900, 3_100), (500, 1_700), (2_000, 2_200)];
        let mut fwd = CounterRecorder::new(W);
        let mut rev = CounterRecorder::new(W);
        for &(s, e) in &samples {
            fwd.busy("link", s, e);
            fwd.level("q", s, e, 2);
        }
        for &(s, e) in samples.iter().rev() {
            rev.level("q", s, e, 2);
            rev.busy("link", s, e);
        }
        assert_eq!(fwd.finish(), rev.finish());
    }

    #[test]
    fn fold_reports_mean_peak_and_saturation() {
        let mut r = CounterRecorder::new(W);
        // Windows 0,1 fully busy; window 2 idle; window 3 fully busy;
        // window 4 at 50%.
        r.busy("link", 0, 2_000);
        r.busy("link", 3_000, 4_000);
        r.busy("link", 4_000, 4_500);
        let u = SweepUtilization::fold("sw", 1, &[trace(0, r.finish())], W, 0.9);
        assert_eq!(u.per_point.len(), 1);
        let p = &u.per_point[0];
        assert_eq!(p.horizon_ps, 5_000);
        let link = &p.counters[0];
        assert_eq!(link.num, 3_500);
        assert_eq!(link.den, 5_000);
        assert_eq!(link.mean, 0.7);
        assert_eq!(link.peak, 1.0);
        // Three saturated windows, but the idle window 2 breaks the run.
        assert_eq!(link.saturated_ps, 3_000);
        assert_eq!(link.longest_saturated_ps, 2_000);
        assert_eq!(link.saturated_frac, 0.6);
        // The merged entry of a single point equals that point.
        assert_eq!(u.merged, p.counters);
    }

    #[test]
    fn bounded_level_saturates_against_its_bound() {
        let mut r = CounterRecorder::new(W);
        r.bound("credits", 4);
        r.level("credits", 0, 1_000, 4); // at capacity: 4 > 0.9·4
        r.level("credits", 1_000, 2_000, 2); // half: not saturated
        let u = SweepUtilization::fold("sw", 1, &[trace(0, r.finish())], W, 0.9);
        let c = &u.per_point[0].counters[0];
        assert_eq!(c.bound, Some(4));
        assert_eq!(c.mean, 3.0);
        assert_eq!(c.peak, 4.0);
        assert_eq!(c.saturated_ps, 1_000);
    }

    #[test]
    fn unbounded_level_never_saturates() {
        let mut r = CounterRecorder::new(W);
        r.level("q", 0, 1_000, 50);
        let u = SweepUtilization::fold("sw", 1, &[trace(0, r.finish())], W, 0.9);
        let c = &u.per_point[0].counters[0];
        assert_eq!(c.peak, 50.0);
        assert_eq!(c.saturated_ps, 0);
    }

    fn two_point_tracks() -> (Vec<CounterTrack>, Vec<CounterTrack>) {
        let mut a = CounterRecorder::new(W);
        a.busy("link", 0, 1_000);
        a.ratio("miss", 100, 1, 2);
        let mut b = CounterRecorder::new(W);
        b.busy("link", 0, 500);
        b.busy("dram", 0, 250);
        b.ratio("miss", 100, 1, 4);
        (a.finish(), b.finish())
    }

    #[test]
    fn fold_is_point_order_independent() {
        let (ta, tb) = two_point_tracks();
        let fwd = SweepUtilization::fold(
            "sw",
            2,
            &[trace(0, ta.clone()), trace(1, tb.clone())],
            W,
            0.9,
        );
        let rev = SweepUtilization::fold("sw", 2, &[trace(1, tb), trace(0, ta)], W, 0.9);
        assert_eq!(fwd, rev);
        assert_eq!(
            serde_json::to_string(&fwd.to_value()).unwrap(),
            serde_json::to_string(&rev.to_value()).unwrap()
        );
    }

    #[test]
    fn merged_weights_points_by_horizon() {
        let (ta, tb) = two_point_tracks();
        let u = SweepUtilization::fold("sw", 2, &[trace(0, ta), trace(1, tb)], W, 0.9);
        let link = u.merged_counter("link").expect("link merged");
        // Point 0: 1000/1000 busy; point 1: 500/1000. Merged: 1500/2000.
        assert_eq!(link.num, 1_500);
        assert_eq!(link.den, 2_000);
        assert_eq!(link.mean, 0.75);
        let miss = u.merged_counter("miss").expect("miss merged");
        assert_eq!(miss.mean, 2.0 / 6.0);
        // dram only appears in point 1, so only its horizon contributes.
        let dram = u.merged_counter("dram").expect("dram merged");
        assert_eq!(dram.horizon_ps, 1_000);
        assert_eq!(dram.mean, 0.25);
    }

    #[test]
    fn merged_bound_is_the_largest_capacity() {
        // The window ablation runs a different credit cap per point; the
        // merged report must carry the largest so its peak stays within.
        let mut a = CounterRecorder::new(W);
        a.bound("credits", 4);
        a.level("credits", 0, 1_000, 4);
        let mut b = CounterRecorder::new(W);
        b.bound("credits", 16);
        b.level("credits", 0, 1_000, 16);
        let u = SweepUtilization::fold(
            "sw",
            2,
            &[trace(0, a.finish()), trace(1, b.finish())],
            W,
            0.9,
        );
        let c = u.merged_counter("credits").expect("credits merged");
        assert_eq!(c.bound, Some(16));
        assert_eq!(c.peak, 16.0);
        assert!(c.peak <= c.bound.unwrap() as f64);
    }

    #[test]
    fn no_samples_fold_to_all_zero() {
        let mut r = CounterRecorder::new(W);
        r.busy("link", 42, 42); // registers, records nothing
        let u = SweepUtilization::fold("sw", 1, &[trace(0, r.finish())], W, 0.9);
        let c = &u.per_point[0].counters[0];
        assert_eq!(u.per_point[0].horizon_ps, 0);
        assert_eq!((c.mean, c.peak), (0.0, 0.0));
        assert_eq!(c.saturated_ps, 0);
        assert_eq!(c.saturated_frac, 0.0);
    }

    #[test]
    fn utilization_json_round_trips_the_checker() {
        let (ta, tb) = two_point_tracks();
        let u = SweepUtilization::fold("sw", 2, &[trace(0, ta), trace(1, tb)], W, 0.9);
        let root = Value::Object(vec![
            ("schema".into(), Value::U64(1)),
            ("sweeps".into(), Value::Array(vec![u.to_value()])),
        ]);
        let text = serde_json::to_string_pretty(&root).unwrap();
        let stats = check_utilization(&text).expect("valid utilization.json");
        assert_eq!(stats.sweeps, 1);
        assert_eq!(stats.points, 2);
        assert!(stats.counters > 0);
    }

    #[test]
    fn checker_collects_every_failure() {
        let text = r#"{
            "schema": 1,
            "sweeps": [{
                "sweep": "sw", "window_ps": 1000, "threshold": 0.9,
                "points": 1,
                "per_point": [{
                    "index": 0, "horizon_ps": 2000,
                    "counters": [{
                        "name": "link", "kind": "busy", "bound": null,
                        "windows": 2, "covered_ps": 3000, "horizon_ps": 2000,
                        "num": 1500, "den": 2000,
                        "mean": 1.5, "peak": 2.0,
                        "saturated_ps": 4000, "saturated_frac": 2.0,
                        "longest_saturated_ps": 5000
                    }]
                }],
                "merged": []
            }]
        }"#;
        let errors = check_utilization(text).unwrap_err();
        // mean > 1, peak > 1, covered > horizon, saturated > covered,
        // longest > saturated, mean ≠ num/den: every one reported.
        assert!(errors.len() >= 5, "got {errors:?}");
        assert!(errors.iter().any(|e| e.contains("mean 1.5 outside")));
        assert!(errors.iter().any(|e| e.contains("covered_ps")));
        assert!(errors.iter().any(|e| e.contains("longest_saturated_ps")));
    }

    #[test]
    fn checker_rejects_bound_violations() {
        let text = r#"{
            "schema": 1,
            "sweeps": [{
                "sweep": "sw", "window_ps": 1000, "threshold": 0.9,
                "points": 1,
                "per_point": [],
                "merged": [{
                    "name": "credits", "kind": "level", "bound": 4,
                    "windows": 1, "covered_ps": 1000, "horizon_ps": 1000,
                    "num": 5000, "den": 1000,
                    "mean": 5.0, "peak": 5.0,
                    "saturated_ps": 1000, "saturated_frac": 1.0,
                    "longest_saturated_ps": 1000
                }]
            }]
        }"#;
        let errors = check_utilization(text).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("peak 5 exceeds bound 4")));
        assert!(errors.iter().any(|e| e.contains("mean 5 exceeds bound 4")));
    }
}
