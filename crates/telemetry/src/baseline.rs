//! Per-stage regression baselines: record the merged stage means of a
//! pinned configuration, commit the file, and gate CI on drift.
//!
//! `repro --baseline-record` snapshots every sweep's merged stage means
//! (from the attribution fold) into a JSON baseline, along with
//! per-workload-phase bands inside each stage;
//! `repro --baseline-check` re-runs the same pinned configuration and
//! compares against the committed file with per-stage *and* per-phase
//! tolerance bands, exiting nonzero and naming the offending stage (and
//! phase, when the drift is phase-confined) on drift. Because
//! the simulator is deterministic, a clean tree reproduces the baseline
//! exactly — the tolerance band exists so that *intentional* model
//! changes smaller than the band don't force a re-record, while
//! anything larger fails loudly instead of silently shifting every
//! downstream figure.
//!
//! The baseline pins the command it was recorded from (e.g.
//! `validate --profile quick`); checking under a different command is
//! refused rather than compared apples-to-oranges.

use crate::attribution::SweepAttribution;
use crate::counters::SweepUtilization;
use serde::{Deserialize, Serialize};

/// Bump when the baseline file format changes.
/// Schema 2 added the per-stage `p999_ps` tail band.
pub const BASELINE_SCHEMA: u64 = 2;

/// Default relative tolerance band on stage means and counts (±2%).
pub const DEFAULT_REL_TOL: f64 = 0.02;

/// One workload phase's pinned expectation within a stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselinePhase {
    /// Collapsed phase label (`copy`, `bfs_level_3`, `unphased`).
    pub phase: String,
    pub mean_ps: f64,
    pub count: u64,
    /// Relative tolerance band for this phase (fraction, not percent).
    pub rel_tol: f64,
}

/// One stage's pinned expectation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineStage {
    pub stage: String,
    pub mean_ps: f64,
    pub count: u64,
    /// Pinned p999 of the stage (histogram bucket lower bound, ps). A
    /// fattened tail with an unmoved mean — exactly what the open-loop
    /// serving campaign measures — drifts here and nowhere else.
    pub p999_ps: u64,
    /// Relative tolerance band for this stage (fraction, not percent).
    pub rel_tol: f64,
    /// Per-phase bands, label-sorted: a drift confined to one workload
    /// phase (one BFS level, the KV warmup) is caught and named even
    /// when the stage-level mean washes it out.
    pub phases: Vec<BaselinePhase>,
}

/// One utilization counter's pinned expectation: the time-weighted mean
/// of the sweep-merged counter track (from the counter fold).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineCounter {
    /// Counter-track name (`net.link_busy`, `credit.occupancy`, ...).
    pub name: String,
    /// Merged time-weighted mean.
    pub mean: f64,
    /// Relative tolerance band (fraction, not percent).
    pub rel_tol: f64,
}

/// One sweep's pinned stage set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BaselineSweep {
    pub sweep: String,
    pub stages: Vec<BaselineStage>,
    /// Pinned utilization-counter means, name-sorted. Drift in one of
    /// these is reported with the stage named `counter <name>`.
    pub counters: Vec<BaselineCounter>,
}

/// A committed per-stage regression baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    pub schema: u64,
    /// The pinned `repro` invocation this baseline was recorded from.
    pub command: String,
    pub default_rel_tol: f64,
    pub sweeps: Vec<BaselineSweep>,
}

impl Baseline {
    /// Snapshot the merged stage means of every folded sweep, plus the
    /// merged time-weighted utilization mean of every counter track.
    pub fn record(
        command: &str,
        atts: &[SweepAttribution],
        utils: &[SweepUtilization],
        rel_tol: f64,
    ) -> Baseline {
        let mut sweeps: Vec<BaselineSweep> = atts
            .iter()
            .map(|att| BaselineSweep {
                sweep: att.sweep.clone(),
                counters: {
                    let mut counters: Vec<BaselineCounter> = utils
                        .iter()
                        .filter(|u| u.sweep == att.sweep)
                        .flat_map(|u| &u.merged)
                        .map(|c| BaselineCounter {
                            name: c.name.clone(),
                            mean: c.mean,
                            rel_tol,
                        })
                        .collect();
                    counters.sort_by(|a, b| a.name.cmp(&b.name));
                    counters
                },
                stages: {
                    let mut stages: Vec<BaselineStage> = att
                        .merged
                        .slices()
                        .map(|s| BaselineStage {
                            stage: s.stage.clone(),
                            mean_ps: s.mean_ps,
                            count: s.count,
                            p999_ps: s.p999_ps,
                            rel_tol,
                            phases: {
                                let mut phases: Vec<BaselinePhase> = s
                                    .phases
                                    .iter()
                                    .map(|p| BaselinePhase {
                                        phase: p.label(),
                                        mean_ps: p.mean_ps,
                                        count: p.count,
                                        rel_tol,
                                    })
                                    .collect();
                                phases.sort_by(|a, b| a.phase.cmp(&b.phase));
                                phases
                            },
                        })
                        .collect();
                    stages.sort_by(|a, b| a.stage.cmp(&b.stage));
                    stages
                },
            })
            .collect();
        sweeps.sort_by(|a, b| a.sweep.cmp(&b.sweep));
        Baseline {
            schema: BASELINE_SCHEMA,
            command: command.to_string(),
            default_rel_tol: rel_tol,
            sweeps,
        }
    }

    /// Compare folded sweeps against this baseline. Empty result means
    /// every pinned stage, phase, *and utilization counter* is within
    /// its tolerance band and nothing appeared or disappeared.
    pub fn check(&self, atts: &[SweepAttribution], utils: &[SweepUtilization]) -> Vec<Drift> {
        let mut drifts = Vec::new();
        for base in &self.sweeps {
            let Some(att) = atts.iter().find(|a| a.sweep == base.sweep) else {
                drifts.push(Drift {
                    sweep: base.sweep.clone(),
                    stage: "*".into(),
                    phase: None,
                    kind: DriftKind::MissingSweep,
                });
                continue;
            };
            for bs in &base.stages {
                let Some(slice) = att.merged.slice(&bs.stage) else {
                    drifts.push(Drift {
                        sweep: base.sweep.clone(),
                        stage: bs.stage.clone(),
                        phase: None,
                        kind: DriftKind::MissingStage {
                            baseline_ps: bs.mean_ps,
                        },
                    });
                    continue;
                };
                drifts.extend(band_drifts(
                    &base.sweep,
                    &bs.stage,
                    None,
                    bs.mean_ps,
                    bs.count,
                    bs.rel_tol,
                    slice.mean_ps,
                    slice.count,
                ));
                // Tail band: a p999 moving while the mean holds is the
                // tail-column regression the serving campaign gates on.
                let tail_delta = rel_delta(slice.p999_ps as f64, bs.p999_ps as f64);
                if tail_delta > bs.rel_tol {
                    drifts.push(Drift {
                        sweep: base.sweep.clone(),
                        stage: bs.stage.clone(),
                        phase: None,
                        kind: DriftKind::TailDrift {
                            baseline_ps: bs.p999_ps,
                            actual_ps: slice.p999_ps,
                            rel_delta: tail_delta,
                            rel_tol: bs.rel_tol,
                        },
                    });
                }
                // Per-phase bands within the stage.
                for bp in &bs.phases {
                    let Some(ph) = slice.phase(&bp.phase) else {
                        drifts.push(Drift {
                            sweep: base.sweep.clone(),
                            stage: bs.stage.clone(),
                            phase: Some(bp.phase.clone()),
                            kind: DriftKind::MissingStage {
                                baseline_ps: bp.mean_ps,
                            },
                        });
                        continue;
                    };
                    drifts.extend(band_drifts(
                        &base.sweep,
                        &bs.stage,
                        Some(&bp.phase),
                        bp.mean_ps,
                        bp.count,
                        bp.rel_tol,
                        ph.mean_ps,
                        ph.count,
                    ));
                }
                for ph in &slice.phases {
                    if !bs.phases.iter().any(|bp| bp.phase == ph.label()) {
                        drifts.push(Drift {
                            sweep: base.sweep.clone(),
                            stage: bs.stage.clone(),
                            phase: Some(ph.label()),
                            kind: DriftKind::NewStage {
                                actual_ps: ph.mean_ps,
                            },
                        });
                    }
                }
            }
            // A stage the baseline has never seen is drift too — the
            // model grew a probe; re-record to bless it.
            for slice in att.merged.slices() {
                if !base.stages.iter().any(|bs| bs.stage == slice.stage) {
                    drifts.push(Drift {
                        sweep: base.sweep.clone(),
                        stage: slice.stage.clone(),
                        phase: None,
                        kind: DriftKind::NewStage {
                            actual_ps: slice.mean_ps,
                        },
                    });
                }
            }
            // Utilization-counter bands: the merged time-weighted mean
            // of each pinned counter track, drift named `counter <name>`.
            let util = utils.iter().find(|u| u.sweep == base.sweep);
            for bc in &base.counters {
                let Some(actual) = util.and_then(|u| u.merged_counter(&bc.name)) else {
                    drifts.push(Drift {
                        sweep: base.sweep.clone(),
                        stage: format!("counter {}", bc.name),
                        phase: None,
                        kind: DriftKind::MissingStage {
                            baseline_ps: bc.mean,
                        },
                    });
                    continue;
                };
                let delta = rel_delta(actual.mean, bc.mean);
                if delta > bc.rel_tol {
                    drifts.push(Drift {
                        sweep: base.sweep.clone(),
                        stage: format!("counter {}", bc.name),
                        phase: None,
                        kind: DriftKind::MeanDrift {
                            baseline_ps: bc.mean,
                            actual_ps: actual.mean,
                            rel_delta: delta,
                            rel_tol: bc.rel_tol,
                        },
                    });
                }
            }
            if let Some(util) = util {
                for c in &util.merged {
                    if !base.counters.iter().any(|bc| bc.name == c.name) {
                        drifts.push(Drift {
                            sweep: base.sweep.clone(),
                            stage: format!("counter {}", c.name),
                            phase: None,
                            kind: DriftKind::NewStage { actual_ps: c.mean },
                        });
                    }
                }
            }
        }
        drifts
    }

    /// Total pinned stages across all sweeps.
    pub fn stage_count(&self) -> usize {
        self.sweeps.iter().map(|s| s.stages.len()).sum()
    }

    /// Total pinned per-phase bands across all sweeps and stages.
    pub fn phase_count(&self) -> usize {
        self.sweeps
            .iter()
            .flat_map(|s| &s.stages)
            .map(|st| st.phases.len())
            .sum()
    }

    /// Total pinned utilization-counter bands across all sweeps.
    pub fn counter_count(&self) -> usize {
        self.sweeps.iter().map(|s| s.counters.len()).sum()
    }
}

/// Mean/count band comparison shared by the stage- and phase-level
/// checks; `phase: None` labels a stage-level drift.
#[allow(clippy::too_many_arguments)]
fn band_drifts(
    sweep: &str,
    stage: &str,
    phase: Option<&str>,
    base_mean: f64,
    base_count: u64,
    rel_tol: f64,
    actual_mean: f64,
    actual_count: u64,
) -> Vec<Drift> {
    let mut drifts = Vec::new();
    let mean_delta = rel_delta(actual_mean, base_mean);
    if mean_delta > rel_tol {
        drifts.push(Drift {
            sweep: sweep.to_string(),
            stage: stage.to_string(),
            phase: phase.map(str::to_string),
            kind: DriftKind::MeanDrift {
                baseline_ps: base_mean,
                actual_ps: actual_mean,
                rel_delta: mean_delta,
                rel_tol,
            },
        });
    }
    let count_delta = rel_delta(actual_count as f64, base_count as f64);
    if count_delta > rel_tol {
        drifts.push(Drift {
            sweep: sweep.to_string(),
            stage: stage.to_string(),
            phase: phase.map(str::to_string),
            kind: DriftKind::CountDrift {
                baseline: base_count,
                actual: actual_count,
                rel_delta: count_delta,
                rel_tol,
            },
        });
    }
    drifts
}

/// Relative deviation of `actual` from `baseline`, with a 1 ps floor on
/// the denominator so all-zero stages compare cleanly.
fn rel_delta(actual: f64, baseline: f64) -> f64 {
    (actual - baseline).abs() / baseline.abs().max(1.0)
}

/// One detected regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Drift {
    pub sweep: String,
    pub stage: String,
    /// `Some(label)` when the drift is confined to one workload phase
    /// of the stage; `None` for stage-level drift.
    pub phase: Option<String>,
    pub kind: DriftKind,
}

#[derive(Clone, Debug, PartialEq)]
pub enum DriftKind {
    /// The checked run never executed the pinned sweep.
    MissingSweep,
    /// The pinned stage recorded nothing.
    MissingStage { baseline_ps: f64 },
    /// A stage recorded that the baseline has never seen.
    NewStage { actual_ps: f64 },
    MeanDrift {
        baseline_ps: f64,
        actual_ps: f64,
        rel_delta: f64,
        rel_tol: f64,
    },
    CountDrift {
        baseline: u64,
        actual: u64,
        rel_delta: f64,
        rel_tol: f64,
    },
    /// The stage's p999 left its band while (typically) the mean held:
    /// the tail fattened or thinned.
    TailDrift {
        baseline_ps: u64,
        actual_ps: u64,
        rel_delta: f64,
        rel_tol: f64,
    },
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} / {}", self.sweep, self.stage)?;
        if let Some(phase) = &self.phase {
            write!(f, " [phase {phase}]")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            DriftKind::MissingSweep => write!(f, "sweep missing from the checked run"),
            DriftKind::MissingStage { baseline_ps } => write!(
                f,
                "stage recorded nothing (baseline mean {baseline_ps:.1} ps)"
            ),
            DriftKind::NewStage { actual_ps } => write!(
                f,
                "new stage not in the baseline (mean {actual_ps:.1} ps) — re-record to bless"
            ),
            DriftKind::MeanDrift {
                baseline_ps,
                actual_ps,
                rel_delta,
                rel_tol,
            } => write!(
                f,
                "mean {actual_ps:.1} ps vs baseline {baseline_ps:.1} ps \
                 ({:+.2}%, tolerance ±{:.2}%)",
                rel_delta * 100.0 * (actual_ps - baseline_ps).signum(),
                rel_tol * 100.0
            ),
            DriftKind::CountDrift {
                baseline,
                actual,
                rel_delta,
                rel_tol,
            } => write!(
                f,
                "count {actual} vs baseline {baseline} ({:+.2}%, tolerance ±{:.2}%)",
                rel_delta * 100.0 * if actual >= baseline { 1.0 } else { -1.0 },
                rel_tol * 100.0
            ),
            DriftKind::TailDrift {
                baseline_ps,
                actual_ps,
                rel_delta,
                rel_tol,
            } => write!(
                f,
                "p999 {actual_ps} ps vs baseline {baseline_ps} ps \
                 ({:+.2}%, tolerance ±{:.2}%)",
                rel_delta * 100.0 * if actual_ps >= baseline_ps { 1.0 } else { -1.0 },
                rel_tol * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::READ_ANATOMY;
    use crate::recorder::{PointTrace, Recorder, TraceRecorder};
    use thymesim_sim::Dur;

    fn point(index: usize, base: u64) -> PointTrace {
        let mut r = TraceRecorder::new(index, 10);
        for (i, (name, _)) in READ_ANATOMY.iter().enumerate() {
            r.latency(name, Dur::ns(base * (i as u64 + 1)));
        }
        r.finish()
    }

    fn folded(base: u64) -> Vec<SweepAttribution> {
        vec![SweepAttribution::fold(
            "sw",
            2,
            &[point(0, base), point(1, base + 1)],
            &[],
        )]
    }

    #[test]
    fn identical_run_is_within_tolerance() {
        let atts = folded(10);
        let b = Baseline::record("validate --profile quick", &atts, &[], DEFAULT_REL_TOL);
        assert_eq!(b.schema, BASELINE_SCHEMA);
        assert_eq!(b.stage_count(), 6);
        // Recording without markers still pins one band per stage: the
        // implicit `unphased` phase.
        assert_eq!(b.phase_count(), 6);
        assert!(b.check(&atts, &[]).is_empty());
    }

    fn phased_point(index: usize, copy_ns: u64, scale_ns: u64) -> PointTrace {
        let mut r = TraceRecorder::new(index, 10);
        r.phase_begin("copy", None);
        r.latency("fabric.gate_wait", Dur::ns(copy_ns));
        r.phase_begin("scale", None);
        r.latency("fabric.gate_wait", Dur::ns(scale_ns));
        r.finish()
    }

    #[test]
    fn phase_confined_drift_is_named() {
        let base = vec![SweepAttribution::fold(
            "sw",
            1,
            &[phased_point(0, 100, 100)],
            &[],
        )];
        let b = Baseline::record("cmd", &base, &[], DEFAULT_REL_TOL);
        assert_eq!(b.phase_count(), 2);
        assert!(b.check(&base, &[]).is_empty());
        // Shift time from copy into scale: the stage-level mean is
        // unchanged, so only the per-phase bands can catch it.
        let atts = vec![SweepAttribution::fold(
            "sw",
            1,
            &[phased_point(0, 50, 150)],
            &[],
        )];
        let drifts = b.check(&atts, &[]);
        assert!(!drifts.is_empty(), "stage mean alone would pass");
        // The stage-level mean/count bands stay silent (only the p999
        // band may fire at stage level — the tail genuinely fattened);
        // the shift itself is caught and named per phase.
        assert!(drifts
            .iter()
            .filter(|d| d.phase.is_none())
            .all(|d| matches!(d.kind, DriftKind::TailDrift { .. })));
        let phased = drifts
            .iter()
            .find(|d| d.phase.is_some())
            .expect("per-phase");
        let msg = phased.to_string();
        assert!(
            msg.contains("[phase copy]") || msg.contains("[phase scale]"),
            "phase must be named: {msg}"
        );
    }

    #[test]
    fn round_trips_through_json() {
        let b = Baseline::record(
            "validate --profile quick",
            &folded(10),
            &[],
            DEFAULT_REL_TOL,
        );
        let text = serde_json::to_string_pretty(&b).unwrap();
        let back: Baseline = serde_json::from_str(&text).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn drifted_mean_is_named() {
        let b = Baseline::record("cmd", &folded(10), &[], DEFAULT_REL_TOL);
        // 50% larger stage latencies everywhere.
        let drifts = b.check(&folded(15), &[]);
        assert!(!drifts.is_empty());
        assert!(drifts.iter().any(|d| d.stage == "fabric.gate_wait"));
        let msg = drifts[0].to_string();
        assert!(msg.contains("tolerance"), "humane message: {msg}");
        // Counts were unchanged, so the drifts are mean drifts plus the
        // tails that moved with them — never count drifts.
        assert!(drifts.iter().all(|d| matches!(
            d.kind,
            DriftKind::MeanDrift { .. } | DriftKind::TailDrift { .. }
        )));
    }

    #[test]
    fn missing_and_new_stages_are_drift() {
        let atts = folded(10);
        let mut b = Baseline::record("cmd", &atts, &[], DEFAULT_REL_TOL);
        b.sweeps[0].stages.push(BaselineStage {
            stage: "ghost.stage".into(),
            mean_ps: 5.0,
            count: 1,
            p999_ps: 5,
            rel_tol: DEFAULT_REL_TOL,
            phases: Vec::new(),
        });
        let drifts = b.check(&atts, &[]);
        assert!(drifts
            .iter()
            .any(|d| d.stage == "ghost.stage" && matches!(d.kind, DriftKind::MissingStage { .. })));

        let b = Baseline::record("cmd", &atts, &[], DEFAULT_REL_TOL);
        let mut grown = atts.clone();
        // Simulate a new probe appearing.
        let mut r = TraceRecorder::new(0, 10);
        r.latency("brand.new", Dur::ns(3));
        grown[0] = SweepAttribution::fold("sw", 2, &[point(0, 10), point(1, 11), r.finish()], &[]);
        let drifts = b.check(&grown, &[]);
        assert!(drifts
            .iter()
            .any(|d| d.stage == "brand.new" && matches!(d.kind, DriftKind::NewStage { .. })));
    }

    #[test]
    fn tail_drift_is_caught_when_the_mean_holds() {
        // Two observations of 10 ns: mean 10 ns, p999 = max = 10 ns.
        let mk = |a_ns: u64, b_ns: u64| {
            let mut r = TraceRecorder::new(0, 10);
            r.latency("fabric.gate_wait", Dur::ns(a_ns));
            r.latency("fabric.gate_wait", Dur::ns(b_ns));
            vec![SweepAttribution::fold("sw", 1, &[r.finish()], &[])]
        };
        let b = Baseline::record("cmd", &mk(10, 10), &[], DEFAULT_REL_TOL);
        assert!(b.check(&mk(10, 10), &[]).is_empty());
        // 5 + 15 ns: same mean and count, but the tail fattened 50%.
        let drifts = b.check(&mk(5, 15), &[]);
        assert!(
            drifts
                .iter()
                .any(|d| matches!(d.kind, DriftKind::TailDrift { .. })),
            "only the p999 band can catch this: {drifts:?}"
        );
        assert!(
            !drifts
                .iter()
                .any(|d| matches!(d.kind, DriftKind::MeanDrift { .. }) && d.phase.is_none()),
            "the stage mean genuinely held: {drifts:?}"
        );
        let msg = drifts
            .iter()
            .find(|d| matches!(d.kind, DriftKind::TailDrift { .. }))
            .unwrap()
            .to_string();
        assert!(msg.contains("p999"), "humane message: {msg}");
    }

    #[test]
    fn missing_sweep_is_drift() {
        let b = Baseline::record("cmd", &folded(10), &[], DEFAULT_REL_TOL);
        let drifts = b.check(&[], &[]);
        assert_eq!(drifts.len(), 1);
        assert!(matches!(drifts[0].kind, DriftKind::MissingSweep));
    }

    #[test]
    fn zero_mean_stages_compare_cleanly() {
        assert_eq!(rel_delta(0.0, 0.0), 0.0);
        assert!(rel_delta(0.5, 0.0) <= 0.5, "1 ps floor keeps this finite");
    }

    fn folded_utils(busy_ps: u64) -> Vec<SweepUtilization> {
        use thymesim_sim::Time;
        let mut r = TraceRecorder::with_window(0, 10, 1_000);
        r.counter_busy("net.link_busy", Time::ZERO, Time::ps(busy_ps));
        let mut r1 = TraceRecorder::with_window(1, 10, 1_000);
        r1.counter_busy("net.link_busy", Time::ZERO, Time::ps(busy_ps));
        vec![SweepUtilization::fold(
            "sw",
            2,
            &[r.finish(), r1.finish()],
            1_000,
            0.9,
        )]
    }

    #[test]
    fn counter_drift_is_named() {
        let atts = folded(10);
        let utils = folded_utils(700);
        let b = Baseline::record("cmd", &atts, &utils, DEFAULT_REL_TOL);
        assert_eq!(b.counter_count(), 1);
        assert!(b.check(&atts, &utils).is_empty());
        // Same stages, drifted counter mean: only the counter band can
        // catch it, and the drift names the counter.
        let drifts = b.check(&atts, &folded_utils(300));
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].stage, "counter net.link_busy");
        assert!(matches!(drifts[0].kind, DriftKind::MeanDrift { .. }));
        // A counter the baseline never saw is drift too.
        let mut stripped = b.clone();
        stripped.sweeps[0].counters.clear();
        let drifts = stripped.check(&atts, &utils);
        assert!(drifts
            .iter()
            .any(|d| d.stage == "counter net.link_busy"
                && matches!(d.kind, DriftKind::NewStage { .. })));
        // ...and a pinned counter that recorded nothing is missing.
        let drifts = b.check(&atts, &[]);
        assert!(drifts.iter().any(|d| d.stage == "counter net.link_busy"
            && matches!(d.kind, DriftKind::MissingStage { .. })));
    }

    #[test]
    fn counter_bands_round_trip_through_json() {
        let b = Baseline::record("cmd", &folded(10), &folded_utils(500), DEFAULT_REL_TOL);
        let text = serde_json::to_string_pretty(&b).unwrap();
        let back: Baseline = serde_json::from_str(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.counter_count(), 1);
    }
}
