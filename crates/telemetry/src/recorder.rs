//! The [`Recorder`] trait and its two implementations: the no-op default
//! (every method is an empty body, so an uninstrumented run pays nothing)
//! and [`TraceRecorder`], which buffers timeline events and aggregates
//! per-stage latency histograms for one sweep point.

use crate::counters::{CounterRecorder, CounterTrack, DEFAULT_WINDOW_PS};
use thymesim_sim::{Dur, Histogram, Time};

/// Identity of a workload phase: a static name plus an optional ordinal
/// (BFS level, SSSP bucket, ...). Phases are declared by workloads via
/// [`Recorder::phase_begin`] / [`Recorder::phase_end`]; every latency
/// observation is attributed to the phase current at record time, so
/// per-phase sub-histograms partition each stage histogram *exactly* —
/// an observation lands in one phase bucket and the stage total, never
/// zero or two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Phase {
    pub name: &'static str,
    /// Ordinal for repeated phases (`bfs.level` 0, 1, ...); `None` for
    /// singleton phases (`copy`, `kv.steady`).
    pub index: Option<u64>,
}

impl Phase {
    /// The implicit phase of observations recorded outside any marker
    /// (attach, init, drain). A trace with no phase markers at all
    /// therefore folds into this single phase.
    pub const UNPHASED: Phase = Phase {
        name: "unphased",
        index: None,
    };

    /// Collapsed-frame-safe label: non-alphanumerics flatten to `_`
    /// (same rule as sweep names on the filesystem) and the ordinal
    /// appends as `_<n>` — `bfs.level` 3 becomes `bfs_level_3`.
    pub fn label(&self) -> String {
        let mut s: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if let Some(i) = self.index {
            s.push('_');
            s.push_str(&i.to_string());
        }
        s
    }
}

/// One timeline event, wholly in virtual (picosecond) time. Wall-clock
/// never appears here — that is what makes traces byte-identical across
/// `--jobs` settings and reruns.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A completed interval on a named track (Chrome `ph: "X"`).
    Span {
        track: &'static str,
        name: &'static str,
        start_ps: u64,
        end_ps: u64,
        /// Optional single argument (e.g. `("rep", 3)`).
        arg: Option<(&'static str, u64)>,
    },
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant {
        track: &'static str,
        name: &'static str,
        at_ps: u64,
    },
    /// A sampled counter value (Chrome `ph: "C"`).
    Counter {
        name: &'static str,
        at_ps: u64,
        value: f64,
    },
}

impl TraceEvent {
    /// Timestamp used for ordering events in the exported trace.
    pub fn ts_ps(&self) -> u64 {
        match self {
            TraceEvent::Span { start_ps, .. } => *start_ps,
            TraceEvent::Instant { at_ps, .. } => *at_ps,
            TraceEvent::Counter { at_ps, .. } => *at_ps,
        }
    }
}

/// Probe-facing interface. Every method has a no-op default body, so a
/// type opting into only some probes stays zero-cost for the rest, and
/// [`NoopRecorder`] is simply the trait with nothing overridden.
///
/// Probes must be *purely observational*: a recorder never hands data
/// back to the simulation, so enabling it cannot change any result.
pub trait Recorder {
    /// A completed interval `[start, end]` on `track`.
    fn span(&mut self, track: &'static str, name: &'static str, start: Time, end: Time) {
        let _ = (track, name, start, end);
    }

    /// Like [`Recorder::span`], with one `key = value` argument.
    fn span_arg(
        &mut self,
        track: &'static str,
        name: &'static str,
        start: Time,
        end: Time,
        key: &'static str,
        value: u64,
    ) {
        let _ = (track, name, start, end, key, value);
    }

    /// A point-in-time marker.
    fn instant(&mut self, track: &'static str, name: &'static str, at: Time) {
        let _ = (track, name, at);
    }

    /// A sampled counter value (queue depth, occupancy, ...).
    fn counter(&mut self, name: &'static str, at: Time, value: f64) {
        let _ = (name, at, value);
    }

    /// One observation of a per-stage latency (aggregated, never capped).
    fn latency(&mut self, stage: &'static str, d: Dur) {
        let _ = (stage, d);
    }

    /// Enter a workload phase; subsequent latency observations attribute
    /// to it until the next `phase_begin` or [`Recorder::phase_end`].
    /// Re-asserting the current phase is cheap and idempotent, which lets
    /// interleaved processes (contention experiments time-share one
    /// engine thread) each restate their phase per step.
    fn phase_begin(&mut self, name: &'static str, index: Option<u64>) {
        let _ = (name, index);
    }

    /// Leave the current phase; subsequent observations are `unphased`.
    fn phase_end(&mut self) {}

    /// Bump a monotonic total by `delta`.
    fn add(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// A component was occupied over `[start, end)` — folded onto fixed
    /// virtual-time windows as a busy fraction. Callers must emit
    /// non-overlapping intervals per counter.
    fn counter_busy(&mut self, name: &'static str, start: Time, end: Time) {
        let _ = (name, start, end);
    }

    /// An integer gauge held `level` over `[start, end)` — folded onto
    /// windows as a time-weighted level. Overlapping segments add, so
    /// one unit segment per waiting request folds into queue depth.
    fn counter_level(&mut self, name: &'static str, start: Time, end: Time, level: u64) {
        let _ = (name, start, end, level);
    }

    /// A numerator/denominator event pair at an instant (e.g. one cache
    /// access that did or did not miss) — folded onto windows as a rate.
    fn counter_ratio(&mut self, name: &'static str, at: Time, num: u64, den: u64) {
        let _ = (name, at, num, den);
    }

    /// Declare a level counter's capacity (credit window size, ...).
    fn counter_bound(&mut self, name: &'static str, bound: u64) {
        let _ = (name, bound);
    }

    /// Claim one instance slot of an exclusive counter family; returns
    /// the zero-based slot. Components whose busy/level tracks must not
    /// overlap (serial links, memory buses, credit windows, delay gates)
    /// claim at construction and record only from slot 0, so experiments
    /// that build several instances inside one point (congestion pairs,
    /// pooling) keep every window fraction within [0, 1]. Slots are
    /// deterministic: each point simulates on exactly one thread and
    /// constructs its components in a fixed order.
    fn claim(&mut self, family: &'static str) -> u64 {
        let _ = family;
        0
    }
}

/// The trait's no-op default, reified. Exists mostly for tests and for
/// call sites that want an explicit "recording disabled" value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// Everything one sweep point recorded, ready for export.
#[derive(Clone, Debug, Default)]
pub struct PointTrace {
    /// Grid index of the point within its sweep.
    pub index: usize,
    /// Timeline events in recording order (deterministic: the simulation
    /// of a point is single-threaded).
    pub events: Vec<TraceEvent>,
    /// Events discarded once the per-point cap was reached.
    pub dropped: u64,
    /// Per-stage latency histograms, in first-observation order.
    pub stages: Vec<(&'static str, Histogram)>,
    /// Per-(stage, phase) sub-histograms, in first-observation order.
    /// Every `latency` observation lands in exactly one entry here *and*
    /// in its stage histogram, so for each stage the phase counts and
    /// sums partition the stage totals integer-exactly.
    pub phased: Vec<(&'static str, Phase, Histogram)>,
    /// Monotonic totals, in first-observation order.
    pub counters: Vec<(&'static str, u64)>,
    /// Windowed counter tracks (utilization gauges), name-sorted. Like
    /// the histograms, these are never capped.
    pub tracks: Vec<CounterTrack>,
}

/// The recording implementation: buffers up to `max_events` timeline
/// events (histograms and totals are never capped) for one sweep point.
#[derive(Debug)]
pub struct TraceRecorder {
    index: usize,
    max_events: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    stages: Vec<(&'static str, Histogram)>,
    phase: Phase,
    phased: Vec<(&'static str, Phase, Histogram)>,
    counters: Vec<(&'static str, u64)>,
    windowed: CounterRecorder,
    claims: Vec<(&'static str, u64)>,
}

impl TraceRecorder {
    pub fn new(index: usize, max_events: usize) -> TraceRecorder {
        TraceRecorder::with_window(index, max_events, DEFAULT_WINDOW_PS)
    }

    /// Like [`TraceRecorder::new`], with an explicit counter-window
    /// width in picoseconds (the sweep harness passes the configured one).
    pub fn with_window(index: usize, max_events: usize, window_ps: u64) -> TraceRecorder {
        TraceRecorder {
            index,
            max_events,
            events: Vec::new(),
            dropped: 0,
            stages: Vec::new(),
            phase: Phase::UNPHASED,
            phased: Vec::new(),
            counters: Vec::new(),
            windowed: CounterRecorder::new(window_ps),
            claims: Vec::new(),
        }
    }

    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.max_events {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Consume the recorder into its point trace.
    pub fn finish(self) -> PointTrace {
        PointTrace {
            index: self.index,
            events: self.events,
            dropped: self.dropped,
            stages: self.stages,
            phased: self.phased,
            counters: self.counters,
            tracks: self.windowed.finish(),
        }
    }
}

impl Recorder for TraceRecorder {
    fn span(&mut self, track: &'static str, name: &'static str, start: Time, end: Time) {
        self.push(TraceEvent::Span {
            track,
            name,
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
            arg: None,
        });
    }

    fn span_arg(
        &mut self,
        track: &'static str,
        name: &'static str,
        start: Time,
        end: Time,
        key: &'static str,
        value: u64,
    ) {
        self.push(TraceEvent::Span {
            track,
            name,
            start_ps: start.as_ps(),
            end_ps: end.as_ps(),
            arg: Some((key, value)),
        });
    }

    fn instant(&mut self, track: &'static str, name: &'static str, at: Time) {
        self.push(TraceEvent::Instant {
            track,
            name,
            at_ps: at.as_ps(),
        });
    }

    fn counter(&mut self, name: &'static str, at: Time, value: f64) {
        self.push(TraceEvent::Counter {
            name,
            at_ps: at.as_ps(),
            value,
        });
    }

    fn latency(&mut self, stage: &'static str, d: Dur) {
        // Stage sets are small (≈ a dozen); a linear scan beats hashing
        // and keeps first-observation order, which is deterministic
        // because each point's simulation is single-threaded.
        match self.stages.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, h)) => h.record(d.as_ps()),
            None => {
                let mut h = Histogram::new();
                h.record(d.as_ps());
                self.stages.push((stage, h));
            }
        }
        // Mirror the observation into the (stage, current-phase) bucket:
        // one record into the stage total, one into exactly one phase —
        // that is what makes the per-phase partition integer-exact.
        let phase = self.phase;
        match self
            .phased
            .iter_mut()
            .find(|(s, p, _)| *s == stage && *p == phase)
        {
            Some((_, _, h)) => h.record(d.as_ps()),
            None => {
                let mut h = Histogram::new();
                h.record(d.as_ps());
                self.phased.push((stage, phase, h));
            }
        }
    }

    fn phase_begin(&mut self, name: &'static str, index: Option<u64>) {
        self.phase = Phase { name, index };
    }

    fn phase_end(&mut self) {
        self.phase = Phase::UNPHASED;
    }

    fn add(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += delta,
            None => self.counters.push((name, delta)),
        }
    }

    fn counter_busy(&mut self, name: &'static str, start: Time, end: Time) {
        self.windowed.busy(name, start.as_ps(), end.as_ps());
    }

    fn counter_level(&mut self, name: &'static str, start: Time, end: Time, level: u64) {
        self.windowed.level(name, start.as_ps(), end.as_ps(), level);
    }

    fn counter_ratio(&mut self, name: &'static str, at: Time, num: u64, den: u64) {
        self.windowed.ratio(name, at.as_ps(), num, den);
    }

    fn counter_bound(&mut self, name: &'static str, bound: u64) {
        self.windowed.bound(name, bound);
    }

    fn claim(&mut self, family: &'static str) -> u64 {
        match self.claims.iter_mut().find(|(f, _)| *f == family) {
            Some((_, n)) => {
                *n += 1;
                *n - 1
            }
            None => {
                self.claims.push((family, 1));
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        r.span("t", "a", Time::ZERO, Time::ns(10));
        r.instant("t", "b", Time::ns(5));
        r.counter("c", Time::ns(5), 1.0);
        r.latency("s", Dur::ns(3));
        r.add("n", 2);
    }

    #[test]
    fn trace_recorder_buffers_and_aggregates() {
        let mut r = TraceRecorder::new(7, 100);
        r.span("fabric", "read", Time::ZERO, Time::ns(10));
        r.span_arg("workload", "copy", Time::ns(1), Time::ns(9), "rep", 3);
        r.instant("t", "mark", Time::ns(2));
        r.counter("depth", Time::ns(2), 4.0);
        r.latency("gate", Dur::ns(5));
        r.latency("gate", Dur::ns(7));
        r.latency("wire", Dur::ns(1));
        r.add("reads", 1);
        r.add("reads", 2);
        let t = r.finish();
        assert_eq!(t.index, 7);
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].0, "gate");
        assert_eq!(t.stages[0].1.count(), 2);
        assert_eq!(t.counters, vec![("reads", 3)]);
    }

    #[test]
    fn phase_labels_are_frame_safe() {
        assert_eq!(Phase::UNPHASED.label(), "unphased");
        let p = Phase {
            name: "bfs.level",
            index: Some(3),
        };
        assert_eq!(p.label(), "bfs_level_3");
        let p = Phase {
            name: "kv.steady",
            index: None,
        };
        assert_eq!(p.label(), "kv_steady");
    }

    #[test]
    fn latencies_partition_into_the_current_phase() {
        let mut r = TraceRecorder::new(0, 10);
        r.latency("gate", Dur::ns(1)); // before any marker: unphased
        r.phase_begin("copy", None);
        r.latency("gate", Dur::ns(2));
        r.latency("wire", Dur::ns(3));
        r.phase_begin("bfs.level", Some(1));
        r.latency("gate", Dur::ns(4));
        r.phase_end();
        r.latency("gate", Dur::ns(8)); // after phase_end: unphased again
        let t = r.finish();

        // Stage totals are untouched by phasing.
        let gate = &t.stages.iter().find(|(s, _)| *s == "gate").unwrap().1;
        assert_eq!(gate.count(), 4);
        assert_eq!(gate.sum(), Dur::ns(15).as_ps() as u128);

        // Per-phase buckets partition each stage exactly.
        for (stage, total) in [("gate", gate.sum()), ("wire", Dur::ns(3).as_ps() as u128)] {
            let (count, sum) = t
                .phased
                .iter()
                .filter(|(s, _, _)| *s == stage)
                .fold((0u64, 0u128), |(c, s), (_, _, h)| {
                    (c + h.count(), s + h.sum())
                });
            let stage_count = t
                .stages
                .iter()
                .find(|(s, _)| *s == stage)
                .unwrap()
                .1
                .count();
            assert_eq!(count, stage_count, "{stage} phase counts partition");
            assert_eq!(sum, total, "{stage} phase sums partition");
        }

        // The unphased bucket collects both the pre-marker and the
        // post-phase_end observations.
        let unphased = t
            .phased
            .iter()
            .find(|(s, p, _)| *s == "gate" && *p == Phase::UNPHASED)
            .unwrap();
        assert_eq!(unphased.2.count(), 2);
        assert_eq!(unphased.2.sum(), Dur::ns(9).as_ps() as u128);
    }

    #[test]
    fn no_markers_means_one_unphased_bucket_per_stage() {
        let mut r = TraceRecorder::new(0, 10);
        r.latency("gate", Dur::ns(5));
        r.latency("gate", Dur::ns(7));
        r.latency("wire", Dur::ns(1));
        let t = r.finish();
        assert_eq!(t.phased.len(), 2, "one bucket per stage");
        for (stage, phase, h) in &t.phased {
            assert_eq!(*phase, Phase::UNPHASED);
            let total = &t.stages.iter().find(|(s, _)| s == stage).unwrap().1;
            assert_eq!(h.count(), total.count());
            assert_eq!(h.sum(), total.sum());
        }
    }

    #[test]
    fn event_cap_drops_timeline_but_not_aggregates() {
        let mut r = TraceRecorder::new(0, 2);
        for i in 0..5u64 {
            r.instant("t", "e", Time::ns(i));
            r.latency("s", Dur::ns(i + 1));
        }
        let t = r.finish();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
        assert_eq!(t.stages[0].1.count(), 5, "histograms are never capped");
    }
}
