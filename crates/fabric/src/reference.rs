//! An independent, event-driven reference model of the remote-read path.
//!
//! [`crate::engine::FabricEngine`] computes completion times with a
//! *timeline* technique: each resource advances a `next_free` clock as
//! calls arrive in program order. That is fast but subtle — out-of-order
//! arrivals, credit recycling, and grant alignment all interact. This
//! module re-implements the same path on the `thymesim-sim` actor engine,
//! where a future-event list forces strictly time-ordered processing, and
//! the test suite proves the two implementations produce **identical**
//! completion times for arbitrary traffic. Two independent derivations,
//! one answer.

use crate::engine::FabricConfig;
use crate::packet::HEADER_BYTES;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use thymesim_sim::{Actor, ActorId, Ctx, Dur, Engine, Event, Time};

/// Event kinds inside the reference pipeline.
const EV_ISSUE: u32 = 0;
const EV_GATE: u32 = 1;
const EV_TX: u32 = 2;
const EV_BUS: u32 = 3;
const EV_RX: u32 = 4;

/// The whole path as one actor: the actor engine supplies globally
/// time-ordered dispatch; the actor supplies the per-stage arithmetic.
struct PathActor {
    cfg: FabricConfig,
    // Window.
    inflight: BinaryHeap<Reverse<u64>>, // completion ps
    waiting: VecDeque<u32>,             // request ids awaiting credit
    // Gate state.
    last_grant: Option<u64>, // cycle index
    // Serial resources.
    tx_free: Time,
    bus_free: Time,
    rx_free: Time,
    // Results.
    completions: Vec<Option<Time>>,
    done: usize,
    me: ActorId,
    // Derived constants.
    req_wire: u64,
    resp_wire: u64,
    bus_busy: Dur,
    dram_latency: Dur,
    bus_rate_ps_per_byte: f64,
}

impl PathActor {
    /// Entries above this are provisional (in-flight, completion unknown).
    const PROVISIONAL_FLOOR: u64 = u64::MAX >> 1;

    fn provisional(id: u32) -> u64 {
        u64::MAX - id as u64
    }

    fn admit(&mut self, id: u32, at: Time, ctx: &mut Ctx<'_>) {
        // Retire credits whose transactions already completed.
        while let Some(&Reverse(done)) = self.inflight.peek() {
            if done <= at.as_ps() {
                self.inflight.pop();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.cfg.window {
            // Reserve the credit with a provisional completion; patched
            // at EV_RX.
            self.inflight.push(Reverse(Self::provisional(id)));
            ctx.schedule_at(
                at + self.cfg.egress_latency,
                Event {
                    to: self.me,
                    kind: EV_GATE,
                    payload: id as u64,
                },
            );
            return;
        }
        // Window full. If the earliest credit's completion is already
        // *known* (a real time in the future), admit at that instant —
        // exactly the timeline model's acquire(). Otherwise wait for the
        // completion event to wake us.
        match self.inflight.peek() {
            Some(&Reverse(done)) if done < Self::PROVISIONAL_FLOOR => {
                self.inflight.pop();
                self.inflight.push(Reverse(Self::provisional(id)));
                let admit_at = Time(done).max2(at);
                ctx.schedule_at(
                    admit_at + self.cfg.egress_latency,
                    Event {
                        to: self.me,
                        kind: EV_GATE,
                        payload: id as u64,
                    },
                );
            }
            _ => self.waiting.push_back(id),
        }
    }

    fn release_credit(&mut self, id: u32, done: Time, ctx: &mut Ctx<'_>) {
        // Replace the provisional entry for `id` with the real completion
        // (it may already have been consumed by an eager admit()).
        let mut entries: Vec<u64> = self.inflight.drain().map(|Reverse(v)| v).collect();
        let provisional = Self::provisional(id);
        if let Some(pos) = entries.iter().position(|&v| v == provisional) {
            entries[pos] = done.as_ps();
        }
        self.inflight = entries.into_iter().map(Reverse).collect();
        // Admit the next waiter at the completion instant if a credit is
        // free then.
        if let Some(next) = self.waiting.pop_front() {
            let at = done;
            // One credit just became concrete; pop it if completed.
            self.admit_waiting(next, at, ctx);
        }
    }

    fn admit_waiting(&mut self, id: u32, at: Time, ctx: &mut Ctx<'_>) {
        // The earliest credit frees at the min (real) completion.
        let free_at = match self.inflight.peek() {
            Some(&Reverse(done))
                if self.inflight.len() >= self.cfg.window && done < Self::PROVISIONAL_FLOOR =>
            {
                Time(done.max(at.as_ps()))
            }
            _ => at,
        };
        if self.inflight.len() >= self.cfg.window {
            self.inflight.pop();
        }
        self.inflight.push(Reverse(Self::provisional(id)));
        ctx.schedule_at(
            free_at + self.cfg.egress_latency,
            Event {
                to: self.me,
                kind: EV_GATE,
                payload: id as u64,
            },
        );
    }
}

impl Actor for PathActor {
    fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
        let id = ev.payload as u32;
        let now = ctx.now();

        match ev.kind {
            EV_ISSUE => self.admit(id, now, ctx),
            EV_GATE => {
                // One grant per PERIOD cycles, aligned (equation 1).
                let clock = self.cfg.fpga_clock;
                let arrival_cycle = clock.cycles_at(clock.next_edge(now));
                let period = match &self.cfg.delay {
                    crate::engine::DelaySpec::Period(p) => *p,
                    other => panic!("reference model supports Period only, got {other:?}"),
                };
                let earliest = match self.last_grant {
                    Some(g) => arrival_cycle.max(g + 1),
                    None => arrival_cycle,
                };
                let grant = earliest.div_ceil(period) * period;
                self.last_grant = Some(grant);
                ctx.schedule_at(
                    clock.time_of_cycle(grant + 1),
                    Event {
                        to: self.me,
                        kind: EV_TX,
                        payload: ev.payload,
                    },
                );
            }
            EV_TX => {
                let start = now.max2(self.tx_free);
                let ser = Dur::ps(
                    (self.req_wire as f64 * 8.0e12 / self.cfg.link.bits_per_sec).round() as u64,
                );
                self.tx_free = start + ser;
                let arrive = start + ser + self.cfg.link.propagation + self.cfg.lender_nic_latency;
                ctx.schedule_at(
                    arrive,
                    Event {
                        to: self.me,
                        kind: EV_BUS,
                        payload: ev.payload,
                    },
                );
            }
            EV_BUS => {
                let start = now.max2(self.bus_free);
                self.bus_free = start + self.bus_busy;
                let data_ready = start + self.bus_busy + self.dram_latency;
                ctx.schedule_at(
                    data_ready + self.cfg.lender_nic_latency,
                    Event {
                        to: self.me,
                        kind: EV_RX,
                        payload: ev.payload,
                    },
                );
            }
            EV_RX => {
                let start = now.max2(self.rx_free);
                let ser = Dur::ps(
                    (self.resp_wire as f64 * 8.0e12 / self.cfg.link.bits_per_sec).round() as u64,
                );
                self.rx_free = start + ser;
                let done = start + ser + self.cfg.link.propagation + self.cfg.ingress_latency;
                self.completions[id as usize] = Some(done);
                self.done += 1;
                self.release_credit(id, done, ctx);
            }
            other => panic!("unknown event kind {other}"),
        }
        let _ = self.bus_rate_ps_per_byte;
    }
}

/// Simulate sorted `arrivals` (one cache-line read each) through the
/// event-driven reference; returns per-request completion times.
pub fn reference_completions(
    cfg: &FabricConfig,
    dram: thymesim_mem::DramConfig,
    arrivals: &[Time],
) -> Vec<Time> {
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Thin wrapper that shares the completion vector with the caller.
    struct Shared {
        inner: PathActor,
        out: Rc<RefCell<Vec<Option<Time>>>>,
    }
    impl Actor for Shared {
        fn handle(&mut self, ev: Event, ctx: &mut Ctx<'_>) {
            self.inner.handle(ev, ctx);
            if ev.kind == EV_RX {
                let id = ev.payload as usize;
                self.out.borrow_mut()[id] = self.inner.completions[id];
            }
        }
    }

    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    let mut engine = Engine::new();
    if thymesim_telemetry::enabled() {
        // Observational hook: samples queue depth without touching sim state.
        let mut n = 0u64;
        engine.set_tracer(Box::new(move |at, _ev, depth| {
            thymesim_telemetry::add("engine.events", 1);
            if n.is_multiple_of(64) {
                thymesim_telemetry::counter("engine.queue_depth", at, depth as f64);
            }
            n += 1;
        }));
    }
    let bus_busy =
        Dur::ps((cfg.line_bytes as f64 * 1e12 / dram.bandwidth_bytes_per_sec).round() as u64);
    let out: Rc<RefCell<Vec<Option<Time>>>> = Rc::new(RefCell::new(vec![None; arrivals.len()]));
    let actor = Shared {
        inner: PathActor {
            cfg: cfg.clone(),
            inflight: BinaryHeap::new(),
            waiting: VecDeque::new(),
            last_grant: None,
            tx_free: Time::ZERO,
            bus_free: Time::ZERO,
            rx_free: Time::ZERO,
            completions: vec![None; arrivals.len()],
            done: 0,
            me: ActorId(0),
            req_wire: HEADER_BYTES,
            resp_wire: HEADER_BYTES + cfg.line_bytes,
            bus_busy,
            dram_latency: dram.latency,
            bus_rate_ps_per_byte: 1e12 / dram.bandwidth_bytes_per_sec,
        },
        out: Rc::clone(&out),
    };
    let id = engine.add_actor(Box::new(actor));
    for (i, &t) in arrivals.iter().enumerate() {
        engine.post(
            t,
            Event {
                to: id,
                kind: EV_ISSUE,
                payload: i as u64,
            },
        );
    }
    engine.run();
    let res = out.borrow();
    res.iter()
        .map(|c| c.expect("every request must complete"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DelaySpec, FabricEngine};
    use crate::xlate::Segment;
    use proptest::prelude::*;
    use thymesim_mem::{shared_dram, Addr, DramConfig, RemoteBackend};

    fn timeline_completions(cfg: &FabricConfig, dram: DramConfig, arrivals: &[Time]) -> Vec<Time> {
        let mut e = FabricEngine::new(cfg.clone(), shared_dram(dram));
        e.xlate.map(Segment {
            borrower_base: 0,
            lender_base: 0,
            len: 1 << 30,
        });
        e.set_attached(true);
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &t)| e.fetch_line(t, Addr((i as u64 % 4096) * 128)))
            .collect()
    }

    fn cfg(period: u64, window: usize) -> FabricConfig {
        FabricConfig {
            delay: DelaySpec::Period(period),
            window,
            ..FabricConfig::default()
        }
    }

    #[test]
    fn matches_timeline_engine_on_a_burst() {
        let arrivals: Vec<Time> = (0..200).map(|_| Time::ZERO).collect();
        let c = cfg(50, 16);
        let a = reference_completions(&c, DramConfig::default(), &arrivals);
        let b = timeline_completions(&c, DramConfig::default(), &arrivals);
        assert_eq!(a, b, "event-driven and timeline models disagree");
    }

    #[test]
    fn matches_timeline_engine_when_sparse() {
        let arrivals: Vec<Time> = (0..100u64).map(|i| Time::us(i * 7)).collect();
        let c = cfg(200, 8);
        let a = reference_completions(&c, DramConfig::default(), &arrivals);
        let b = timeline_completions(&c, DramConfig::default(), &arrivals);
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The two independent implementations agree exactly for arbitrary
        /// sorted traffic, PERIOD, and window size.
        #[test]
        fn prop_reference_equals_timeline(
            period in 1u64..300,
            window in 1usize..64,
            mut gaps in proptest::collection::vec(0u64..5_000, 1..120),
        ) {
            let mut t = Time::ZERO;
            let arrivals: Vec<Time> = gaps.drain(..).map(|g| {
                t += thymesim_sim::Dur::ns(g);
                t
            }).collect();
            let c = cfg(period, window);
            let a = reference_completions(&c, DramConfig::default(), &arrivals);
            let b = timeline_completions(&c, DramConfig::default(), &arrivals);
            prop_assert_eq!(a, b);
        }
    }
}
