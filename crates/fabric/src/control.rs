//! The control plane: roles, memory reservation, attach/detach.
//!
//! `libthymesisflow` "configures the FPGAs, and takes care of reserving the
//! memory at the lender node and hot-plugging it to the borrower node"
//! (§III-A). We model that sequence: reserve a span of lender memory,
//! discover the compute-side FPGA through gated configuration reads, then
//! map the reservation into the borrower's physical address space. At
//! extreme PERIOD the discovery reads blow the timeout and the FPGA "is no
//! longer detected" — the paper's PERIOD = 10000 failure.

use crate::engine::FabricEngine;
use crate::failure::Crash;
use crate::xlate::Segment;
use thymesim_sim::{Dur, Time};

/// Role assigned to a node by the control plane (§II-A: assignment is
/// dynamic, based on memory demand and availability).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeRole {
    Borrower,
    Lender,
}

/// A span of lender memory set aside for one borrower.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    pub id: u32,
    pub lender_base: u64,
    pub len: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReserveError {
    /// Not enough unreserved memory at the lender.
    InsufficientCapacity { requested: u64, available: u64 },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttachError {
    /// FPGA discovery exceeded its budget; the memory cannot be attached.
    DiscoveryTimeout { elapsed: Dur, budget: Dur },
    /// Already attached.
    AlreadyAttached,
}

/// Outcome of a successful attach.
#[derive(Clone, Copy, Debug)]
pub struct AttachReport {
    /// When the hot-plug completed.
    pub ready_at: Time,
    /// Wall time the discovery handshake took.
    pub discovery_time: Dur,
    /// Configuration reads performed.
    pub config_reads: u32,
}

/// Control-plane tunables.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ControlConfig {
    /// Configuration-space reads needed to enumerate the FPGA and program
    /// the translation tables.
    pub discovery_reads: u32,
    /// Budget for the whole discovery; exceeding it means the device is
    /// reported absent.
    pub discovery_timeout: Dur,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            discovery_reads: 256,
            discovery_timeout: Dur::ms(2),
        }
    }
}

/// Reservation bookkeeping for one lender node.
pub struct ControlPlane {
    cfg: ControlConfig,
    lender_capacity: u64,
    reserved: u64,
    next_id: u32,
    reservations: Vec<Reservation>,
}

impl ControlPlane {
    pub fn new(cfg: ControlConfig, lender_capacity: u64) -> ControlPlane {
        ControlPlane {
            cfg,
            lender_capacity,
            reserved: 0,
            next_id: 0,
            reservations: Vec::new(),
        }
    }

    pub fn config(&self) -> ControlConfig {
        self.cfg
    }

    pub fn available(&self) -> u64 {
        self.lender_capacity - self.reserved
    }

    /// Reserve `len` bytes of lender memory.
    pub fn reserve(&mut self, len: u64) -> Result<Reservation, ReserveError> {
        if len > self.available() {
            return Err(ReserveError::InsufficientCapacity {
                requested: len,
                available: self.available(),
            });
        }
        let res = Reservation {
            id: self.next_id,
            lender_base: self.reserved,
            len,
        };
        self.next_id += 1;
        self.reserved += len;
        self.reservations.push(res);
        Ok(res)
    }

    /// Release a reservation (only the most recent can truly return space
    /// in this bump model; earlier ones are just forgotten — matching the
    /// prototype, which tears reservations down only at detach).
    pub fn release(&mut self, res: Reservation) {
        self.reservations.retain(|r| r.id != res.id);
        if res.lender_base + res.len == self.reserved {
            self.reserved = res.lender_base;
        }
    }

    pub fn reservations(&self) -> &[Reservation] {
        &self.reservations
    }

    /// Hot-plug `res` into the borrower's address space at `borrower_base`.
    ///
    /// Runs the discovery handshake through the (possibly delay-injected)
    /// fabric; on timeout the engine records an [`Crash::AttachTimeout`]
    /// and stays detached.
    pub fn attach(
        &self,
        engine: &mut FabricEngine,
        at: Time,
        borrower_base: u64,
        res: Reservation,
    ) -> Result<AttachReport, AttachError> {
        if engine.is_attached() {
            return Err(AttachError::AlreadyAttached);
        }
        let mut t = at;
        let budget = self.cfg.discovery_timeout;
        let deadline = at + budget;
        for done in 0..self.cfg.discovery_reads {
            t = engine.config_rtt(t);
            if t > deadline {
                let elapsed = t - at;
                engine
                    .health
                    .record_crash(Crash::AttachTimeout { elapsed, budget });
                let _ = done;
                return Err(AttachError::DiscoveryTimeout { elapsed, budget });
            }
        }
        engine.xlate.map(Segment {
            borrower_base,
            lender_base: res.lender_base,
            len: res.len,
        });
        engine.set_attached(true);
        Ok(AttachReport {
            ready_at: t,
            discovery_time: t - at,
            config_reads: self.cfg.discovery_reads,
        })
    }

    /// Map an additional reservation into an already attached borrower
    /// (the prototype can stitch several lender spans into one window).
    /// Discovery already ran at attach; extending costs only a handful of
    /// configuration writes through the (possibly delayed) fabric.
    pub fn extend(
        &self,
        engine: &mut FabricEngine,
        at: Time,
        borrower_base: u64,
        res: Reservation,
    ) -> Result<Time, ExtendError> {
        if !engine.is_attached() {
            return Err(ExtendError::NotAttached);
        }
        let mut t = at;
        for _ in 0..8 {
            t = engine.config_rtt(t);
        }
        engine.xlate.map(Segment {
            borrower_base,
            lender_base: res.lender_base,
            len: res.len,
        });
        Ok(t)
    }

    /// Unmap and detach.
    pub fn detach(&self, engine: &mut FabricEngine, borrower_base: u64) {
        engine.xlate.unmap(borrower_base);
        engine.set_attached(false);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtendError {
    /// Extension requires an attached window.
    NotAttached,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DelaySpec, FabricConfig};
    use thymesim_mem::{shared_dram, Addr, DramConfig, RemoteBackend};

    fn engine(period: u64) -> FabricEngine {
        FabricEngine::new(
            FabricConfig {
                delay: DelaySpec::Period(period),
                ..FabricConfig::default()
            },
            shared_dram(DramConfig::default()),
        )
    }

    fn plane() -> ControlPlane {
        ControlPlane::new(ControlConfig::default(), 512 << 30)
    }

    #[test]
    fn reserve_and_release() {
        let mut cp = plane();
        let a = cp.reserve(1 << 30).unwrap();
        let b = cp.reserve(2 << 30).unwrap();
        assert_eq!(a.lender_base, 0);
        assert_eq!(b.lender_base, 1 << 30);
        assert_eq!(cp.available(), (512 - 3) << 30);
        cp.release(b);
        assert_eq!(cp.available(), (512 - 1) << 30);
        assert_eq!(cp.reservations().len(), 1);
    }

    #[test]
    fn over_reservation_fails() {
        let mut cp = ControlPlane::new(ControlConfig::default(), 1 << 30);
        let err = cp.reserve(2 << 30).unwrap_err();
        match err {
            ReserveError::InsufficientCapacity {
                requested,
                available,
            } => {
                assert_eq!(requested, 2 << 30);
                assert_eq!(available, 1 << 30);
            }
        }
    }

    #[test]
    fn attach_succeeds_at_vanilla_and_period_1000() {
        for period in [1u64, 1000] {
            let mut e = engine(period);
            let mut cp = plane();
            let res = cp.reserve(1 << 30).unwrap();
            let report = cp
                .attach(&mut e, Time::ZERO, 1 << 40, res)
                .unwrap_or_else(|err| panic!("PERIOD={period}: attach failed: {err:?}"));
            assert!(e.is_attached());
            assert!(report.discovery_time < Dur::ms(2));
            assert_eq!(report.config_reads, 256);
            // The attached window is usable.
            let done = e.fetch_line(report.ready_at, Addr(1 << 40));
            assert!(done > report.ready_at);
        }
    }

    #[test]
    fn attach_times_out_at_period_10000() {
        let mut e = engine(10_000);
        let mut cp = plane();
        let res = cp.reserve(1 << 30).unwrap();
        let err = cp.attach(&mut e, Time::ZERO, 1 << 40, res).unwrap_err();
        match err {
            AttachError::DiscoveryTimeout { elapsed, budget } => {
                assert!(elapsed > budget);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(!e.is_attached(), "failed attach must leave engine detached");
        assert!(
            matches!(e.health.crashed(), Some(Crash::AttachTimeout { .. })),
            "crash must be recorded"
        );
    }

    #[test]
    fn double_attach_rejected() {
        let mut e = engine(1);
        let mut cp = plane();
        let res = cp.reserve(1 << 30).unwrap();
        cp.attach(&mut e, Time::ZERO, 1 << 40, res).unwrap();
        let res2 = cp.reserve(1 << 30).unwrap();
        assert_eq!(
            cp.attach(&mut e, Time::ZERO, 1 << 41, res2).unwrap_err(),
            AttachError::AlreadyAttached
        );
    }

    #[test]
    fn detach_unmaps() {
        let mut e = engine(1);
        let mut cp = plane();
        let res = cp.reserve(1 << 30).unwrap();
        cp.attach(&mut e, Time::ZERO, 1 << 40, res).unwrap();
        cp.detach(&mut e, 1 << 40);
        assert!(!e.is_attached());
        assert!(e.xlate.translate(Addr(1 << 40)).is_err());
    }

    #[test]
    fn extend_maps_additional_reservations() {
        let mut e = engine(1);
        let mut cp = plane();
        let r1 = cp.reserve(1 << 30).unwrap();
        let report = cp.attach(&mut e, Time::ZERO, 1 << 40, r1).unwrap();
        let r2 = cp.reserve(1 << 30).unwrap();
        let t = cp
            .extend(&mut e, report.ready_at, (1 << 40) + (1 << 30), r2)
            .unwrap();
        assert!(t > report.ready_at);
        // Both spans translate, to different lender offsets.
        let a = e.xlate.translate(Addr(1 << 40)).unwrap();
        let b = e.xlate.translate(Addr((1 << 40) + (1 << 30))).unwrap();
        assert_ne!(a, b);
        assert_eq!(e.xlate.mapped_bytes(), 2 << 30);
        // Accesses to the extension work.
        let done = e.fetch_line(t, Addr((1 << 40) + (1 << 30) + 4096));
        assert!(done > t);
    }

    #[test]
    fn extend_requires_attachment() {
        let mut e = engine(1);
        let mut cp = plane();
        let r = cp.reserve(1 << 30).unwrap();
        assert_eq!(
            cp.extend(&mut e, Time::ZERO, 0, r),
            Err(ExtendError::NotAttached)
        );
    }

    #[test]
    fn discovery_time_scales_with_period() {
        let mut fast = engine(1);
        let mut slow = engine(1000);
        let cp = plane();
        let mut cp2 = plane();
        let res = cp2.reserve(1 << 30).unwrap();
        let r1 = cp.attach(&mut fast, Time::ZERO, 1 << 40, res).unwrap();
        let r2 = cp.attach(&mut slow, Time::ZERO, 1 << 40, res).unwrap();
        assert!(
            r2.discovery_time > r1.discovery_time * 2,
            "PERIOD=1000 discovery ({}) should dwarf vanilla ({})",
            r2.discovery_time,
            r1.discovery_time
        );
    }
}
