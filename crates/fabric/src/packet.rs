//! The ThymesisFlow-style network packet format.
//!
//! The disaggregated-memory NIC "transforms the cache miss into a network
//! packet by encapsulating with a packet header for network transmission
//! (such as the destination network address, checksum, etc.)" (§II-A).
//! This module defines that encapsulation: a fixed 32-byte header with an
//! FNV-1a integrity checksum, optionally followed by one cache line of
//! payload, with exact wire-size accounting used by the link and beat
//! models.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Packet header size on the wire.
pub const HEADER_BYTES: u64 = 32;
/// AXI data-path width: one beat moves up to this many payload bytes.
pub const BEAT_BYTES: u64 = 64;

const MAGIC: u16 = 0x7F17;
const VERSION: u8 = 1;

/// Message types exchanged by borrower and lender NICs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketKind {
    /// Cache-line read request (borrower → lender).
    ReadReq = 1,
    /// Read response carrying the line (lender → borrower).
    ReadResp = 2,
    /// Posted cache-line write-back (borrower → lender).
    WriteReq = 3,
    /// Write acknowledgement (lender → borrower).
    WriteAck = 4,
    /// Control-plane configuration read (attach/discovery).
    ConfigRead = 5,
    /// Control-plane configuration response.
    ConfigResp = 6,
}

impl PacketKind {
    fn from_u8(v: u8) -> Option<PacketKind> {
        Some(match v {
            1 => PacketKind::ReadReq,
            2 => PacketKind::ReadResp,
            3 => PacketKind::WriteReq,
            4 => PacketKind::WriteAck,
            5 => PacketKind::ConfigRead,
            6 => PacketKind::ConfigResp,
            _ => return None,
        })
    }

    /// Does this kind carry a cache line of payload?
    pub fn carries_data(self) -> bool {
        matches!(self, PacketKind::ReadResp | PacketKind::WriteReq)
    }
}

/// A fabric packet (header + optional payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    pub kind: PacketKind,
    /// Source node id.
    pub src: u16,
    /// Destination node id.
    pub dst: u16,
    /// Transaction tag matching responses to requests.
    pub tag: u32,
    /// Lender-side byte offset of the target line.
    pub addr: u64,
    /// Payload (empty or one cache line).
    pub payload: Bytes,
}

/// Why a packet failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    TooShort,
    BadMagic,
    BadVersion,
    UnknownKind(u8),
    ChecksumMismatch { expected: u32, actual: u32 },
    LengthMismatch { declared: usize, actual: usize },
}

/// FNV-1a over the wire bytes with the checksum field zeroed.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Packet {
    pub fn read_req(src: u16, dst: u16, tag: u32, addr: u64) -> Packet {
        Packet {
            kind: PacketKind::ReadReq,
            src,
            dst,
            tag,
            addr,
            payload: Bytes::new(),
        }
    }

    pub fn read_resp(req: &Packet, payload: Bytes) -> Packet {
        Packet {
            kind: PacketKind::ReadResp,
            src: req.dst,
            dst: req.src,
            tag: req.tag,
            addr: req.addr,
            payload,
        }
    }

    pub fn write_req(src: u16, dst: u16, tag: u32, addr: u64, payload: Bytes) -> Packet {
        Packet {
            kind: PacketKind::WriteReq,
            src,
            dst,
            tag,
            addr,
            payload,
        }
    }

    /// Total bytes on the wire.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload.len() as u64
    }

    /// AXI beats the packet occupies on the NIC's internal stream:
    /// one header beat plus the payload beats.
    pub fn beats(&self) -> u64 {
        1 + (self.payload.len() as u64).div_ceil(BEAT_BYTES)
    }

    /// Serialize to wire format.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity((HEADER_BYTES as usize) + self.payload.len());
        b.put_u16(MAGIC);
        b.put_u8(VERSION);
        b.put_u8(self.kind as u8);
        b.put_u16(self.src);
        b.put_u16(self.dst);
        b.put_u32(self.tag);
        b.put_u64(self.addr);
        b.put_u16(self.payload.len() as u16);
        b.put_u16(0); // reserved
        b.put_u32(0); // checksum placeholder
        b.put_u32(0); // pad to a 32-byte header
        b.put_slice(&self.payload);
        let sum = fnv1a(&b);
        // Patch the checksum (offset 24..28).
        b[24..28].copy_from_slice(&sum.to_be_bytes());
        b.freeze()
    }

    /// Parse and verify a wire packet.
    pub fn decode(mut wire: Bytes) -> Result<Packet, DecodeError> {
        if wire.len() < HEADER_BYTES as usize {
            return Err(DecodeError::TooShort);
        }
        // Verify checksum over the whole frame with the field zeroed.
        let mut copy = BytesMut::from(&wire[..]);
        let expected = u32::from_be_bytes([copy[24], copy[25], copy[26], copy[27]]);
        copy[24..28].fill(0);
        let actual = fnv1a(&copy);
        if expected != actual {
            return Err(DecodeError::ChecksumMismatch { expected, actual });
        }

        if wire.get_u16() != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        if wire.get_u8() != VERSION {
            return Err(DecodeError::BadVersion);
        }
        let kind_raw = wire.get_u8();
        let kind = PacketKind::from_u8(kind_raw).ok_or(DecodeError::UnknownKind(kind_raw))?;
        let src = wire.get_u16();
        let dst = wire.get_u16();
        let tag = wire.get_u32();
        let addr = wire.get_u64();
        let len = wire.get_u16() as usize;
        let _reserved = wire.get_u16();
        let _checksum = wire.get_u32();
        let _pad = wire.get_u32();
        if wire.len() != len {
            return Err(DecodeError::LengthMismatch {
                declared: len,
                actual: wire.len(),
            });
        }
        Ok(Packet {
            kind,
            src,
            dst,
            tag,
            addr,
            payload: wire,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_req_round_trips() {
        let p = Packet::read_req(1, 2, 42, 0xDEAD_C0DE);
        let wire = p.encode();
        assert_eq!(wire.len() as u64, HEADER_BYTES);
        let q = Packet::decode(wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn data_packet_round_trips() {
        let payload = Bytes::from(vec![0xABu8; 128]);
        let p = Packet::write_req(3, 4, 7, 4096, payload);
        let q = Packet::decode(p.encode()).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.payload.len(), 128);
    }

    #[test]
    fn wire_sizes_and_beats() {
        let req = Packet::read_req(0, 1, 0, 0);
        assert_eq!(req.wire_bytes(), 32);
        assert_eq!(req.beats(), 1, "read request is a single header beat");
        let wr = Packet::write_req(0, 1, 0, 0, Bytes::from(vec![0u8; 128]));
        assert_eq!(wr.wire_bytes(), 160);
        assert_eq!(wr.beats(), 3, "header + two 64B data beats");
        let resp = Packet::read_resp(&req, Bytes::from(vec![0u8; 128]));
        assert_eq!(resp.beats(), 3);
        assert_eq!(resp.src, req.dst);
        assert_eq!(resp.dst, req.src);
        assert_eq!(resp.tag, req.tag);
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let p = Packet::read_req(1, 2, 42, 0x1000);
        let wire = p.encode();
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x01;
            let r = Packet::decode(Bytes::from(bad));
            assert!(
                r.is_err(),
                "single-bit corruption at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn truncated_packet_rejected() {
        let p = Packet::read_req(1, 2, 3, 4);
        let wire = p.encode();
        let r = Packet::decode(wire.slice(0..16));
        assert_eq!(r, Err(DecodeError::TooShort));
    }

    #[test]
    fn length_mismatch_rejected() {
        // Declare 128 payload bytes but append 64: checksum is computed
        // over our forged frame so it passes; length check must catch it.
        let p = Packet::write_req(0, 1, 9, 0, Bytes::from(vec![1u8; 128]));
        let wire = p.encode();
        let mut forged = wire.to_vec();
        forged.truncate(HEADER_BYTES as usize + 64);
        // Re-patch the checksum so only the length is wrong.
        forged[24..28].fill(0);
        let sum = super::fnv1a(&forged);
        forged[24..28].copy_from_slice(&sum.to_be_bytes());
        match Packet::decode(Bytes::from(forged)) {
            Err(DecodeError::LengthMismatch { declared, actual }) => {
                assert_eq!(declared, 128);
                assert_eq!(actual, 64);
            }
            other => panic!("expected length mismatch, got {other:?}"),
        }
    }

    proptest! {
        #[test]
        fn prop_encode_decode_round_trip(
            kind in 1u8..=6,
            src in any::<u16>(),
            dst in any::<u16>(),
            tag in any::<u32>(),
            addr in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Packet {
                kind: PacketKind::from_u8(kind).unwrap(),
                src, dst, tag, addr,
                payload: Bytes::from(payload),
            };
            let q = Packet::decode(p.encode()).unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn prop_beat_count_matches_payload(len in 0usize..1024) {
            let p = Packet::write_req(0, 1, 0, 0, Bytes::from(vec![0u8; len]));
            let beats = p.beats();
            prop_assert_eq!(beats, 1 + (len as u64).div_ceil(BEAT_BYTES));
            prop_assert!(beats * BEAT_BYTES + BEAT_BYTES >= p.wire_bytes());
        }
    }
}
