//! # thymesim-fabric
//!
//! The ThymesisFlow-style hardware disaggregation fabric:
//!
//! * [`packet`] — the NIC's network encapsulation (header, checksum, beat
//!   accounting);
//! * [`xlate`] — borrower→lender address translation;
//! * [`credit`] — the bounded outstanding-transaction window that pins the
//!   bandwidth-delay product;
//! * [`engine`] — the transaction-level borrower-NIC → wire → lender-NIC
//!   path with the delay gate at the paper's exact insertion point;
//! * [`pipeline`] — the cycle-accurate AXI egress (routing → delay gate →
//!   TX mux) used to validate the engine;
//! * [`control`] — reservation, FPGA discovery, hot-plug attach/detach
//!   (including the PERIOD=10000 discovery-timeout failure);
//! * [`failure`] — machine-check monitoring and link-outage injection.

//! ```
//! use thymesim_fabric::*;
//! use thymesim_mem::{shared_dram, Addr, DramConfig, RemoteBackend};
//! use thymesim_sim::Time;
//!
//! // Reserve at the lender, attach with delay injection, fetch a line.
//! let mut engine = FabricEngine::new(
//!     FabricConfig { delay: DelaySpec::Period(100), ..FabricConfig::default() },
//!     shared_dram(DramConfig::default()),
//! );
//! let mut cp = ControlPlane::new(ControlConfig::default(), 8 << 30);
//! let res = cp.reserve(1 << 30).unwrap();
//! let report = cp.attach(&mut engine, Time::ZERO, 0, res).unwrap();
//! let done = engine.fetch_line(report.ready_at, Addr(4096));
//! assert!(done > report.ready_at);
//! ```

pub mod control;
pub mod credit;
pub mod engine;
pub mod failure;
pub mod packet;
pub mod pipeline;
pub mod reference;
pub mod xlate;

pub use control::{
    AttachError, AttachReport, ControlConfig, ControlPlane, ExtendError, NodeRole, Reservation,
    ReserveError,
};
pub use credit::CreditWindow;
pub use engine::{DelaySpec, FabricConfig, FabricEngine, FabricStats};
pub use failure::{CorruptionPlan, Crash, HealthMonitor, OutagePlan};
pub use packet::{DecodeError, Packet, PacketKind, BEAT_BYTES, HEADER_BYTES};
pub use pipeline::{EgressPipeline, IngressPipeline, DEST_CTRL, DEST_DATA, DEST_FILL, DEST_MMIO};
pub use reference::reference_completions;
pub use thymesim_net::{shared_link, SharedLink};
pub use xlate::{Segment, TranslationFault, XlateTable};
