//! NIC address translation.
//!
//! "Address translation is implemented to convert addresses at the
//! borrower node to corresponding addresses at the lender node" (§II-A).
//! The borrower's hot-plugged window may be stitched from several
//! reservations on the lender, so the table maps borrower-physical
//! segments to lender-physical bases.

use thymesim_mem::Addr;

/// One mapped segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Borrower-physical base of the segment.
    pub borrower_base: u64,
    /// Lender-physical base it maps to.
    pub lender_base: u64,
    /// Segment length in bytes.
    pub len: u64,
}

/// Translation failure: the address is not covered by any segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationFault(pub Addr);

/// The NIC's translation table (sorted, non-overlapping segments).
#[derive(Clone, Debug, Default)]
pub struct XlateTable {
    segments: Vec<Segment>,
}

impl XlateTable {
    pub fn new() -> XlateTable {
        XlateTable::default()
    }

    /// Insert a segment; panics on overlap with an existing one (the
    /// control plane must never double-map).
    pub fn map(&mut self, seg: Segment) {
        assert!(seg.len > 0, "empty segment");
        let end = seg
            .borrower_base
            .checked_add(seg.len)
            .expect("segment wraps");
        for s in &self.segments {
            let s_end = s.borrower_base + s.len;
            assert!(
                end <= s.borrower_base || seg.borrower_base >= s_end,
                "overlapping mapping: {seg:?} vs {s:?}"
            );
        }
        self.segments.push(seg);
        self.segments.sort_by_key(|s| s.borrower_base);
    }

    /// Remove the segment starting at `borrower_base`; true if found.
    pub fn unmap(&mut self, borrower_base: u64) -> bool {
        let before = self.segments.len();
        self.segments.retain(|s| s.borrower_base != borrower_base);
        self.segments.len() != before
    }

    /// Translate a borrower-physical address to lender-physical.
    pub fn translate(&self, a: Addr) -> Result<u64, TranslationFault> {
        // Binary search over sorted segment bases.
        let idx = self.segments.partition_point(|s| s.borrower_base <= a.0);
        if idx == 0 {
            return Err(TranslationFault(a));
        }
        let s = &self.segments[idx - 1];
        if a.0 < s.borrower_base + s.len {
            Ok(s.lender_base + (a.0 - s.borrower_base))
        } else {
            Err(TranslationFault(a))
        }
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_segment_translates() {
        let mut t = XlateTable::new();
        t.map(Segment {
            borrower_base: 0x1000_0000,
            lender_base: 0x8000,
            len: 0x1000,
        });
        assert_eq!(t.translate(Addr(0x1000_0000)), Ok(0x8000));
        assert_eq!(t.translate(Addr(0x1000_0FFF)), Ok(0x8FFF));
        assert_eq!(
            t.translate(Addr(0x1000_1000)),
            Err(TranslationFault(Addr(0x1000_1000)))
        );
        assert_eq!(
            t.translate(Addr(0xFFF_FFFF)),
            Err(TranslationFault(Addr(0xFFF_FFFF)))
        );
    }

    #[test]
    fn multiple_segments_stitch() {
        let mut t = XlateTable::new();
        t.map(Segment {
            borrower_base: 0,
            lender_base: 1 << 30,
            len: 4096,
        });
        t.map(Segment {
            borrower_base: 4096,
            lender_base: 1 << 20,
            len: 4096,
        });
        assert_eq!(t.translate(Addr(100)), Ok((1 << 30) + 100));
        assert_eq!(t.translate(Addr(5000)), Ok((1 << 20) + 904));
        assert_eq!(t.mapped_bytes(), 8192);
    }

    #[test]
    #[should_panic(expected = "overlapping mapping")]
    fn overlap_rejected() {
        let mut t = XlateTable::new();
        t.map(Segment {
            borrower_base: 0,
            lender_base: 0,
            len: 8192,
        });
        t.map(Segment {
            borrower_base: 4096,
            lender_base: 1 << 20,
            len: 4096,
        });
    }

    #[test]
    fn unmap_removes_translation() {
        let mut t = XlateTable::new();
        t.map(Segment {
            borrower_base: 0,
            lender_base: 0,
            len: 4096,
        });
        assert!(t.unmap(0));
        assert!(!t.unmap(0));
        assert!(t.translate(Addr(0)).is_err());
    }

    proptest! {
        /// Translation is a bijection on mapped ranges: distinct borrower
        /// addresses map to distinct lender addresses within a segment.
        #[test]
        fn prop_translation_is_offset_preserving(
            base in 0u64..1 << 40,
            lbase in 0u64..1 << 40,
            len in 1u64..1 << 20,
            off1 in 0u64..1 << 20,
            off2 in 0u64..1 << 20,
        ) {
            prop_assume!(off1 < len && off2 < len && off1 != off2);
            let mut t = XlateTable::new();
            t.map(Segment { borrower_base: base, lender_base: lbase, len });
            let a = t.translate(Addr(base + off1)).unwrap();
            let b = t.translate(Addr(base + off2)).unwrap();
            prop_assert_ne!(a, b);
            prop_assert_eq!(a - lbase, off1);
            prop_assert_eq!(b - lbase, off2);
        }
    }
}
