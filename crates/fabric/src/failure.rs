//! Failure modes and health monitoring.
//!
//! §IV-C probes the resilience limits of the stack: very high injected
//! delay eventually trips discovery timeouts ("the compute-side FPGA is no
//! longer detected"), and a sufficiently stalled load would machine-check
//! the core. The monitor records the first fatal event; experiments query
//! it after (or during) a run. Link outages model the "link repair"
//! reliability failures that motivate delay injection in the first place.

use thymesim_sim::{Dur, Time};

/// A fatal system event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crash {
    /// A single memory access exceeded the processor's load timeout:
    /// checkstop / machine-check.
    MachineCheck { at: Time, latency: Dur },
    /// The control plane could not complete FPGA discovery in time; the
    /// disaggregated memory cannot be attached.
    AttachTimeout { elapsed: Dur, budget: Dur },
    /// A message exhausted its retransmission budget: the link is
    /// declared dead.
    LinkDead { at: Time, retries: u32 },
}

/// Watches access latencies and records the first fatal event.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    /// Latency beyond which a blocking load machine-checks the core.
    /// POWER9's hung-load checkstop fires on the order of 10^2 ms.
    pub machine_check_threshold: Dur,
    crashed: Option<Crash>,
    /// Worst access latency observed.
    pub worst_latency: Dur,
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor {
            machine_check_threshold: Dur::ms(100),
            crashed: None,
            worst_latency: Dur::ZERO,
        }
    }
}

impl HealthMonitor {
    pub fn new(machine_check_threshold: Dur) -> HealthMonitor {
        HealthMonitor {
            machine_check_threshold,
            ..HealthMonitor::default()
        }
    }

    /// Record a completed access; returns the crash if this one was fatal.
    pub fn observe(&mut self, done: Time, latency: Dur) -> Option<Crash> {
        if latency > self.worst_latency {
            self.worst_latency = latency;
        }
        if self.crashed.is_none() && latency > self.machine_check_threshold {
            self.crashed = Some(Crash::MachineCheck { at: done, latency });
        }
        self.crashed
    }

    pub fn record_crash(&mut self, c: Crash) {
        if self.crashed.is_none() {
            self.crashed = Some(c);
        }
    }

    pub fn crashed(&self) -> Option<Crash> {
        self.crashed
    }

    pub fn is_healthy(&self) -> bool {
        self.crashed.is_none()
    }
}

/// Scheduled link outages (e.g. a link flap followed by repair).
/// Traffic arriving during an outage is stalled until the link is back.
#[derive(Clone, Debug, Default)]
pub struct OutagePlan {
    /// Sorted, non-overlapping `(down_from, up_at)` windows.
    windows: Vec<(Time, Time)>,
}

impl OutagePlan {
    pub fn new() -> OutagePlan {
        OutagePlan::default()
    }

    pub fn add(&mut self, down_from: Time, up_at: Time) {
        assert!(up_at > down_from, "outage must have positive length");
        for &(f, u) in &self.windows {
            assert!(up_at <= f || down_from >= u, "overlapping outages");
        }
        self.windows.push((down_from, up_at));
        self.windows.sort_by_key(|w| w.0);
    }

    /// Earliest instant at or after `t` when the link is up.
    pub fn next_up(&self, t: Time) -> Time {
        for &(from, until) in &self.windows {
            if t >= from && t < until {
                return until;
            }
            if t < from {
                break;
            }
        }
        t
    }

    /// Total downtime scheduled.
    pub fn total_downtime(&self) -> Dur {
        self.windows.iter().map(|&(f, u)| u - f).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Random single-message corruption: each wire message is corrupted with
/// probability `ber_per_message`; the receiver's checksum (see
/// [`crate::packet`]) detects it and the sender retransmits, costing a
/// full extra traversal. Models the marginal-link failures that delay
/// injection is meant to stand in for.
#[derive(Clone, Debug)]
pub struct CorruptionPlan {
    ber_per_message: f64,
    rng: thymesim_sim::Xoshiro256,
    /// Messages corrupted (and retransmitted) so far.
    pub corrupted: u64,
    /// Maximum consecutive retransmissions before the link is declared
    /// dead (a crash).
    pub max_retries: u32,
}

impl CorruptionPlan {
    pub fn new(ber_per_message: f64, seed: u64) -> CorruptionPlan {
        assert!((0.0..1.0).contains(&ber_per_message));
        CorruptionPlan {
            ber_per_message,
            rng: thymesim_sim::Xoshiro256::seed_from_u64(seed),
            corrupted: 0,
            max_retries: 8,
        }
    }

    /// How many retransmissions this message suffers (0 = clean).
    /// Returns `None` if the retry budget is exhausted (link declared
    /// dead).
    pub fn retries(&mut self) -> Option<u32> {
        let mut n = 0;
        while self.rng.chance(self.ber_per_message) {
            n += 1;
            self.corrupted += 1;
            if n > self.max_retries {
                return None;
            }
        }
        Some(n)
    }

    pub fn is_nil(&self) -> bool {
        self.ber_per_message == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_passes_normal_latencies() {
        let mut m = HealthMonitor::default();
        assert!(m.observe(Time::us(1), Dur::us(1)).is_none());
        assert!(m.observe(Time::ms(1), Dur::ms(4)).is_none());
        assert!(m.is_healthy());
        assert_eq!(m.worst_latency, Dur::ms(4));
    }

    #[test]
    fn monitor_machine_checks_on_hung_load() {
        let mut m = HealthMonitor::new(Dur::ms(100));
        let c = m.observe(Time::secs(1), Dur::ms(150));
        match c {
            Some(Crash::MachineCheck { latency, .. }) => assert_eq!(latency, Dur::ms(150)),
            other => panic!("expected machine check, got {other:?}"),
        }
        assert!(!m.is_healthy());
    }

    #[test]
    fn first_crash_wins() {
        let mut m = HealthMonitor::new(Dur::ms(1));
        m.observe(Time::ms(10), Dur::ms(2));
        let first = m.crashed();
        m.observe(Time::ms(20), Dur::ms(50));
        assert_eq!(m.crashed(), first, "later crashes must not overwrite");
        m.record_crash(Crash::AttachTimeout {
            elapsed: Dur::ms(1),
            budget: Dur::ms(1),
        });
        assert_eq!(m.crashed(), first);
    }

    #[test]
    fn outage_stalls_traffic_inside_window() {
        let mut o = OutagePlan::new();
        o.add(Time::us(10), Time::us(50));
        assert_eq!(o.next_up(Time::us(5)), Time::us(5));
        assert_eq!(o.next_up(Time::us(10)), Time::us(50));
        assert_eq!(o.next_up(Time::us(49)), Time::us(50));
        assert_eq!(o.next_up(Time::us(50)), Time::us(50));
        assert_eq!(o.total_downtime(), Dur::us(40));
    }

    #[test]
    fn multiple_outages_resolve_independently() {
        let mut o = OutagePlan::new();
        o.add(Time::us(100), Time::us(110));
        o.add(Time::us(10), Time::us(20));
        assert_eq!(o.next_up(Time::us(15)), Time::us(20));
        assert_eq!(o.next_up(Time::us(105)), Time::us(110));
        assert_eq!(o.next_up(Time::us(60)), Time::us(60));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_outages_rejected() {
        let mut o = OutagePlan::new();
        o.add(Time::us(10), Time::us(30));
        o.add(Time::us(20), Time::us(40));
    }

    #[test]
    fn corruption_rate_matches_configuration() {
        let mut c = CorruptionPlan::new(0.05, 42);
        let n = 100_000;
        let mut total_retries = 0u64;
        for _ in 0..n {
            total_retries += c.retries().expect("budget not exhausted") as u64;
        }
        let rate = total_retries as f64 / n as f64;
        // Expected retries/message = p/(1-p) ≈ 0.0526.
        assert!((0.045..0.06).contains(&rate), "retry rate {rate}");
        assert_eq!(c.corrupted, total_retries);
    }

    #[test]
    fn zero_ber_is_clean() {
        let mut c = CorruptionPlan::new(0.0, 1);
        assert!(c.is_nil());
        for _ in 0..1000 {
            assert_eq!(c.retries(), Some(0));
        }
    }

    #[test]
    fn pathological_ber_exhausts_the_budget() {
        let mut c = CorruptionPlan::new(0.999, 7);
        let mut died = false;
        for _ in 0..100 {
            if c.retries().is_none() {
                died = true;
                break;
            }
        }
        assert!(died, "a ~1.0 BER must exhaust the retry budget");
    }
}
