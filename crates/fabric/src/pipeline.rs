//! Cycle-accurate model of the borrower NIC egress, mirroring the exact
//! insertion point of the delay module: "we introduce an additional module
//! between the routing and multiplexer modules at the compute node egress"
//! (§III-B).
//!
//! ```text
//!                        ┌────────────┐
//!            ┌─ data ──▶ │ DELAY GATE │ ──┐
//! routing ───┤           └────────────┘   ├──▶ TX mux ──▶ monitor ──▶ wire
//! (demux)    └─ ctrl ────────────────────-┘
//! ```
//!
//! Only the memory-traffic path is gated; control traffic bypasses the
//! injector, exactly as in the hardware design. The transaction-level
//! engine is validated against this pipeline in the crate tests.

use thymesim_axi::{
    Beat, Consumer, DestDemux, Fifo, Monitor, MonitorHandle, Producer, ReadyPattern, RoundRobinMux,
    SinkRecord, StreamSim,
};
use thymesim_delay::{ConstPeriod, CycleDelayGate};

/// Destination tag for gated memory traffic.
pub const DEST_DATA: u8 = 0;
/// Destination tag for ungated control traffic.
pub const DEST_CTRL: u8 = 1;

/// Handles into a built egress pipeline.
pub struct EgressPipeline {
    pub sim: StreamSim,
    /// Beats observed after the TX mux (i.e. on the wire).
    pub wire_monitor: MonitorHandle,
    /// Everything delivered, with delivery cycles.
    pub delivered: SinkRecord,
}

impl EgressPipeline {
    /// Build the egress with the given delay PERIOD and a traffic script.
    /// Beat `dest` selects the path: [`DEST_DATA`] is gated,
    /// [`DEST_CTRL`] bypasses.
    pub fn build(period: u64, script: Vec<Beat>) -> EgressPipeline {
        let mut sim = StreamSim::new();
        let src = sim.add(Producer::new(script));
        let routing = sim.add(DestDemux::new(2));
        let gate = sim.add(CycleDelayGate::new(ConstPeriod(period)));
        let mux = sim.add(RoundRobinMux::new(2));
        let (mon, wire_monitor) = Monitor::new();
        let mon = sim.add(mon);
        let (sink, delivered) = Consumer::new(ReadyPattern::Always);
        let sink = sim.add(sink);

        sim.connect(src, 0, routing, 0);
        sim.connect(routing, DEST_DATA as usize, gate, 0);
        sim.connect(gate, 0, mux, 0);
        sim.connect(routing, DEST_CTRL as usize, mux, 1);
        sim.connect(mux, 0, mon, 0);
        sim.connect(mon, 0, sink, 0);

        EgressPipeline {
            sim,
            wire_monitor,
            delivered,
        }
    }

    /// Run until all `expected` beats are on the wire or `max_cycles` pass.
    /// Returns the number delivered.
    pub fn run_until_drained(&mut self, expected: usize, max_cycles: u64) -> usize {
        let mut cycles = 0;
        while self.delivered.borrow().len() < expected && cycles < max_cycles {
            self.sim.tick();
            cycles += 1;
        }
        let delivered = self.delivered.borrow().len();
        thymesim_telemetry::add("pipeline.delivered_beats", delivered as u64);
        thymesim_telemetry::add("pipeline.cycles", cycles);
        delivered
    }
}

/// Destination tag for read responses on the ingress (cache-fill port).
pub const DEST_FILL: u8 = 0;
/// Destination tag for config responses / write acks (MMIO port).
pub const DEST_MMIO: u8 = 1;

/// Cycle-accurate borrower NIC ingress: the RX wire feeds a depacketizer
/// FIFO, then a router steers read responses to the cache-fill port and
/// control responses to the MMIO port.
///
/// ```text
/// wire ──▶ RX FIFO ──▶ routing ──┬─ fill ──▶ cache-fill port
/// (demux by kind)                └─ mmio ──▶ MMIO port
/// ```
pub struct IngressPipeline {
    pub sim: StreamSim,
    pub rx_monitor: MonitorHandle,
    pub filled: SinkRecord,
    pub mmio: SinkRecord,
}

impl IngressPipeline {
    /// `fill_ready` models the cache-fill port's acceptance pattern (the
    /// LLC can stall fills while handling demand traffic).
    pub fn build(script: Vec<Beat>, fill_ready: ReadyPattern) -> IngressPipeline {
        let mut sim = StreamSim::new();
        let wire = sim.add(Producer::new(script));
        let (mon, rx_monitor) = Monitor::new();
        let mon = sim.add(mon);
        let rx_fifo = sim.add(Fifo::new(8));
        let routing = sim.add(DestDemux::new(2));
        let (fill_sink, filled) = Consumer::new(fill_ready);
        let fill_sink = sim.add(fill_sink);
        let (mmio_sink, mmio) = Consumer::new(ReadyPattern::Always);
        let mmio_sink = sim.add(mmio_sink);

        sim.connect(wire, 0, mon, 0);
        sim.connect(mon, 0, rx_fifo, 0);
        sim.connect(rx_fifo, 0, routing, 0);
        sim.connect(routing, DEST_FILL as usize, fill_sink, 0);
        sim.connect(routing, DEST_MMIO as usize, mmio_sink, 0);

        IngressPipeline {
            sim,
            rx_monitor,
            filled,
            mmio,
        }
    }

    pub fn run_until_drained(&mut self, expected: usize, max_cycles: u64) -> usize {
        let mut cycles = 0;
        while self.filled.borrow().len() + self.mmio.borrow().len() < expected
            && cycles < max_cycles
        {
            self.sim.tick();
            cycles += 1;
        }
        let delivered = self.filled.borrow().len() + self.mmio.borrow().len();
        thymesim_telemetry::add("pipeline.delivered_beats", delivered as u64);
        thymesim_telemetry::add("pipeline.cycles", cycles);
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: u64) -> Vec<Beat> {
        (0..n).map(|i| Beat::new(i).with_dest(DEST_DATA)).collect()
    }

    #[test]
    fn all_beats_reach_the_wire_exactly_once() {
        let mut p = EgressPipeline::build(3, data(50));
        let delivered = p.run_until_drained(50, 10_000);
        assert_eq!(delivered, 50);
        let got = p.delivered.borrow();
        let mut datas: Vec<u64> = got.iter().map(|(_, b)| b.data).collect();
        datas.sort_unstable();
        assert_eq!(datas, (0..50).collect::<Vec<_>>(), "loss or duplication");
        assert_eq!(p.wire_monitor.borrow().beats, 50);
    }

    #[test]
    fn data_path_is_paced_by_period() {
        let period = 10;
        let mut p = EgressPipeline::build(period, data(20));
        p.run_until_drained(20, 10_000);
        let got = p.delivered.borrow();
        // Deliveries (after the mux's one-cycle grant latency) must be
        // spaced at least PERIOD apart.
        for w in got.windows(2) {
            assert!(
                w[1].0 - w[0].0 >= period,
                "beats {} cycles apart, PERIOD={period}",
                w[1].0 - w[0].0
            );
        }
    }

    #[test]
    fn control_path_bypasses_the_gate() {
        // Alternate data and control beats. Data is gated at PERIOD=50;
        // each control beat, once past the (FIFO) routing stage, must flow
        // straight through the bypass instead of waiting ~50 cycles for
        // the next gate slot.
        let mut script = Vec::new();
        for i in 0..5u64 {
            script.push(Beat::new(i).with_dest(DEST_DATA));
            script.push(Beat::new(1000 + i).with_dest(DEST_CTRL));
        }
        let mut p = EgressPipeline::build(50, script);
        p.run_until_drained(10, 100_000);
        let got = p.delivered.borrow();
        assert_eq!(got.len(), 10);
        let data_cycles: Vec<u64> = got
            .iter()
            .filter(|(_, b)| b.dest == DEST_DATA)
            .map(|(c, _)| *c)
            .collect();
        let ctrl_cycles: Vec<u64> = got
            .iter()
            .filter(|(_, b)| b.dest == DEST_CTRL)
            .map(|(c, _)| *c)
            .collect();
        // Data beats are spaced by the gate.
        for w in data_cycles.windows(2) {
            assert!(w[1] - w[0] >= 50, "data not gated: {data_cycles:?}");
        }
        // Each control beat follows its preceding data beat within a few
        // cycles (demux + mux), far less than one PERIOD.
        for (d, c) in data_cycles.iter().zip(&ctrl_cycles) {
            assert!(c > d, "ctrl beat enqueued after its data beat");
            assert!(
                c - d <= 5,
                "ctrl beat waited {} cycles — it went through the gate (data {:?}, ctrl {:?})",
                c - d,
                data_cycles,
                ctrl_cycles
            );
        }
    }

    #[test]
    fn period_one_matches_vanilla_throughput() {
        // With PERIOD=1 the pipeline sustains one beat per cycle after the
        // fill, i.e. the gate is invisible (vanilla ThymesisFlow).
        let mut p = EgressPipeline::build(1, data(100));
        p.run_until_drained(100, 1_000);
        let got = p.delivered.borrow();
        assert_eq!(got.len(), 100);
        let span = got.last().unwrap().0 - got.first().unwrap().0;
        assert_eq!(span, 99, "must stream back-to-back at PERIOD=1");
    }

    #[test]
    fn cycle_pipeline_matches_analytic_gate_grants() {
        // Saturated data traffic through the full egress (demux → gate →
        // mux) must deliver beats at exactly the analytic gate's grant
        // spacing — validating the transaction-level engine's hot path
        // against the cycle-accurate hardware model, mux and all.
        use thymesim_delay::AnalyticGate;
        use thymesim_sim::Clock;
        let period = 13u64;
        let n = 40u64;
        let mut p = EgressPipeline::build(period, data(n));
        p.run_until_drained(n as usize, 100_000);
        let got: Vec<u64> = p.delivered.borrow().iter().map(|(c, _)| *c).collect();
        assert_eq!(got.len(), n as usize);

        let mut gate = AnalyticGate::new(thymesim_delay::ConstPeriod(period), Clock::mhz(250));
        let mut expected = Vec::new();
        for _ in 0..n {
            expected.push(gate.grant_cycle(0));
        }
        // The mux adds a constant pass-through offset; spacing must match
        // grant-for-grant.
        let d_got: Vec<u64> = got.windows(2).map(|w| w[1] - w[0]).collect();
        let d_exp: Vec<u64> = expected.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(d_got, d_exp, "cycle-level spacing diverged from analytic");
    }

    #[test]
    fn no_protocol_violations_under_heavy_gating() {
        let mut p = EgressPipeline::build(97, data(10));
        p.run_until_drained(10, 100_000);
        assert!(p.sim.violations().is_empty());
    }
}
#[cfg(test)]
mod ingress_tests {
    use super::*;

    fn mixed(n: u64) -> Vec<Beat> {
        (0..n)
            .map(|i| Beat::new(i).with_dest(if i % 4 == 3 { DEST_MMIO } else { DEST_FILL }))
            .collect()
    }

    #[test]
    fn routes_fills_and_mmio_separately() {
        let mut p = IngressPipeline::build(mixed(40), ReadyPattern::Always);
        let got = p.run_until_drained(40, 10_000);
        assert_eq!(got, 40);
        assert_eq!(p.filled.borrow().len(), 30);
        assert_eq!(p.mmio.borrow().len(), 10);
        assert_eq!(p.rx_monitor.borrow().beats, 40);
        assert!(p.sim.violations().is_empty());
    }

    #[test]
    fn responses_stay_in_order_through_the_fifo() {
        let mut p = IngressPipeline::build(mixed(64), ReadyPattern::EveryK(3));
        p.run_until_drained(64, 10_000);
        let filled = p.filled.borrow();
        for w in filled.windows(2) {
            assert!(w[1].1.data > w[0].1.data, "fills reordered");
        }
    }

    #[test]
    fn stalled_fill_port_backpressures_the_wire() {
        // Fill port never ready: the RX FIFO (depth 8) fills, then the
        // wire stalls — no beats are dropped.
        let mut p = IngressPipeline::build(mixed(40), ReadyPattern::Never);
        p.run_until_drained(40, 2_000);
        // Only MMIO traffic *behind* the first stuck fill beat is blocked
        // too (head-of-line in the shared FIFO): nothing is lost, the
        // monitor counts exactly what entered.
        let entered = p.rx_monitor.borrow().beats;
        assert!(
            entered <= 10,
            "wire must stall once buffers fill: {entered}"
        );
        assert_eq!(p.filled.borrow().len(), 0);
        assert!(p.sim.violations().is_empty());
    }
}
