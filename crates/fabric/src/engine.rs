//! The transaction-level remote-access engine: the borrower NIC, the wire,
//! and the lender NIC, end to end.
//!
//! A remote cache miss follows the paper's Figure 1 path:
//!
//! ```text
//! credit → egress pipeline (route/translate/packetize) → DELAY GATE →
//! TX link → lender NIC → lender memory bus/DRAM → RX link → ingress →
//! credit release
//! ```
//!
//! The delay gate sits exactly where the paper inserted it — after routing,
//! before the TX multiplexer — so *only outgoing traffic* is delayed.
//! Messages are accounted by their real wire sizes ([`crate::packet`]) and
//! AXI beat counts; the hot path allocates nothing.

use crate::credit::CreditWindow;
use crate::failure::{CorruptionPlan, Crash, HealthMonitor, OutagePlan};
use crate::packet::{PacketKind, HEADER_BYTES};
use crate::xlate::XlateTable;
use thymesim_delay::{AnalyticGate, ConstPeriod, DelayDist, DistGate, PiecewisePeriod};
use thymesim_mem::{Addr, RemoteBackend, SharedDram};
use thymesim_net::{LinkConfig, SerialLink, SharedLink};
use thymesim_sim::{Clock, Dur, Histogram, Time};

/// What the delay injector does this run.
#[derive(Clone, Debug, serde::Serialize)]
pub enum DelaySpec {
    /// The paper's knob: one beat per PERIOD FPGA cycles (PERIOD = 1 is
    /// the vanilla prototype).
    Period(u64),
    /// PERIOD changes over the run: `(from_cycle, period)` steps.
    Piecewise(Vec<(u64, u64)>),
    /// Future-work mode: per-message delay drawn from a distribution.
    PerMessage { dist: DelayDist, seed: u64 },
}

impl Default for DelaySpec {
    fn default() -> Self {
        DelaySpec::Period(1)
    }
}

enum Gate {
    Const(AnalyticGate<ConstPeriod>),
    Piecewise(AnalyticGate<PiecewisePeriod>),
    Dist(DistGate),
}

impl Gate {
    fn new(spec: &DelaySpec, clock: Clock) -> Gate {
        match spec {
            DelaySpec::Period(p) => {
                assert!(*p >= 1, "PERIOD must be >= 1");
                Gate::Const(AnalyticGate::new(ConstPeriod(*p), clock))
            }
            DelaySpec::Piecewise(steps) => Gate::Piecewise(AnalyticGate::new(
                PiecewisePeriod::new(steps.clone()),
                clock,
            )),
            DelaySpec::PerMessage { dist, seed } => Gate::Dist(DistGate::new(dist.clone(), *seed)),
        }
    }

    /// Pass a message of `beats` beats arriving at `at`.
    fn pass(&mut self, at: Time, beats: u64) -> Time {
        match self {
            Gate::Const(g) => g.pass_message(at, beats),
            Gate::Piecewise(g) => g.pass_message(at, beats),
            // Distribution mode delays whole messages.
            Gate::Dist(g) => g.pass(at),
        }
    }
}

/// Fabric configuration (defaults reproduce the two-node prototype).
#[derive(Clone, Debug, serde::Serialize)]
pub struct FabricConfig {
    /// FPGA clock of the NIC (AlphaData 9V3 design: 250 MHz → 4 ns).
    pub fpga_clock: Clock,
    /// Maximum outstanding read transactions (OpenCAPI credits). Fixes the
    /// bandwidth-delay product at `window × line` ≈ 16 KiB.
    pub window: usize,
    /// Delay-injection setting.
    pub delay: DelaySpec,
    /// Borrower egress pipeline: routing, translation, packetization.
    pub egress_latency: Dur,
    /// Lender NIC processing (each direction).
    pub lender_nic_latency: Dur,
    /// Borrower ingress pipeline: depacketize, cache-line fill.
    pub ingress_latency: Dur,
    /// The wire (100 Gb/s copper in the prototype).
    pub link: LinkConfig,
    /// Cache-line size moved per transaction.
    pub line_bytes: u64,
    /// Whether posted write-backs pass through the delay gate (the
    /// hardware routes all egress through it; `false` is an ablation that
    /// delays only demand reads).
    pub gate_writebacks: bool,
    /// Non-posted writes: every write-back waits for a WriteAck and holds
    /// a window credit, like a strongly-ordered coherence mode. The
    /// prototype posts writes; `true` is an ablation.
    pub acked_writes: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            fpga_clock: Clock::mhz(250),
            window: 128,
            delay: DelaySpec::Period(1),
            egress_latency: Dur::ns(400),
            lender_nic_latency: Dur::ns(150),
            ingress_latency: Dur::ns(250),
            link: LinkConfig::copper_100g(),
            line_bytes: 128,
            gate_writebacks: true,
            acked_writes: false,
        }
    }
}

impl FabricConfig {
    /// A CXL-flavoured configuration, for the comparison §V calls for.
    ///
    /// Differences from the OpenCAPI/Ethernet prototype it captures:
    /// native switched flits instead of Ethernet encapsulation (shorter
    /// protocol pipelines, ~3x lower port-to-port latency) and 64-byte
    /// physical-addressed flits on a x8 lane group (~32 GB/s per
    /// direction, less than the 100 Gb/s NIC but with a far lower
    /// latency floor). The delay injector applies identically — it gates
    /// transactions, whatever the transport.
    pub fn cxl() -> FabricConfig {
        FabricConfig {
            // CXL ASIC port latency is tens of ns, not FPGA hundreds.
            egress_latency: Dur::ns(60),
            lender_nic_latency: Dur::ns(40),
            ingress_latency: Dur::ns(50),
            link: LinkConfig {
                bits_per_sec: 256e9, // x8 PCIe5-class lanes
                propagation: Dur::ns(30),
            },
            ..FabricConfig::default()
        }
    }
}

/// Aggregate fabric counters for an experiment run.
#[derive(Clone, Debug, Default)]
pub struct FabricStats {
    pub reads: u64,
    pub writebacks: u64,
    pub config_reads: u64,
    /// End-to-end latency of demand reads (credit wait included).
    pub read_latency: Histogram,
    /// Transactions (grant slots) that crossed the delay gate.
    pub gate_beats: u64,
}

/// The remote-memory engine plugged into the borrower's
/// [`thymesim_mem::MemSystem`].
pub struct FabricEngine {
    cfg: FabricConfig,
    pub xlate: XlateTable,
    window: CreditWindow,
    gate: Gate,
    tx: SerialLink,
    rx: SerialLink,
    /// Does this engine own the point's `fabric.outstanding_reads`
    /// counter track (first engine constructed in the point)?
    reads_tracked: bool,
    /// Shared fabric segments after the access link (switch hops toward
    /// the lender) — beyond-rack topologies. Each hop adds forwarding
    /// latency plus shared serialization.
    route_out: Vec<SharedLink>,
    /// The return route (lender back to borrower).
    route_back: Vec<SharedLink>,
    /// Cut-through forwarding latency per switch hop.
    hop_latency: Dur,
    lender_bus: SharedDram,
    pub health: HealthMonitor,
    pub outages: OutagePlan,
    /// Optional wire-corruption injector (checksum-detected, retried).
    pub corruption: Option<CorruptionPlan>,
    pub stats: FabricStats,
    attached: bool,
    next_tag: u32,
}

impl FabricEngine {
    pub fn new(cfg: FabricConfig, lender_bus: SharedDram) -> FabricEngine {
        let gate = Gate::new(&cfg.delay, cfg.fpga_clock);
        // Exclusively claimed per point: with several engines in one
        // point (congestion pairs) only the first records, keeping the
        // level within its bound and link fractions within [0, 1].
        let reads_tracked = thymesim_telemetry::claim("fabric.outstanding_reads") == 0;
        if reads_tracked {
            thymesim_telemetry::counter_bound("fabric.outstanding_reads", cfg.window as u64);
        }
        FabricEngine {
            window: CreditWindow::new(cfg.window),
            gate,
            reads_tracked,
            tx: SerialLink::new(cfg.link).with_track("net.link_busy.tx"),
            rx: SerialLink::new(cfg.link).with_track("net.link_busy.rx"),
            lender_bus,
            health: HealthMonitor::default(),
            outages: OutagePlan::new(),
            corruption: None,
            stats: FabricStats::default(),
            attached: false,
            xlate: XlateTable::new(),
            next_tag: 0,
            route_out: Vec::new(),
            route_back: Vec::new(),
            hop_latency: Dur::ns(300),
            cfg,
        }
    }

    /// Route this engine's traffic through one shared switched segment
    /// (both directions), as in an oversubscribed beyond-rack fabric.
    pub fn set_shared_fabric(&mut self, uplink: SharedLink, downlink: SharedLink) {
        self.set_route(vec![uplink], vec![downlink], Dur::ns(300));
    }

    /// Route through an arbitrary multi-hop switched path: `out` hops
    /// toward the lender, `back` hops toward the borrower, each paying
    /// `hop_latency` of forwarding plus shared serialization.
    pub fn set_route(&mut self, out: Vec<SharedLink>, back: Vec<SharedLink>, hop_latency: Dur) {
        self.route_out = out;
        self.route_back = back;
        self.hop_latency = hop_latency;
    }

    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Reconfigure the delay injector at runtime (the FPGA module's PERIOD
    /// register is writable between experiments without re-attaching).
    /// Grant history restarts from the new specification.
    pub fn set_delay(&mut self, delay: DelaySpec) {
        self.gate = Gate::new(&delay, self.cfg.fpga_clock);
        self.cfg.delay = delay;
    }

    pub fn is_attached(&self) -> bool {
        self.attached
    }

    pub(crate) fn set_attached(&mut self, v: bool) {
        self.attached = v;
    }

    pub fn tx_link(&self) -> &SerialLink {
        &self.tx
    }

    pub fn rx_link(&self) -> &SerialLink {
        &self.rx
    }

    pub fn window(&self) -> &CreditWindow {
        &self.window
    }

    fn alloc_tag(&mut self) -> u32 {
        let t = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        t
    }

    /// One-way trip of a message from the borrower egress to lender
    /// memory completion. Returns (arrival at lender NIC, data ready).
    ///
    /// The delay gate operates at *transaction* granularity, as the paper
    /// specifies ("a transaction is allowed to proceed once every PERIOD
    /// cycles"): each outbound message consumes one grant slot, whatever
    /// its beat count; the wire still charges the full byte length.
    fn outbound(&mut self, at: Time, kind: PacketKind) -> (Time, Time) {
        let wire = match kind {
            PacketKind::ReadReq | PacketKind::ConfigRead => HEADER_BYTES,
            PacketKind::WriteReq => HEADER_BYTES + self.cfg.line_bytes,
            other => panic!("outbound() does not send {other:?}"),
        };
        let t_pipe = at + self.cfg.egress_latency;
        thymesim_telemetry::latency("fabric.egress", self.cfg.egress_latency);
        let gated = kind != PacketKind::WriteReq || self.cfg.gate_writebacks;
        let t_gate = if gated {
            self.stats.gate_beats += 1;
            let t = self.gate.pass(t_pipe, 1);
            thymesim_telemetry::latency("fabric.gate_wait", t - t_pipe);
            t
        } else {
            t_pipe
        };
        // Checksum-detected corruption: each retransmission repeats the
        // gate grant and the wire traversal.
        let attempts = 1 + match self.corruption.as_mut() {
            Some(c) => c.retries().unwrap_or_else(|| {
                self.health.record_crash(Crash::LinkDead {
                    at: t_gate,
                    retries: c.max_retries,
                });
                c.max_retries
            }),
            None => 0,
        };
        let mut t_last_gate = t_gate;
        let mut t = Time::ZERO;
        for attempt in 0..attempts {
            if attempt > 0 {
                // The retransmission re-arbitrates at the gate.
                t_last_gate = self.gate.pass(t, 1);
                self.stats.gate_beats += 1;
            }
            let t_wire = self.outages.next_up(t_last_gate);
            t = self.tx.send(t_wire, wire);
            for hop in &self.route_out {
                t = hop.borrow_mut().send(t + self.hop_latency, wire);
            }
        }
        let t_arrive = t + self.cfg.lender_nic_latency;
        thymesim_telemetry::latency("fabric.wire_out", t_arrive - t_last_gate);
        (t_last_gate, t_arrive)
    }

    /// Return path: lender NIC → RX link → borrower ingress.
    fn inbound(&mut self, at: Time, wire_bytes: u64) -> Time {
        let t_wire = self.outages.next_up(at + self.cfg.lender_nic_latency);
        let mut t = self.rx.send(t_wire, wire_bytes);
        for hop in &self.route_back {
            t = hop.borrow_mut().send(t + self.hop_latency, wire_bytes);
        }
        t + self.cfg.ingress_latency
    }

    /// Full config-read round trip (control plane discovery); bypasses the
    /// credit window — MMIO reads are strictly sequential anyway.
    pub fn config_rtt(&mut self, at: Time) -> Time {
        self.stats.config_reads += 1;
        let _tag = self.alloc_tag();
        let (_, t_lender) = self.outbound(at, PacketKind::ConfigRead);
        // Config registers answer from the FPGA itself: no DRAM access.
        self.inbound(t_lender, HEADER_BYTES)
    }
}

impl RemoteBackend for FabricEngine {
    fn fetch_line(&mut self, at: Time, addr: Addr) -> Time {
        assert!(
            self.attached,
            "remote fetch of {addr:?} before disaggregated memory was attached"
        );
        let _lender_off = self
            .xlate
            .translate(addr)
            .unwrap_or_else(|f| panic!("NIC translation fault: {f:?}"));
        let _tag = self.alloc_tag();
        self.stats.reads += 1;
        thymesim_telemetry::add("fabric.reads", 1);

        let t0 = self.window.acquire(at);
        let (_, t_lender) = self.outbound(t0, PacketKind::ReadReq);
        let t_data = {
            let mut bus = self.lender_bus.borrow_mut();
            bus.access(t_lender, addr, self.cfg.line_bytes).done
        };
        thymesim_telemetry::latency("fabric.lender_bus", t_data - t_lender);
        let done = self.inbound(t_data, HEADER_BYTES + self.cfg.line_bytes);
        thymesim_telemetry::latency("fabric.return", done - t_data);
        self.window.complete_at(done);
        thymesim_telemetry::span("fabric", "read", at, done);
        // Unit level segments over [admit, done) sum to the in-flight count.
        if self.reads_tracked {
            thymesim_telemetry::counter_level("fabric.outstanding_reads", t0, done, 1);
        }

        let latency = done - at;
        self.stats.read_latency.record(latency.as_ps());
        self.health.observe(done, latency);
        done
    }

    fn writeback_line(&mut self, at: Time, addr: Addr) {
        assert!(
            self.attached,
            "remote writeback of {addr:?} before disaggregated memory was attached"
        );
        let _lender_off = self
            .xlate
            .translate(addr)
            .unwrap_or_else(|f| panic!("NIC translation fault: {f:?}"));
        self.stats.writebacks += 1;
        thymesim_telemetry::add("fabric.writebacks", 1);
        if self.cfg.acked_writes {
            // Strongly-ordered mode: the write takes a credit, completes at
            // the lender, and returns an ack before the credit frees.
            let t0 = self.window.acquire(at);
            let (_, t_lender) = self.outbound(t0, PacketKind::WriteReq);
            let t_data = {
                let mut bus = self.lender_bus.borrow_mut();
                bus.access(t_lender, addr, self.cfg.line_bytes).done
            };
            let done = self.inbound(t_data, HEADER_BYTES);
            self.window.complete_at(done);
        } else {
            // Posted: occupies the gate, the wire, and the lender bus, but
            // the evicting access does not wait for it.
            let (_, t_lender) = self.outbound(at, PacketKind::WriteReq);
            let mut bus = self.lender_bus.borrow_mut();
            bus.access(t_lender, addr, self.cfg.line_bytes);
        }
    }
}

/// Convenience: did the engine (or its control plane) record a crash?
pub fn crash_of(engine: &FabricEngine) -> Option<Crash> {
    engine.health.crashed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::CorruptionPlan;
    use crate::xlate::Segment;
    use thymesim_mem::{shared_dram, DramConfig};

    fn engine(delay: DelaySpec) -> FabricEngine {
        let cfg = FabricConfig {
            delay,
            ..FabricConfig::default()
        };
        let bus = shared_dram(DramConfig::default());
        let mut e = FabricEngine::new(cfg, bus);
        e.xlate.map(Segment {
            borrower_base: 0,
            lender_base: 0,
            len: 1 << 30,
        });
        e.set_attached(true);
        e
    }

    #[test]
    fn vanilla_read_latency_near_prototype() {
        let mut e = engine(DelaySpec::Period(1));
        let done = e.fetch_line(Time::ZERO, Addr(0));
        let us = done.as_us_f64();
        // ThymesisFlow-class remote access: around 1.2 us.
        assert!(
            (0.9..1.6).contains(&us),
            "vanilla remote latency {us} us out of expected band"
        );
    }

    #[test]
    fn period_dominates_latency_when_large() {
        let mut e1 = engine(DelaySpec::Period(1));
        let mut e2 = engine(DelaySpec::Period(1000));
        let l1 = e1.fetch_line(Time::ZERO, Addr(0));
        // A single isolated access waits only for slot alignment, not the
        // whole window: ~PERIOD cycles at worst.
        let l2 = e2.fetch_line(Time::ZERO, Addr(0));
        assert!(l2 > l1);
        assert!(l2 < l1 + Dur::us(5), "isolated access pays ≤ one PERIOD");
    }

    #[test]
    fn saturating_reads_pace_at_one_per_period() {
        let mut e = engine(DelaySpec::Period(100));
        let n = 400u64;
        let mut done = Time::ZERO;
        for i in 0..n {
            done = e.fetch_line(Time::ZERO, Addr(i * 128));
        }
        // Steady state: one read per 100 cycles × 4 ns = 400 ns.
        let per = done.as_ns_f64() / n as f64;
        assert!(
            (395.0..440.0).contains(&per),
            "per-read spacing {per} ns, want ~400"
        );
    }

    /// Issue `n` reads closed-loop with `mlp` outstanding slots, like a
    /// core with `mlp` MSHRs streaming through the NIC.
    fn closed_loop_reads(e: &mut FabricEngine, n: u64, mlp: usize) -> Time {
        let mut done_ring: std::collections::VecDeque<Time> =
            std::collections::VecDeque::with_capacity(mlp);
        let mut last = Time::ZERO;
        for i in 0..n {
            let at = if done_ring.len() < mlp {
                Time::ZERO
            } else {
                done_ring.pop_front().unwrap()
            };
            last = e.fetch_line(at, Addr((i * 128) % (1 << 25)));
            done_ring.push_back(last);
        }
        last
    }

    #[test]
    fn bdp_is_constant_across_periods() {
        // window × line = 128 × 128 B = 16384 B, independent of PERIOD.
        for period in [50u64, 100, 200] {
            let mut e = engine(DelaySpec::Period(period));
            let n = 2000u64;
            let done = closed_loop_reads(&mut e, n, 128);
            let bw = (n * 128) as f64 / done.as_secs_f64();
            let lat = e.stats.read_latency.mean() / 1e12; // seconds
            let bdp = bw * lat;
            assert!(
                (bdp / 16384.0 - 1.0).abs() < 0.15,
                "PERIOD={period}: BDP {bdp} far from 16 KiB"
            );
        }
    }

    #[test]
    fn saturated_latency_is_window_times_period() {
        let mut e = engine(DelaySpec::Period(1000));
        closed_loop_reads(&mut e, 600, 128);
        // Mean latency ≈ window(128) × 1000 cycles × 4 ns = 512 us.
        let mean_us = e.stats.read_latency.mean() / 1e6;
        assert!(
            (400.0..600.0).contains(&mean_us),
            "saturated latency {mean_us} us, want ~512"
        );
    }

    #[test]
    fn acked_writes_steal_credits_from_reads() {
        // PERIOD=1 so the credit window (not the gate) is the bottleneck.
        let mk = |acked| {
            let cfg = FabricConfig {
                delay: DelaySpec::Period(1),
                acked_writes: acked,
                ..FabricConfig::default()
            };
            let bus = shared_dram(DramConfig::default());
            let mut e = FabricEngine::new(cfg, bus);
            e.xlate.map(Segment {
                borrower_base: 0,
                lender_base: 0,
                len: 1 << 30,
            });
            e.set_attached(true);
            e
        };
        let mut posted = mk(false);
        let mut acked = mk(true);
        for i in 0..400u64 {
            posted.writeback_line(Time::ZERO, Addr((1 << 20) + i * 128));
            posted.fetch_line(Time::ZERO, Addr(i * 128));
            acked.writeback_line(Time::ZERO, Addr((1 << 20) + i * 128));
            acked.fetch_line(Time::ZERO, Addr(i * 128));
        }
        // With acked writes the window is shared: read latency inflates.
        let posted_lat = posted.stats.read_latency.mean();
        let acked_lat = acked.stats.read_latency.mean();
        assert!(
            acked_lat > posted_lat * 1.15,
            "acked writes should contend for credits: {acked_lat} vs {posted_lat}"
        );
    }

    #[test]
    fn ungated_writebacks_do_not_slow_reads() {
        let mk = |gate_wb| {
            let cfg = FabricConfig {
                delay: DelaySpec::Period(100),
                gate_writebacks: gate_wb,
                ..FabricConfig::default()
            };
            let bus = shared_dram(DramConfig::default());
            let mut e = FabricEngine::new(cfg, bus);
            e.xlate.map(Segment {
                borrower_base: 0,
                lender_base: 0,
                len: 1 << 30,
            });
            e.set_attached(true);
            e
        };
        let mut gated = mk(true);
        let mut bypass = mk(false);
        let mut t_gated = Time::ZERO;
        let mut t_bypass = Time::ZERO;
        for i in 0..200u64 {
            gated.writeback_line(Time::ZERO, Addr((1 << 20) + i * 128));
            t_gated = gated.fetch_line(Time::ZERO, Addr(i * 128));
            bypass.writeback_line(Time::ZERO, Addr((1 << 20) + i * 128));
            t_bypass = bypass.fetch_line(Time::ZERO, Addr(i * 128));
        }
        assert!(
            t_bypass.as_secs_f64() < t_gated.as_secs_f64() * 0.7,
            "bypassing the gate for writebacks should speed the read stream: {t_bypass} vs {t_gated}"
        );
    }

    #[test]
    fn writebacks_share_the_gate_with_reads() {
        let mut with_wb = engine(DelaySpec::Period(100));
        let mut without = engine(DelaySpec::Period(100));
        let n = 200u64;
        let mut t_with = Time::ZERO;
        let mut t_without = Time::ZERO;
        for i in 0..n {
            with_wb.writeback_line(Time::ZERO, Addr((1 << 20) + i * 128));
            t_with = with_wb.fetch_line(Time::ZERO, Addr(i * 128));
            t_without = without.fetch_line(Time::ZERO, Addr(i * 128));
        }
        // Each writeback consumes one extra gate slot, so the read stream
        // slows ~2x.
        let ratio = t_with.as_secs_f64() / t_without.as_secs_f64();
        assert!(
            (1.7..2.5).contains(&ratio),
            "writeback interference ratio {ratio}, want ~2"
        );
    }

    #[test]
    fn outage_stalls_and_resumes() {
        let mut e = engine(DelaySpec::Period(1));
        e.outages.add(Time::us(1), Time::us(200));
        // Issue before the outage: unaffected.
        let a = e.fetch_line(Time::ZERO, Addr(0));
        assert!(a < Time::us(2));
        // Issue during the outage: stalls until the link is repaired.
        let b = e.fetch_line(Time::us(50), Addr(128));
        assert!(
            b > Time::us(200),
            "access during outage must wait for repair"
        );
        assert!(b < Time::us(202));
    }

    #[test]
    fn machine_check_on_extreme_stall() {
        let mut e = engine(DelaySpec::Period(1));
        e.health.machine_check_threshold = Dur::us(100);
        e.outages.add(Time::us(1), Time::ms(1));
        e.fetch_line(Time::us(2), Addr(0));
        match e.health.crashed() {
            Some(Crash::MachineCheck { .. }) => {}
            other => panic!("expected machine check, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "before disaggregated memory was attached")]
    fn fetch_before_attach_panics() {
        let cfg = FabricConfig::default();
        let mut e = FabricEngine::new(cfg, shared_dram(DramConfig::default()));
        e.fetch_line(Time::ZERO, Addr(0));
    }

    #[test]
    #[should_panic(expected = "translation fault")]
    fn unmapped_address_faults() {
        let mut e = engine(DelaySpec::Period(1));
        e.fetch_line(Time::ZERO, Addr(1 << 40));
    }

    #[test]
    fn cxl_mode_has_a_much_lower_floor_but_same_delay_slope() {
        // §V: CXL changes the un-gated path, not the injector's effect.
        let mk = |cfg: FabricConfig, period| {
            let cfg = FabricConfig {
                delay: DelaySpec::Period(period),
                ..cfg
            };
            let bus = shared_dram(DramConfig::default());
            let mut e = FabricEngine::new(cfg, bus);
            e.xlate.map(Segment {
                borrower_base: 0,
                lender_base: 0,
                len: 1 << 30,
            });
            e.set_attached(true);
            e
        };
        // Un-gated floor: single isolated access.
        let mut capi = mk(FabricConfig::default(), 1);
        let mut cxl = mk(FabricConfig::cxl(), 1);
        let capi_floor = capi.fetch_line(Time::ZERO, Addr(0)).as_ns_f64();
        let cxl_floor = cxl.fetch_line(Time::ZERO, Addr(0)).as_ns_f64();
        assert!(
            cxl_floor < capi_floor / 2.5,
            "CXL floor {cxl_floor} ns vs prototype {capi_floor} ns"
        );
        // Gated behaviour at high PERIOD: both saturate to the same
        // window × PERIOD queueing, transport regardless.
        let run = |mut e: FabricEngine| {
            let mut ring = std::collections::VecDeque::new();
            for i in 0..600u64 {
                let at = if ring.len() < 128 {
                    Time::ZERO
                } else {
                    ring.pop_front().unwrap()
                };
                let done = e.fetch_line(at, Addr((i * 128) % (1 << 22)));
                ring.push_back(done);
            }
            e.stats.read_latency.mean() / 1e6
        };
        let capi_lat = run(mk(FabricConfig::default(), 1000));
        let cxl_lat = run(mk(FabricConfig::cxl(), 1000));
        let ratio = capi_lat / cxl_lat;
        assert!(
            (0.9..1.1).contains(&ratio),
            "at PERIOD=1000 the gate dominates both transports: {capi_lat} vs {cxl_lat} us"
        );
    }

    #[test]
    fn per_message_distribution_mode() {
        let mut e = engine(DelaySpec::PerMessage {
            dist: DelayDist::Constant(Dur::us(30)),
            seed: 1,
        });
        let done = e.fetch_line(Time::ZERO, Addr(0));
        let us = done.as_us_f64();
        assert!((30.0..32.0).contains(&us), "got {us} us, want ~31");
    }

    #[test]
    fn shared_uplink_congests_between_engines() {
        use thymesim_net::{shared_link, LinkConfig};
        let up = shared_link(LinkConfig::copper_100g());
        let down = shared_link(LinkConfig::copper_100g());
        let mut a = engine(DelaySpec::Period(1));
        let mut b = engine(DelaySpec::Period(1));
        a.set_shared_fabric(SharedLink::clone(&up), SharedLink::clone(&down));
        b.set_shared_fabric(up, down);
        // Both engines stream closed-loop with a full window, interleaved
        // on the same virtual timeline.
        let n = 3000u64;
        let mut done_a = Time::ZERO;
        let mut done_b = Time::ZERO;
        {
            let mut ring_a = std::collections::VecDeque::new();
            let mut ring_b = std::collections::VecDeque::new();
            for i in 0..n {
                let at_a = if ring_a.len() < 128 {
                    Time::ZERO
                } else {
                    ring_a.pop_front().unwrap()
                };
                done_a = a.fetch_line(at_a, Addr((i * 128) % (1 << 24)));
                ring_a.push_back(done_a);
                let at_b = if ring_b.len() < 128 {
                    Time::ZERO
                } else {
                    ring_b.pop_front().unwrap()
                };
                done_b = b.fetch_line(at_b, Addr((1 << 25) + (i * 128) % (1 << 24)));
                ring_b.push_back(done_b);
            }
        }
        // Solo engine for comparison (same closed loop).
        let mut solo = engine(DelaySpec::Period(1));
        let mut done_solo = Time::ZERO;
        let mut ring = std::collections::VecDeque::new();
        for i in 0..n {
            let at = if ring.len() < 128 {
                Time::ZERO
            } else {
                ring.pop_front().unwrap()
            };
            done_solo = solo.fetch_line(at, Addr((i * 128) % (1 << 24)));
            ring.push_back(done_solo);
        }
        let slow = done_a.max2(done_b);
        assert!(
            slow.as_secs_f64() > done_solo.as_secs_f64() * 1.6,
            "sharing the fabric should roughly halve throughput: {slow} vs solo {done_solo}"
        );
    }

    #[test]
    fn corruption_slows_the_stream_and_counts() {
        let mut clean = engine(DelaySpec::Period(100));
        let mut lossy = engine(DelaySpec::Period(100));
        lossy.corruption = Some(CorruptionPlan::new(0.2, 99));
        let n = 500u64;
        let mut t_clean = Time::ZERO;
        let mut t_lossy = Time::ZERO;
        for i in 0..n {
            t_clean = clean.fetch_line(Time::ZERO, Addr(i * 128));
            t_lossy = lossy.fetch_line(Time::ZERO, Addr(i * 128));
        }
        let corrupted = lossy.corruption.as_ref().unwrap().corrupted;
        assert!(
            corrupted > 50,
            "20% BER should corrupt many of {n}: {corrupted}"
        );
        // Each retransmission costs an extra gate slot: the stream slows
        // roughly by the retry fraction.
        let ratio = t_lossy.as_secs_f64() / t_clean.as_secs_f64();
        assert!(
            (1.1..1.5).contains(&ratio),
            "retries should slow the stream ~25%: {ratio}"
        );
        assert!(
            lossy.health.is_healthy(),
            "transient corruption is not fatal"
        );
    }

    #[test]
    fn config_rtt_does_not_touch_credits_or_bus() {
        let mut e = engine(DelaySpec::Period(1));
        let before = e.window().outstanding();
        let t = e.config_rtt(Time::ZERO);
        assert!(t > Time::ZERO);
        assert_eq!(e.window().outstanding(), before);
        assert_eq!(e.stats.config_reads, 1);
        assert_eq!(e.stats.reads, 0);
    }
}
