//! NIC transaction credits.
//!
//! The OpenCAPI/ThymesisFlow data path admits a bounded number of
//! outstanding cache-line transactions; the response releases the credit.
//! This window is what makes the measured bandwidth-delay product constant
//! (§IV-B, Fig. 3): in steady state exactly `window × line` bytes are in
//! flight regardless of the injected delay.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use thymesim_sim::Time;

/// A sliding window of at most `cap` outstanding transactions.
#[derive(Debug)]
pub struct CreditWindow {
    cap: usize,
    inflight: BinaryHeap<Reverse<u64>>, // completion times (ps)
    /// Transactions admitted.
    pub admitted: u64,
    /// Accumulated credit-wait (admission - request).
    pub wait_ps: u128,
    /// Start of the current constant-occupancy segment (telemetry only):
    /// the occupancy timeline is emitted as exact level segments, one per
    /// interval over which `inflight.len()` is unchanged. The final
    /// in-flight tail (after the last admission) is never emitted — a
    /// documented undercount of at most `window × line` transactions'
    /// worth of occupancy-time at the end of the run.
    level_since: Time,
    /// Does this window own the point's `credit.occupancy` counter
    /// track (exclusively claimed: first window constructed records)?
    tracked: bool,
}

impl CreditWindow {
    pub fn new(cap: usize) -> CreditWindow {
        assert!(cap >= 1, "window must admit at least one transaction");
        let tracked = thymesim_telemetry::claim("credit.occupancy") == 0;
        if tracked {
            thymesim_telemetry::counter_bound("credit.occupancy", cap as u64);
        }
        CreditWindow {
            cap,
            inflight: BinaryHeap::with_capacity(cap + 1),
            admitted: 0,
            wait_ps: 0,
            level_since: Time::ZERO,
            tracked,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// Close the constant-occupancy segment ending at `now` (telemetry).
    fn note_level(&mut self, now: Time) {
        if !self.tracked {
            return;
        }
        let now = now.max2(self.level_since);
        thymesim_telemetry::counter_level(
            "credit.occupancy",
            self.level_since,
            now,
            self.inflight.len() as u64,
        );
        self.level_since = now;
    }

    /// Earliest time at or after `at` when a credit is available. Frees
    /// every credit whose transaction completes by that time.
    pub fn acquire(&mut self, at: Time) -> Time {
        // Retire transactions that completed by `at`, one at a time in
        // completion order so the occupancy timeline is exact.
        while let Some(&Reverse(done)) = self.inflight.peek() {
            if done <= at.as_ps() {
                self.note_level(Time(done));
                self.inflight.pop();
            } else {
                break;
            }
        }
        let t = if self.inflight.len() < self.cap {
            at
        } else {
            let Reverse(done) = *self.inflight.peek().expect("window non-empty");
            self.note_level(Time(done));
            self.inflight.pop();
            Time(done).max2(at)
        };
        self.note_level(t);
        self.admitted += 1;
        self.wait_ps += (t - at).as_ps() as u128;
        thymesim_telemetry::latency("credit.wait", t - at);
        thymesim_telemetry::counter("credit.outstanding", t, self.inflight.len() as f64);
        t
    }

    /// Register the completion time of the transaction just admitted.
    pub fn complete_at(&mut self, done: Time) {
        self.inflight.push(Reverse(done.as_ps()));
    }

    /// Convenience: admit at `at` and immediately register completion.
    pub fn admit(&mut self, at: Time, completes: Time) -> Time {
        let t = self.acquire(at);
        self.complete_at(completes);
        t
    }

    pub fn mean_wait_ps(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.wait_ps as f64 / self.admitted as f64
        }
    }

    pub fn reset(&mut self) {
        self.inflight.clear();
        self.admitted = 0;
        self.wait_ps = 0;
        self.level_since = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_sim::Dur;

    #[test]
    fn admits_freely_below_capacity() {
        let mut w = CreditWindow::new(4);
        for i in 0..4u64 {
            let t = w.acquire(Time::ns(i));
            assert_eq!(t, Time::ns(i), "no wait below capacity");
            w.complete_at(Time::us(100));
        }
        assert_eq!(w.outstanding(), 4);
    }

    #[test]
    fn full_window_waits_for_earliest_completion() {
        let mut w = CreditWindow::new(2);
        w.admit(Time::ZERO, Time::ns(100));
        w.admit(Time::ZERO, Time::ns(50));
        // Window full; next admission waits for the *earliest* completion (50).
        let t = w.acquire(Time::ZERO);
        assert_eq!(t, Time::ns(50));
        w.complete_at(Time::ns(200));
        let t2 = w.acquire(Time::ZERO);
        assert_eq!(t2, Time::ns(100));
    }

    #[test]
    fn completed_transactions_free_credits() {
        let mut w = CreditWindow::new(1);
        w.admit(Time::ZERO, Time::ns(10));
        // At t=20 the old transaction already completed: no wait.
        let t = w.acquire(Time::ns(20));
        assert_eq!(t, Time::ns(20));
        assert_eq!(w.outstanding(), 0, "retired transaction must be gone");
    }

    #[test]
    fn steady_state_throughput_is_window_over_latency() {
        // window W, fixed latency L: admissions settle at rate W/L.
        let w_cap = 8usize;
        let lat = Dur::us(1);
        let mut w = CreditWindow::new(w_cap);
        let mut last_admit = Time::ZERO;
        let n = 1000;
        for _ in 0..n {
            let t = w.acquire(Time::ZERO);
            last_admit = t;
            w.complete_at(t + lat);
        }
        // n admissions take ≈ (n / W) × L.
        let expect = lat.as_secs_f64() * (n as f64 / w_cap as f64);
        let got = last_admit.as_secs_f64();
        assert!(
            (got / expect - 1.0).abs() < 0.02,
            "expected ~{expect}s, got {got}s"
        );
        assert!(w.mean_wait_ps() > 0.0);
    }

    #[test]
    fn admissions_never_go_backwards() {
        let mut w = CreditWindow::new(3);
        let mut prev = Time::ZERO;
        for i in 0..100u64 {
            let at = Time::ns(i * 7 % 50); // deliberately jittery arrivals
            let t = w.acquire(at);
            assert!(t >= at);
            w.complete_at(t + Dur::ns(100));
            // Admission times can permute with jittery arrivals, but an
            // admission is never earlier than its own request.
            prev = prev.max2(t);
        }
        assert_eq!(w.admitted, 100);
    }
}
