//! # thymesim-bench
//!
//! The benchmark harness: experiment profiles shared by the `repro`
//! binary (which regenerates every paper table/figure) and the Criterion
//! micro-benchmarks (which track the simulator's own performance).

use thymesim_core::prelude::*;
use thymesim_mem::CacheConfig;
use thymesim_workloads::graph500::Graph500Config;
use thymesim_workloads::kv::KvConfig;

/// An experiment scale: testbed + workload sizes, chosen together so
/// working sets exceed the LLC at every profile.
#[derive(Clone, Debug)]
pub struct Profile {
    pub name: &'static str,
    pub testbed: TestbedConfig,
    pub stream: StreamConfig,
    pub apps: AppScale,
}

impl Profile {
    /// Seconds-scale runs: 256 KiB LLC, 64 Ki-element STREAM, scale-12
    /// Graph500.
    pub fn quick() -> Profile {
        let testbed = TestbedConfig::tiny();
        let mut stream = StreamConfig::tiny();
        stream.elements = 65_536;
        let graph = Graph500Config {
            scale: 12,
            edgefactor: 16,
            roots: 2,
            ..Graph500Config::tiny()
        };
        Profile {
            name: "quick",
            apps: AppScale {
                kv: KvConfig::tiny(),
                graph_parallel: Graph500Config { cores: 32, ..graph },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
        }
    }

    /// Minutes-scale runs: 7.5 MiB LLC, 2 M-element STREAM, scale-16
    /// Graph500, 20 k-key KV store.
    pub fn medium() -> Profile {
        let mut testbed = TestbedConfig::default();
        let cache = CacheConfig {
            sets: 4096,
            ways: 15,
            line: 128,
        }; // 7.5 MiB
        testbed.borrower.cache = cache;
        testbed.lender.cache = cache;
        let stream = StreamConfig {
            elements: 2_000_000,
            ..StreamConfig::default()
        };

        let graph = Graph500Config {
            scale: 16,
            edgefactor: 16,
            roots: 2,
            ..Graph500Config::default()
        };
        let kv = KvConfig {
            keys: 20_000,
            requests_per_conn: 25,
            ..KvConfig::default()
        };
        Profile {
            name: "medium",
            apps: AppScale {
                kv,
                graph_parallel: Graph500Config {
                    cores: 128,
                    ..graph
                },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
        }
    }

    /// The paper's sizes: 120 MiB LLC, 10 M-element STREAM (0.24 GiB),
    /// scale-20 Graph500 (~1 GiB CSR), memtier 4×50 connections.
    pub fn paper() -> Profile {
        let testbed = TestbedConfig::default();
        let stream = StreamConfig::default();
        let graph = Graph500Config {
            scale: 20,
            edgefactor: 16,
            roots: 4,
            ..Graph500Config::default()
        };
        let kv = KvConfig {
            keys: 500_000,
            requests_per_conn: 100,
            ..KvConfig::default()
        };
        Profile {
            name: "paper",
            apps: AppScale {
                kv,
                graph_parallel: Graph500Config {
                    cores: 128,
                    ..graph
                },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
        }
    }

    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "quick" => Some(Profile::quick()),
            "medium" => Some(Profile::medium()),
            "paper" => Some(Profile::paper()),
            _ => None,
        }
    }

    pub fn describe(&self) -> String {
        format!(
            "LLC {} MiB, STREAM {} elements, Graph500 scale {}, KV {} keys",
            self.testbed.borrower.cache.capacity_bytes() >> 20,
            self.stream.elements,
            self.apps.graph_parallel.scale,
            self.apps.kv.keys,
        )
    }
}

/// Parse `--profile <name>` (or `THYMESIM_PROFILE`); default `medium`.
pub fn profile_from_args(args: &[String]) -> Profile {
    let mut name: Option<String> = std::env::var("THYMESIM_PROFILE").ok();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--profile" {
            name = it.next().cloned();
        } else if let Some(rest) = a.strip_prefix("--profile=") {
            name = Some(rest.to_string());
        }
    }
    match name {
        None => Profile::medium(),
        Some(n) => Profile::by_name(&n).unwrap_or_else(|| {
            eprintln!("unknown profile '{n}', expected quick|medium|paper");
            std::process::exit(2);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_by_name() {
        for n in ["quick", "medium", "paper"] {
            let p = Profile::by_name(n).unwrap();
            assert_eq!(p.name, n);
            assert!(!p.describe().is_empty());
        }
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn working_sets_exceed_caches() {
        for p in [Profile::quick(), Profile::medium(), Profile::paper()] {
            let cache = p.testbed.borrower.cache.capacity_bytes();
            let stream_bytes = p.stream.elements * 8 * 3;
            assert!(
                stream_bytes > cache,
                "{}: STREAM {} B fits in {} B cache",
                p.name,
                stream_bytes,
                cache
            );
            let graph_bytes = p.apps.graph_parallel.edges() * 2 * 8;
            assert!(
                graph_bytes > cache,
                "{}: graph {} B fits in cache",
                p.name,
                graph_bytes
            );
        }
    }

    #[test]
    fn arg_parsing_picks_profile() {
        let p = profile_from_args(&["fig2".into(), "--profile".into(), "quick".into()]);
        assert_eq!(p.name, "quick");
        let p = profile_from_args(&["--profile=paper".into()]);
        assert_eq!(p.name, "paper");
    }
}
