//! # thymesim-bench
//!
//! The benchmark harness: experiment profiles shared by the `repro`
//! binary (which regenerates every paper table/figure) and the Criterion
//! micro-benchmarks (which track the simulator's own performance).

use thymesim_core::prelude::*;
use thymesim_mem::CacheConfig;
use thymesim_sim::Dur;
use thymesim_workloads::graph500::Graph500Config;
use thymesim_workloads::kv::KvConfig;

/// The open-loop serving campaign's scale (E17): engine configuration
/// plus the grid axes of the `serve_tail` sweep (PERIOD × contention ×
/// offered rate) and the stressed point of the admission study.
#[derive(Clone, Debug)]
pub struct ServeScale {
    pub serve: ServeConfig,
    /// Background STREAM shape for the contention points (per-axis mlp
    /// is specialized inside `serve_tail`).
    pub bg_stream: StreamConfig,
    pub periods: Vec<u64>,
    pub contention: Vec<(ServeContention, usize)>,
    pub rates: Vec<f64>,
    /// The overloaded point the admission policies are judged at.
    pub admission_period: u64,
    pub admission_rate: f64,
    pub policies: Vec<AdmissionPolicy>,
}

impl ServeScale {
    fn policies_for(queue_cap: u32) -> Vec<AdmissionPolicy> {
        vec![
            AdmissionPolicy::Open,
            AdmissionPolicy::Drop { queue_cap },
            AdmissionPolicy::Throttle {
                queue_cap,
                backoff: Dur::us(50),
            },
            AdmissionPolicy::Priority { queue_cap },
        ]
    }
}

/// An experiment scale: testbed + workload sizes, chosen together so
/// working sets exceed the LLC at every profile.
#[derive(Clone, Debug)]
pub struct Profile {
    pub name: &'static str,
    pub testbed: TestbedConfig,
    pub stream: StreamConfig,
    pub apps: AppScale,
    pub serve: ServeScale,
}

impl Profile {
    /// Seconds-scale runs: 256 KiB LLC, 64 Ki-element STREAM, scale-12
    /// Graph500.
    pub fn quick() -> Profile {
        let testbed = TestbedConfig::tiny();
        let mut stream = StreamConfig::tiny();
        stream.elements = 65_536;
        let graph = Graph500Config {
            scale: 12,
            edgefactor: 16,
            roots: 2,
            ..Graph500Config::tiny()
        };
        let serve = ServeScale {
            serve: ServeConfig {
                arrivals: 1500,
                ..ServeConfig::tiny()
            },
            bg_stream: StreamConfig {
                elements: 16_384,
                ..StreamConfig::tiny()
            },
            periods: vec![1, 100, 400],
            contention: vec![
                (ServeContention::None, 0),
                (ServeContention::Mcbn, 1),
                (ServeContention::Mcbn, 2),
                (ServeContention::Mcln, 2),
                (ServeContention::Mcln, 6),
            ],
            rates: vec![20_000.0, 60_000.0],
            admission_period: 400,
            admission_rate: 100_000.0,
            policies: ServeScale::policies_for(8),
        };
        Profile {
            name: "quick",
            apps: AppScale {
                kv: KvConfig::tiny(),
                graph_parallel: Graph500Config { cores: 32, ..graph },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
            serve,
        }
    }

    /// Minutes-scale runs: 7.5 MiB LLC, 2 M-element STREAM, scale-16
    /// Graph500, 20 k-key KV store.
    pub fn medium() -> Profile {
        let mut testbed = TestbedConfig::default();
        let cache = CacheConfig {
            sets: 4096,
            ways: 15,
            line: 128,
        }; // 7.5 MiB
        testbed.borrower.cache = cache;
        testbed.lender.cache = cache;
        let stream = StreamConfig {
            elements: 2_000_000,
            ..StreamConfig::default()
        };

        let graph = Graph500Config {
            scale: 16,
            edgefactor: 16,
            roots: 2,
            ..Graph500Config::default()
        };
        let kv = KvConfig {
            keys: 20_000,
            requests_per_conn: 25,
            ..KvConfig::default()
        };
        let serve = ServeScale {
            serve: ServeConfig {
                keys: 20_000,
                arrivals: 6_000,
                ..ServeConfig::default()
            },
            bg_stream: StreamConfig {
                elements: 131_072,
                ..StreamConfig::default()
            },
            periods: vec![1, 100, 400, 1000],
            contention: vec![
                (ServeContention::None, 0),
                (ServeContention::Mcbn, 1),
                (ServeContention::Mcbn, 2),
                (ServeContention::Mcbn, 4),
                (ServeContention::Mcln, 2),
                (ServeContention::Mcln, 6),
            ],
            rates: vec![20_000.0, 60_000.0, 100_000.0],
            admission_period: 400,
            admission_rate: 100_000.0,
            policies: ServeScale::policies_for(8),
        };
        Profile {
            name: "medium",
            apps: AppScale {
                kv,
                graph_parallel: Graph500Config {
                    cores: 128,
                    ..graph
                },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
            serve,
        }
    }

    /// The paper's sizes: 120 MiB LLC, 10 M-element STREAM (0.24 GiB),
    /// scale-20 Graph500 (~1 GiB CSR), memtier 4×50 connections.
    pub fn paper() -> Profile {
        let testbed = TestbedConfig::default();
        let stream = StreamConfig::default();
        let graph = Graph500Config {
            scale: 20,
            edgefactor: 16,
            roots: 4,
            ..Graph500Config::default()
        };
        let kv = KvConfig {
            keys: 500_000,
            requests_per_conn: 100,
            ..KvConfig::default()
        };
        let serve = ServeScale {
            serve: ServeConfig {
                keys: 500_000,
                arrivals: 20_000,
                ..ServeConfig::default()
            },
            bg_stream: StreamConfig {
                elements: 1_000_000,
                ..StreamConfig::default()
            },
            periods: vec![1, 100, 400, 1000],
            contention: vec![
                (ServeContention::None, 0),
                (ServeContention::Mcbn, 1),
                (ServeContention::Mcbn, 2),
                (ServeContention::Mcbn, 4),
                (ServeContention::Mcln, 2),
                (ServeContention::Mcln, 6),
            ],
            rates: vec![20_000.0, 60_000.0, 100_000.0],
            admission_period: 400,
            admission_rate: 100_000.0,
            policies: ServeScale::policies_for(8),
        };
        Profile {
            name: "paper",
            apps: AppScale {
                kv,
                graph_parallel: Graph500Config {
                    cores: 128,
                    ..graph
                },
                graph_reference: Graph500Config { cores: 4, ..graph },
            },
            testbed,
            stream,
            serve,
        }
    }

    pub fn by_name(name: &str) -> Option<Profile> {
        match name {
            "quick" => Some(Profile::quick()),
            "medium" => Some(Profile::medium()),
            "paper" => Some(Profile::paper()),
            _ => None,
        }
    }

    pub fn describe(&self) -> String {
        format!(
            "LLC {} MiB, STREAM {} elements, Graph500 scale {}, KV {} keys, \
             serve {} arrivals x {} grid points",
            self.testbed.borrower.cache.capacity_bytes() >> 20,
            self.stream.elements,
            self.apps.graph_parallel.scale,
            self.apps.kv.keys,
            self.serve.serve.arrivals,
            self.serve.periods.len() * self.serve.contention.len() * self.serve.rates.len(),
        )
    }
}

/// Parse `--profile <name>` (or `THYMESIM_PROFILE`); default `medium`.
pub fn profile_from_args(args: &[String]) -> Profile {
    let mut name: Option<String> = std::env::var("THYMESIM_PROFILE").ok();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--profile" {
            name = it.next().cloned();
        } else if let Some(rest) = a.strip_prefix("--profile=") {
            name = Some(rest.to_string());
        }
    }
    match name {
        None => Profile::medium(),
        Some(n) => Profile::by_name(&n).unwrap_or_else(|| {
            eprintln!("unknown profile '{n}', expected quick|medium|paper");
            std::process::exit(2);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_resolve_by_name() {
        for n in ["quick", "medium", "paper"] {
            let p = Profile::by_name(n).unwrap();
            assert_eq!(p.name, n);
            assert!(!p.describe().is_empty());
        }
        assert!(Profile::by_name("nope").is_none());
    }

    #[test]
    fn working_sets_exceed_caches() {
        for p in [Profile::quick(), Profile::medium(), Profile::paper()] {
            let cache = p.testbed.borrower.cache.capacity_bytes();
            let stream_bytes = p.stream.elements * 8 * 3;
            assert!(
                stream_bytes > cache,
                "{}: STREAM {} B fits in {} B cache",
                p.name,
                stream_bytes,
                cache
            );
            let graph_bytes = p.apps.graph_parallel.edges() * 2 * 8;
            assert!(
                graph_bytes > cache,
                "{}: graph {} B fits in cache",
                p.name,
                graph_bytes
            );
            let serve_bytes = p.serve.serve.keys * (p.serve.serve.value_bytes + 128);
            assert!(
                serve_bytes > cache,
                "{}: serve store {} B fits in {} B cache",
                p.name,
                serve_bytes,
                cache
            );
        }
    }

    #[test]
    fn serve_scales_are_wellformed() {
        for p in [Profile::quick(), Profile::medium(), Profile::paper()] {
            let s = &p.serve;
            assert!(!s.periods.is_empty() && !s.contention.is_empty() && !s.rates.is_empty());
            assert_eq!(
                s.contention[0],
                (ServeContention::None, 0),
                "{}: the uncontended baseline leads the axis",
                p.name
            );
            assert!(s.rates.windows(2).all(|w| w[0] < w[1]));
            assert!(s.periods.windows(2).all(|w| w[0] < w[1]));
            assert!(
                s.rates.iter().all(|&r| s.admission_rate >= r),
                "{}: the admission study runs at the most stressed rate",
                p.name
            );
            assert!(matches!(s.policies[0], AdmissionPolicy::Open));
        }
    }

    #[test]
    fn arg_parsing_picks_profile() {
        let p = profile_from_args(&["fig2".into(), "--profile".into(), "quick".into()]);
        assert_eq!(p.name, "quick");
        let p = profile_from_args(&["--profile=paper".into()]);
        assert_eq!(p.name, "paper");
    }
}
