//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p thymesim-bench --bin repro -- all
//! cargo run --release -p thymesim-bench --bin repro -- fig2 --profile quick
//! ```
//!
//! Subcommands: `validate` (Fig 2 + Fig 3 + §III-B checks), `fig4`,
//! `table1`, `fig5`, `fig6`, `fig7`, `dist` (the §VII future-work
//! extension), `ablate` (window / write-back-gating ablations), `serve`
//! (E17 open-loop serving tails + admission control), `all`.
//!
//! Profiles trade run time for scale (working sets and caches scale
//! together so every workload stays memory-bound):
//! `quick` ≈ seconds, `medium` (default) ≈ a few minutes, `paper` uses
//! the paper's sizes (10 M-element STREAM, scale-20 Graph500).
//!
//! Execution flags (see `thymesim_core::sweep`):
//! * `--jobs N` — worker threads per sweep (default: all cores;
//!   `--jobs 1` runs serially and produces byte-identical output).
//! * `--no-cache` — disable the per-point memoization cache (default:
//!   `<out>/cache`, or `results/cache` without `--out`).
//! * `--trace[=<filter>]` — record virtual-time telemetry: one
//!   Perfetto-loadable `<sweep>.trace.json` per sweep plus a merged
//!   `telemetry.json`, written to `--trace-out <dir>` (default
//!   `traces/`). Also emits one collapsed-stack `<sweep>.collapsed`
//!   per sweep (render with `flamegraph.pl` / `inferno-flamegraph`),
//!   with a workload-phase frame between point and stage
//!   (`root;point_N;<phase>;read;gate_wait`), and a merged
//!   `attribution.json` of per-stage shares and means with per-phase
//!   sub-slices that sum exactly to each stage. Windowed counter
//!   samples (`util.*` tracks: credit occupancy, link/DRAM busy
//!   fractions, gate queue depth, outstanding reads, LLC miss rate)
//!   render into the same `<sweep>.trace.json`, and their folds land
//!   in a merged `utilization.json` of time-weighted means, peaks and
//!   saturation metrics per point and per sweep.
//!   The optional filter substring selects which sweeps record.
//!   Tracing never changes `results/` — it is observational.
//!   Cached points record nothing; pair with `--no-cache` for full
//!   timelines.
//! * `--baseline-record[=<path>]` — after the run, snapshot every
//!   sweep's merged per-stage means (and per-workload-phase means
//!   within each stage) plus the merged time-weighted utilization mean
//!   of every counter track into a baseline JSON (default
//!   `results/baselines/<profile>.json`). Implies `--no-cache` and
//!   stage recording (without writing trace files unless `--trace` is
//!   also given).
//! * `--baseline-check[=<path>]` — compare the run's stage, phase and
//!   counter-utilization means against the committed baseline with
//!   per-band tolerances. Prints each offending delta — naming the
//!   phase when the drift is phase-confined, and `counter <name>` when
//!   it is utilization-confined — and exits 1 on drift (2 when the
//!   baseline is missing/malformed or pins a different command).
//! * `--bench-json <path>` — after the run, write a throughput record:
//!   wall-clock seconds, simulated points, points/sec, timed memory
//!   accesses simulated, accesses/sec, and a `calib_ops_per_sec` score
//!   from a fixed arithmetic loop run on the same machine moments
//!   after the sweep. CI compares *normalized* throughput
//!   (points_per_sec / calib_ops_per_sec) against the committed
//!   record, so an absolute slowdown of the runner machine does not
//!   read as a code regression.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use thymesim_bench::{profile_from_args, Profile};
use thymesim_core::experiments::{
    ablate, apps, beyond, contention, dist, placement, qos, resilience, sensitivity, validate,
};
use thymesim_core::report;
use thymesim_core::runners::GraphKernel;
use thymesim_core::sweep::{self, SweepOptions};
use thymesim_net::LinkConfig;
use thymesim_sim::Dur;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let profile = profile_from_args(&args);
    if let Some(dir) = out_dir(&args) {
        std::fs::create_dir_all(&dir).expect("create --out directory");
        OUT_DIR.set(dir).ok();
    }

    let jobs = jobs_from_args(&args).unwrap_or_else(thymesim_sim::default_jobs);
    let baseline = baseline_from_args(&args, &profile);
    // Cached points never run the simulator, so they record no stage
    // histograms — baseline modes force the cache off to compare full
    // grids.
    let cache = if args.iter().any(|a| a == "--no-cache") || baseline.is_some() {
        None
    } else {
        let base = OUT_DIR
            .get()
            .cloned()
            .unwrap_or_else(|| PathBuf::from("results"));
        Some(base.join("cache"))
    };
    eprintln!("# profile: {} ({})", profile.name, profile.describe());
    eprintln!(
        "# jobs: {jobs}, cache: {}",
        cache
            .as_deref()
            .map_or("disabled".into(), |p| p.display().to_string())
    );
    sweep::configure(SweepOptions {
        jobs,
        cache,
        progress: true,
    });
    if let Some(filter) = trace_from_args(&args) {
        let dir = trace_out_dir(&args);
        eprintln!(
            "# tracing: on (filter: {}), traces: {}",
            filter.as_deref().unwrap_or("all sweeps"),
            dir.display()
        );
        thymesim_telemetry::configure(thymesim_telemetry::TraceConfig {
            filter,
            dir,
            ..Default::default()
        });
    } else if let Some(mode) = &baseline {
        // Baselines need the stage histograms but not the trace files:
        // record everything in memory, write nothing under traces/.
        eprintln!("# tracing: summary-only (for {})", mode.describe());
        thymesim_telemetry::configure(thymesim_telemetry::TraceConfig {
            artifacts: false,
            ..Default::default()
        });
    }

    let started = Instant::now();
    match cmd {
        "validate" | "fig2" | "fig3" => timed("validate", || run_validate(&profile)),
        "fig4" => timed("fig4", || run_fig4(&profile)),
        "table1" => timed("table1", || run_table1(&profile)),
        "fig5" => timed("fig5", || run_fig5(&profile)),
        "fig6" => timed("fig6", || run_fig6(&profile)),
        "fig7" => timed("fig7", || run_fig7(&profile)),
        "dist" => timed("dist", || run_dist(&profile)),
        "ablate" => timed("ablate", || run_ablate(&profile)),
        "congestion" => timed("congestion", || run_congestion(&profile)),
        "topology" => timed("topology", || run_topology(&profile)),
        "pooling" => timed("pooling", || run_pooling(&profile)),
        "qos" => timed("qos", || run_qos(&profile)),
        "serve" => timed("serve", || run_serve(&profile)),
        "sensitivity" => timed("sensitivity", || run_sensitivity(&profile)),
        "placement" => timed("placement", || run_placement(&profile)),
        "list" => {
            println!("experiment  paper artifact / extension");
            println!("validate    Fig 2 + Fig 3 + §III-B checks");
            println!("fig4        Fig 4 reliability sweep");
            println!("table1      Table I application impact");
            println!("fig5        Fig 5 degradation sweep");
            println!("fig6        Fig 6 MCBN contention");
            println!("fig7        Fig 7 MCLN contention");
            println!("dist        §VII distribution-driven injection");
            println!("ablate      window/BDP, write-back gating, KV pipelining");
            println!("congestion  E11 switched-fabric congestion + emulation fidelity");
            println!("topology    E11b intra- vs cross-rack borrowing");
            println!("pooling     E12 §V memory pooling");
            println!("qos         E13 §IV-D page migration");
            println!("serve       E17 open-loop serving tails + admission control");
            println!("sensitivity E15 calibration tornado");
            println!("placement   E16 contention-aware allocator");
            println!("all         everything above");
        }
        "all" => {
            timed("validate", || run_validate(&profile));
            timed("fig4", || run_fig4(&profile));
            timed("table1", || run_table1(&profile));
            timed("fig5", || run_fig5(&profile));
            timed("fig6", || run_fig6(&profile));
            timed("fig7", || run_fig7(&profile));
            timed("dist", || run_dist(&profile));
            timed("ablate", || run_ablate(&profile));
            timed("congestion", || run_congestion(&profile));
            timed("topology", || run_topology(&profile));
            timed("pooling", || run_pooling(&profile));
            timed("qos", || run_qos(&profile));
            timed("serve", || run_serve(&profile));
            timed("sensitivity", || run_sensitivity(&profile));
            timed("placement", || run_placement(&profile));
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of: validate fig2 fig3 fig4 \
                 table1 fig5 fig6 fig7 dist ablate congestion topology pooling qos serve \
                 sensitivity placement all"
            );
            std::process::exit(2);
        }
    }
    if cmd != "list" {
        let wall = started.elapsed();
        eprintln!(
            "# total: {:.2?} wall-clock ({} points simulated)",
            wall,
            sweep::simulated_point_count()
        );
        if let Some(path) = bench_json_path(&args) {
            write_bench_json(&path, cmd, &profile, wall);
        }
        if let Some(path) = thymesim_telemetry::write_summary() {
            eprintln!("# wrote {}", path.display());
        }
        if let Some(path) = thymesim_telemetry::write_attribution() {
            eprintln!("# wrote {}", path.display());
        }
        match thymesim_telemetry::write_utilization() {
            Ok(Some(path)) => eprintln!("# wrote {}", path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("# error: cannot write utilization.json: {e}");
                std::process::exit(1);
            }
        }
        if let Some(mode) = baseline {
            run_baseline(mode, cmd, &profile);
        }
    }
}

// ------------------------------------------------------------ baseline

enum BaselineMode {
    Record(PathBuf),
    Check(PathBuf),
}

impl BaselineMode {
    fn describe(&self) -> String {
        match self {
            BaselineMode::Record(p) => format!("baseline record to {}", p.display()),
            BaselineMode::Check(p) => format!("baseline check against {}", p.display()),
        }
    }
}

/// Parse `--baseline-record[=path]` / `--baseline-check[=path]`. The
/// default path keys on the profile so quick/medium/paper baselines
/// never collide.
fn baseline_from_args(args: &[String], profile: &Profile) -> Option<BaselineMode> {
    let default = || PathBuf::from(format!("results/baselines/{}.json", profile.name));
    for a in args {
        if a == "--baseline-record" {
            return Some(BaselineMode::Record(default()));
        }
        if let Some(rest) = a.strip_prefix("--baseline-record=") {
            return Some(BaselineMode::Record(PathBuf::from(rest)));
        }
        if a == "--baseline-check" {
            return Some(BaselineMode::Check(default()));
        }
        if let Some(rest) = a.strip_prefix("--baseline-check=") {
            return Some(BaselineMode::Check(PathBuf::from(rest)));
        }
    }
    None
}

/// Execute the baseline step after the experiments ran. `label` pins
/// (command, profile) so a quick baseline is never compared against a
/// paper-profile run.
fn run_baseline(mode: BaselineMode, cmd: &str, profile: &Profile) {
    use thymesim_telemetry::baseline::{Baseline, DEFAULT_REL_TOL};
    let label = format!("{cmd} --profile {}", profile.name);
    let atts = thymesim_telemetry::attributions();
    let utils = thymesim_telemetry::utilizations();
    if atts.is_empty() {
        eprintln!("# baseline: no sweeps recorded stage data; nothing to do");
        std::process::exit(2);
    }
    match mode {
        BaselineMode::Record(path) => {
            let b = Baseline::record(&label, &atts, &utils, DEFAULT_REL_TOL);
            if let Some(dir) = path.parent() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("# baseline: cannot create directory {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
            let text = serde_json::to_string_pretty(&b).expect("baseline serializes");
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("# baseline: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "# baseline: recorded {} stages and {} counters over {} sweeps to {}",
                b.stage_count(),
                b.counter_count(),
                b.sweeps.len(),
                path.display()
            );
        }
        BaselineMode::Check(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!(
                    "# baseline: cannot read {} ({e}); record one with --baseline-record",
                    path.display()
                );
                std::process::exit(2);
            });
            let b: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("# baseline: {} is malformed: {e}", path.display());
                std::process::exit(2);
            });
            if b.command != label {
                eprintln!(
                    "# baseline: {} pins '{}', this run is '{label}' — refusing to compare",
                    path.display(),
                    b.command
                );
                std::process::exit(2);
            }
            let drifts = b.check(&atts, &utils);
            if drifts.is_empty() {
                eprintln!(
                    "# baseline: OK — {} stages and {} counters within tolerance of {}",
                    b.stage_count(),
                    b.counter_count(),
                    path.display()
                );
            } else {
                eprintln!(
                    "# baseline: DRIFT — {} band(s) outside tolerance of {}:",
                    drifts.len(),
                    path.display()
                );
                for d in &drifts {
                    eprintln!("#   {d}");
                }
                std::process::exit(1);
            }
        }
    }
}

static OUT_DIR: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();

// ------------------------------------------------------------ bench-json

/// Parse `--bench-json <path>` / `--bench-json=<path>`.
fn bench_json_path(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--bench-json" {
            return it.next().map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix("--bench-json=") {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// A fixed, optimization-resistant arithmetic loop timed on this machine:
/// the unit in which CI normalizes sweep throughput. An xorshift chain is
/// serial (each step depends on the last), integer-only, and touches no
/// memory, so its rate tracks scalar CPU speed — the same resource the
/// simulator's hot loops consume.
fn calibrate_ops_per_sec() -> f64 {
    const OPS: u64 = 200_000_000;
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let t = Instant::now();
    for _ in 0..OPS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    let dt = t.elapsed().as_secs_f64();
    // Defeat dead-code elimination.
    std::hint::black_box(x);
    OPS as f64 / dt
}

#[derive(serde::Serialize)]
struct BenchRecord {
    command: String,
    profile: String,
    wall_seconds: f64,
    points: u64,
    points_per_sec: f64,
    timed_accesses: u64,
    accesses_per_sec: f64,
    /// Machine-speed unit from [`calibrate_ops_per_sec`]; divide
    /// throughput by this before comparing across runs.
    calib_ops_per_sec: f64,
    /// `points_per_sec / calib_ops_per_sec` — the machine-normalized
    /// figure CI gates on.
    normalized_points: f64,
}

fn write_bench_json(path: &PathBuf, cmd: &str, profile: &Profile, wall: std::time::Duration) {
    let points = sweep::simulated_point_count() as u64;
    let timed_accesses = thymesim_mem::timed_accesses_total();
    let secs = wall.as_secs_f64();
    let calib = calibrate_ops_per_sec();
    let rec = BenchRecord {
        command: cmd.to_string(),
        profile: profile.name.to_string(),
        wall_seconds: secs,
        points,
        points_per_sec: points as f64 / secs,
        timed_accesses,
        accesses_per_sec: timed_accesses as f64 / secs,
        calib_ops_per_sec: calib,
        normalized_points: (points as f64 / secs) / calib,
    };
    let text = serde_json::to_string_pretty(&rec).expect("bench record serializes");
    std::fs::write(path, text + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!(
        "# bench: {:.2} points/s, {:.3e} accesses/s, calib {:.3e} ops/s -> {}",
        rec.points_per_sec,
        rec.accesses_per_sec,
        calib,
        path.display()
    );
}

/// Time one experiment and report its wall-clock on stderr.
fn timed(label: &str, f: impl FnOnce()) {
    let t = Instant::now();
    f();
    eprintln!("# {label}: {:.2?} wall-clock", t.elapsed());
}

/// Parse `--jobs N` / `--jobs=N`.
fn jobs_from_args(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == "--jobs" {
            it.next().cloned()
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(v) = v {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => return Some(n),
                _ => {
                    eprintln!("--jobs expects a positive integer, got '{v}'");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse `--trace` / `--trace=<filter>`: `Some(None)` traces every
/// sweep, `Some(Some(s))` only sweeps whose name contains `s`, `None`
/// means tracing stays off.
fn trace_from_args(args: &[String]) -> Option<Option<String>> {
    for a in args {
        if a == "--trace" {
            return Some(None);
        }
        if let Some(rest) = a.strip_prefix("--trace=") {
            return Some(Some(rest.to_string()));
        }
    }
    None
}

/// Parse `--trace-out <dir>` (default `traces/`).
fn trace_out_dir(args: &[String]) -> PathBuf {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace-out" {
            if let Some(d) = it.next() {
                return PathBuf::from(d);
            }
        }
        if let Some(rest) = a.strip_prefix("--trace-out=") {
            return PathBuf::from(rest);
        }
    }
    PathBuf::from("traces")
}

/// Parse `--out <dir>`: also write each experiment's JSON there.
fn out_dir(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            return it.next().map(PathBuf::from);
        }
        if let Some(rest) = a.strip_prefix("--out=") {
            return Some(PathBuf::from(rest));
        }
    }
    None
}

/// Persist an experiment's series as JSON when `--out` was given.
fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    if let Some(dir) = OUT_DIR.get() {
        let path = dir.join(format!("{name}.json"));
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
        f.write_all(report::to_json(value).as_bytes())
            .expect("write results json");
        eprintln!("# wrote {}", path.display());
    }
}

fn banner(title: &str) {
    println!("\n## {title}\n");
}

fn run_validate(p: &Profile) {
    banner("Fig. 2 + Fig. 3 — STREAM latency/bandwidth vs PERIOD (lender idle)");
    let points = validate::stream_delay_sweep(&p.testbed, &p.stream, &validate::FIG2_PERIODS);
    save_json("fig2_fig3", &points);
    print!("{}", report::fig23_csv(&points));
    banner("§III-B validation checks");
    let v = validate::validate_injection(&points);
    save_json("validation", &v);
    print!("{}", report::validation_md(&v));
}

fn run_fig4(p: &Profile) {
    banner("Fig. 4 — reliability under heavy delay injection");
    let points = resilience::resilience_sweep(&p.testbed, &p.stream, &resilience::FIG4_PERIODS);
    save_json("fig4", &points);
    print!("{}", report::fig4_md(&points));
}

fn run_table1(p: &Profile) {
    banner("Table I — application impact at PERIOD ∈ {1, 1000} vs local memory");
    let rows = apps::table1(&p.testbed, &p.apps);
    save_json("table1", &rows);
    print!("{}", report::table1_md(&rows));
}

fn run_fig5(p: &Profile) {
    banner("Fig. 5 — degradation vs PERIOD (baseline: vanilla ThymesisFlow)");
    let points = apps::fig5(&p.testbed, &p.apps, &apps::FIG5_PERIODS);
    save_json("fig5", &points);
    print!("{}", report::fig5_csv(&points));
}

fn run_fig6(p: &Profile) {
    banner("Fig. 6 — MCBN: STREAM instances contending at the borrower");
    let points = contention::mcbn(&p.testbed, &p.stream, &contention::FIG6_COUNTS);
    save_json("fig6", &points);
    print!("{}", report::fig6_csv(&points));
}

fn run_fig7(p: &Profile) {
    banner("Fig. 7 — MCLN: lender-side contention vs borrower bandwidth");
    let points = contention::mcln(&p.testbed, &p.stream, &contention::FIG7_COUNTS);
    save_json("fig7", &points);
    print!("{}", report::fig7_csv(&points));
}

fn run_dist(p: &Profile) {
    banner("§VII future work — distribution-driven delay injection (mean 30 µs)");
    let points = dist::dist_sweep(&p.testbed, &p.stream, Dur::us(30), 42);
    save_json("dist", &points);
    print!("{}", report::dist_md(&points));
}

fn run_ablate(p: &Profile) {
    banner("Ablation — NIC window vs BDP (PERIOD = 100)");
    let points = ablate::window_sweep(&p.testbed, &p.stream, 100, &[32, 64, 128, 256]);
    println!("window,latency_us,bandwidth_gib_s,bdp_kib");
    for w in &points {
        println!(
            "{},{:.2},{:.3},{:.2}",
            w.window, w.latency_us, w.bandwidth_gib_s, w.bdp_kib
        );
    }
    banner("Ablation — write-back gating (PERIOD = 100)");
    let points = ablate::wb_gating(&p.testbed, &p.stream, 100);
    println!("gate_writebacks,latency_us,elapsed_ms");
    for w in &points {
        println!(
            "{},{:.2},{:.3}",
            w.gate_writebacks, w.latency_us, w.elapsed_ms
        );
    }
    banner("Ablation — KV pipelining vs delay sensitivity (PERIOD = 1000)");
    let points = ablate::kv_pipelining(&p.testbed, &p.apps.kv, 1000, &[1, 4, 16]);
    println!("pipeline_depth,degradation_vs_local");
    for k in &points {
        println!("{},{:.3}", k.pipeline_depth, k.degradation);
    }
}

fn run_congestion(p: &Profile) {
    banner("E11 — switched-fabric congestion (pairs sharing one segment)");
    let points = beyond::congestion_sweep(
        &p.testbed,
        &p.stream,
        LinkConfig::copper_100g(),
        &[1, 2, 4, 8],
    );
    save_json("congestion", &points);
    print!("{}", report::congestion_csv(&points));
    banner("E11 — does constant injection emulate congestion?");
    let r = beyond::emulation_fidelity(&p.testbed, &p.stream, LinkConfig::copper_100g(), 4);
    save_json("emulation_fidelity", &r);
    print!("{}", report::emulation_md(&r));
}

fn run_topology(p: &Profile) {
    banner("E11b — intra-rack vs cross-rack borrowing (3 background pairs)");
    use thymesim_net::TreeConfig;
    let tree = TreeConfig {
        racks: 2,
        ..TreeConfig::default()
    };
    let points = beyond::rack_topology(&p.testbed, &p.stream, tree, 3);
    save_json("topology", &points);
    print!("{}", report::topology_csv(&points));
}

fn run_pooling(p: &Profile) {
    banner("E12 — §V memory pooling: bottleneck shifts from network to pool");
    let mut all = Vec::new();
    for pool_gb_s in [140.0, 25.0, 8.0] {
        all.extend(beyond::pooling_sweep(
            &p.testbed,
            &p.stream,
            pool_gb_s,
            &[1, 2, 4, 8],
        ));
    }
    save_json("pooling", &all);
    print!("{}", report::pooling_csv(&all));
}

fn run_qos(p: &Profile) {
    banner("E13 — §IV-D page migration: budgeted hot-array placement, PERIOD=400");
    let gcfg = &p.apps.graph_reference;
    let budget = gcfg.edges() * 2 * 4 + (1 << 20); // room for the adjacency array
    let points = qos::page_migration_study(&p.testbed, gcfg, GraphKernel::Bfs, 400, budget);
    save_json("qos", &points);
    print!("{}", report::qos_md(&points));
}

fn run_serve(p: &Profile) {
    let s = &p.serve;
    banner("E17 — open-loop serving tails: PERIOD × contention × offered rate");
    let points = qos::serve_tail(
        &p.testbed,
        &s.serve,
        &s.bg_stream,
        &s.periods,
        &s.contention,
        &s.rates,
    );
    save_json("serve_tail", &points);
    print!("{}", report::serve_tail_csv(&points));
    banner("E17 — tail columns at the highest offered rate");
    let top = s.rates.last().copied().unwrap_or(0.0);
    let slice: Vec<_> = points
        .iter()
        .filter(|pt| (pt.offered_ops_s - top).abs() < 1.0)
        .cloned()
        .collect();
    print!("{}", report::serve_tail_md(&slice));
    banner(&format!(
        "E17 — admission control at PERIOD={}, {:.0} op/s offered",
        s.admission_period, s.admission_rate
    ));
    let study = qos::admission_study(
        &p.testbed,
        &s.serve.with_offered_rate(s.admission_rate),
        s.admission_period,
        &s.policies,
    );
    save_json("serve_admission", &study);
    print!("{}", report::admission_md(&study));
}

fn run_sensitivity(p: &Profile) {
    banner("E15 — calibration sensitivity (tornado over ±50% perturbations)");
    let rows = sensitivity::tornado(&p.testbed, &p.stream);
    save_json("sensitivity", &rows);
    print!("{}", report::sensitivity_csv(&rows));
}

fn run_placement(p: &Profile) {
    banner("E16 — contention-aware placement at the control plane");
    let points = placement::placement_study(&p.testbed, &p.stream, 2, 4);
    save_json("placement", &points);
    print!("{}", report::placement_md(&points));
}
