//! `trace_check` — structural validator for every artifact that
//! `repro --trace` emits. CI runs it over `traces/` to guarantee each
//! file is consumable by its intended tool; the validator dispatches on
//! the file name:
//!
//! * `*.trace.json` — Chrome-trace/Perfetto timelines: well-formed
//!   JSON, events with `ph`/`name`, nondecreasing timestamps, complete
//!   events with a nonnegative `dur`, counters with an `args` object,
//!   balanced B/E pairs per lane. `util.*` windowed counter tracks are
//!   checked against the stronger rules: strictly increasing window
//!   timestamps per `(pid, track)`, busy/ratio fractions within [0, 1],
//!   and bounded levels (credit occupancy) never exceeding their bound.
//! * `*.collapsed` — collapsed-stack attribution reports, in exactly
//!   the shape `flamegraph.pl` / `inferno-flamegraph` parse:
//!   `frame;frame;... <integer count>` per line; point-anchored lines
//!   must carry a workload-phase frame with a stage path below it
//!   (`root;point_N;<phase>;read;gate_wait`).
//! * `attribution.json` — per-stage shares/means: schema version,
//!   shares in [0, 1] summing to 1 per attributed point, means
//!   consistent with totals and counts, per-phase sub-slices summing
//!   exactly to their stage and free of orphan phases.
//! * `utilization.json` — windowed counter folds: schema version,
//!   name-sorted counters, fractions within [0, 1], saturation time
//!   within coverage within horizon, means consistent with the integer
//!   accumulators.
//!
//! ```text
//! cargo run --release -p thymesim-bench --bin trace_check -- \
//!     traces/*.trace.json traces/*.collapsed traces/attribution.json \
//!     traces/utilization.json
//! ```
//!
//! Every failure in a file is reported, not just the first, and the
//! checker keeps going across files. Exit status: 0 when every file
//! validates, 1 otherwise.

use thymesim_telemetry::{attribution, chrome, counters};

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!(
            "usage: trace_check <trace.json|*.collapsed|attribution.json|utilization.json>..."
        );
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        let verdict: Result<String, Vec<String>> = if path.ends_with(".collapsed") {
            attribution::check_collapsed(&text)
                .map(|stats| {
                    format!(
                        "ok ({} stacks over {} points / {} phase towers, {} ps total)",
                        stats.lines, stats.points, stats.phases, stats.total
                    )
                })
                .map_err(|e| vec![e])
        } else if path.ends_with("attribution.json") {
            attribution::check_attribution(&text)
                .map(|stats| {
                    format!(
                        "ok ({} sweeps, {} points, {} stage slices, {} phase slices)",
                        stats.sweeps, stats.points, stats.slices, stats.phases
                    )
                })
                .map_err(|e| vec![e])
        } else if path.ends_with("utilization.json") {
            counters::check_utilization(&text).map(|stats| {
                format!(
                    "ok ({} sweeps, {} points, {} counter reports)",
                    stats.sweeps, stats.points, stats.counters
                )
            })
        } else {
            chrome::check_all(&text).map(|stats| {
                format!(
                    "ok ({} events: {} spans, {} instants, {} counter samples, \
                     {} windowed utilization samples)",
                    stats.events, stats.spans, stats.instants, stats.counters, stats.util_counters
                )
            })
        };
        match verdict {
            Ok(msg) => println!("{path}: {msg}"),
            Err(errors) => {
                eprintln!("{path}: INVALID ({} failure(s)):", errors.len());
                for e in &errors {
                    eprintln!("{path}:   {e}");
                }
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
