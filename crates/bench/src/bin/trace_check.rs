//! `trace_check` — structural validator for the Chrome-trace files that
//! `repro --trace` emits. CI runs it over `traces/*.trace.json` to
//! guarantee every artifact loads in Perfetto: well-formed JSON, events
//! with `ph`/`name`, nondecreasing timestamps, complete events with a
//! nonnegative `dur`, counters with an `args` object, balanced B/E
//! pairs per lane.
//!
//! ```text
//! cargo run --release -p thymesim-bench --bin trace_check -- traces/*.trace.json
//! ```
//!
//! Exit status: 0 when every file validates, 1 otherwise.

use thymesim_telemetry::chrome;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check <trace.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match chrome::check(&text) {
            Ok(stats) => println!(
                "{path}: ok ({} events: {} spans, {} instants, {} counter samples)",
                stats.events, stats.spans, stats.instants, stats.counters
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
