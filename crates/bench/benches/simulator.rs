//! Micro-benchmarks of the simulator's own hot paths: the cycle-level
//! AXI gate, the analytic gate, the cache, the packet codec, the fabric
//! engine, and the event queue. These track *simulator* performance
//! (host time), not simulated results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use thymesim_delay::{AnalyticGate, ConstPeriod, CycleDelayGate};
use thymesim_fabric::{DelaySpec, FabricConfig, FabricEngine, Packet};
use thymesim_mem::{shared_dram, Addr, Cache, CacheConfig, DramConfig};
use thymesim_sim::{Clock, EventQueue, Time, Xoshiro256};

fn bench_cycle_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_gate");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("10k_cycles_period7", |b| {
        b.iter_batched(
            || {
                use thymesim_axi::{Beat, Consumer, Producer, ReadyPattern, StreamSim};
                let mut sim = StreamSim::new();
                let p = sim.add(Producer::new((0..1500u64).map(Beat::new)));
                let gate = sim.add(CycleDelayGate::new(ConstPeriod(7)));
                let (cns, _rec) = Consumer::new(ReadyPattern::Always);
                let cns = sim.add(cns);
                sim.connect(p, 0, gate, 0);
                sim.connect(gate, 0, cns, 0);
                sim
            },
            |mut sim| sim.run(10_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_analytic_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic_gate");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_grants", |b| {
        b.iter_batched(
            || AnalyticGate::new(ConstPeriod(13), Clock::mhz(250)),
            |mut gate| {
                let mut t = Time::ZERO;
                for _ in 0..100_000u64 {
                    t = gate.pass_one(t);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_random_accesses", |b| {
        b.iter_batched(
            || {
                (
                    Cache::new(CacheConfig::tiny()),
                    Xoshiro256::seed_from_u64(42),
                )
            },
            |(mut cache, mut rng)| {
                for _ in 0..100_000 {
                    let a = Addr(rng.below(1 << 22) & !127);
                    cache.access(a, rng.chance(0.3));
                }
                cache.stats
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("100k_sequential_accesses", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::tiny()),
            |mut cache| {
                for i in 0..100_000u64 {
                    cache.access(Addr((i * 8) & ((1 << 22) - 1)), false);
                }
                cache.stats
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_packet_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let wire = Packet::write_req(1, 2, 3, 4096, bytes::Bytes::from(vec![7u8; 128])).encode();
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_write_req", |b| {
        b.iter(|| Packet::write_req(1, 2, 3, 4096, bytes::Bytes::from_static(&[7u8; 128])).encode())
    });
    g.bench_function("decode_write_req", |b| {
        b.iter(|| Packet::decode(wire.clone()).unwrap())
    });
    g.finish();
}

fn engine() -> FabricEngine {
    use thymesim_fabric::{ControlConfig, ControlPlane};
    let cfg = FabricConfig {
        delay: DelaySpec::Period(7),
        ..FabricConfig::default()
    };
    let mut e = FabricEngine::new(cfg, shared_dram(DramConfig::default()));
    let mut cp = ControlPlane::new(ControlConfig::default(), 1 << 30);
    let res = cp.reserve(1 << 30).expect("capacity");
    cp.attach(&mut e, Time::ZERO, 0, res).expect("attach");
    e
}

fn bench_fabric(c: &mut Criterion) {
    use thymesim_mem::RemoteBackend;
    let mut g = c.benchmark_group("fabric");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("10k_fetch_line", |b| {
        b.iter_batched(
            engine,
            |mut e| {
                let mut t = Time::ZERO;
                for i in 0..10_000u64 {
                    t = e.fetch_line(t, Addr((i * 128) & ((1 << 25) - 1)));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("100k_push_pop", |b| {
        b.iter_batched(
            || (EventQueue::<u64>::new(), Xoshiro256::seed_from_u64(1)),
            |(mut q, mut rng)| {
                for i in 0..100_000u64 {
                    q.push(Time::ps(rng.below(1 << 40)), i);
                    if i % 2 == 1 {
                        q.pop();
                    }
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    use thymesim_bench::Profile;
    use thymesim_core::prelude::*;
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);
    let p = {
        let mut p = Profile::quick();
        p.stream.elements = 16_384;
        p
    };
    g.bench_function("stream_remote_full_run", |b| {
        b.iter(|| run_stream_on_testbed(&p.testbed, &p.stream))
    });
    g.bench_function("graph500_bfs_remote", |b| {
        b.iter_batched(
            || Testbed::build(&p.testbed).unwrap(),
            |mut tb| {
                run_graph500(
                    &mut tb,
                    &p.apps.graph_reference,
                    GraphKernel::Bfs,
                    Placement::Remote,
                    false,
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("kv_memtier_remote", |b| {
        b.iter_batched(
            || Testbed::build(&p.testbed).unwrap(),
            |mut tb| run_kv(&mut tb, &p.apps.kv, Placement::Remote),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_cycle_gate, bench_analytic_gate, bench_cache,
              bench_packet_codec, bench_fabric, bench_event_queue,
              bench_workloads
}
criterion_main!(benches);
