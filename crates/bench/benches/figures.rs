//! One Criterion benchmark per paper artifact, at the quick profile:
//! each measures the wall-clock cost of regenerating (a representative
//! point of) that table or figure, so regressions in any experiment path
//! are caught. Full-scale regeneration is the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use thymesim_bench::Profile;
use thymesim_core::experiments::{ablate, apps, contention, dist, resilience, validate};
use thymesim_sim::Dur;

fn quick() -> Profile {
    let mut p = Profile::quick();
    // One point of each figure is enough for perf tracking.
    p.stream.elements = 16_384;
    p
}

fn fig2_fig3_point(c: &mut Criterion) {
    let p = quick();
    c.bench_function("fig2_fig3_stream_sweep_point", |b| {
        b.iter(|| validate::stream_delay_sweep(&p.testbed, &p.stream, &[100]))
    });
}

fn fig4_point(c: &mut Criterion) {
    let p = quick();
    c.bench_function("fig4_resilience_point", |b| {
        b.iter(|| resilience::resilience_sweep(&p.testbed, &p.stream, &[1000]))
    });
}

fn table1_cell(c: &mut Criterion) {
    let p = quick();
    c.bench_function("table1_full", |b| {
        b.iter(|| apps::table1(&p.testbed, &p.apps))
    });
}

fn fig5_point(c: &mut Criterion) {
    let p = quick();
    c.bench_function("fig5_sweep_point", |b| {
        b.iter(|| apps::fig5(&p.testbed, &p.apps, &[1, 200]))
    });
}

fn fig6_point(c: &mut Criterion) {
    let p = quick();
    c.bench_function("fig6_mcbn_two_instances", |b| {
        b.iter(|| contention::mcbn(&p.testbed, &p.stream, &[2]))
    });
}

fn fig7_point(c: &mut Criterion) {
    let p = quick();
    c.bench_function("fig7_mcln_two_lenders", |b| {
        b.iter(|| contention::mcln(&p.testbed, &p.stream, &[2]))
    });
}

fn dist_panel(c: &mut Criterion) {
    let p = quick();
    c.bench_function("dist_panel", |b| {
        b.iter(|| dist::dist_sweep(&p.testbed, &p.stream, Dur::us(20), 7))
    });
}

fn ablation_window(c: &mut Criterion) {
    let p = quick();
    c.bench_function("ablate_window_point", |b| {
        b.iter(|| ablate::window_sweep(&p.testbed, &p.stream, 100, &[64]))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = fig2_fig3_point, fig4_point, table1_cell, fig5_point,
              fig6_point, fig7_point, dist_panel, ablation_window
}
criterion_main!(figures);
