//! End-to-end exercise of the `repro --baseline-record` /
//! `--baseline-check` stage-regression gate, through the real binary:
//!
//! 1. record a baseline for the pinned quick config;
//! 2. an identical re-run passes the check (deterministic simulator);
//! 3. perturbing one stage mean, one phase band, or one counter
//!    utilization mean beyond tolerance makes the check exit nonzero
//!    *naming that band* — the negative paths CI relies on;
//! 4. a baseline pinning a different command, or a malformed file, is
//!    refused with exit 2 rather than silently compared.
//!
//! Telemetry/sweep state is per-process, and each step runs a fresh
//! `repro` process, so the steps cannot interfere with each other.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use thymesim_telemetry::baseline::Baseline;

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn check_against(path: &Path) -> Output {
    repro(&[
        "validate",
        "--profile",
        "quick",
        "--jobs",
        "2",
        &format!("--baseline-check={}", path.display()),
    ])
}

#[test]
fn baseline_gate_round_trip_and_negative_path() {
    let dir = std::env::temp_dir().join(format!("thymesim-blgate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bl: PathBuf = dir.join("quick.json");

    // 1. Record.
    let out = repro(&[
        "validate",
        "--profile",
        "quick",
        "--jobs",
        "2",
        &format!("--baseline-record={}", bl.display()),
    ]);
    assert!(out.status.success(), "record failed: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("baseline: recorded"));
    let text = std::fs::read_to_string(&bl).expect("baseline written");
    let base: Baseline = serde_json::from_str(&text).expect("baseline parses");
    assert_eq!(base.command, "validate --profile quick");
    assert!(base.stage_count() >= 6, "anatomy stages pinned");
    assert!(
        base.counter_count() >= 4,
        "utilization counters pinned, got {}",
        base.counter_count()
    );

    // 2. A clean re-run is within tolerance (exactly equal, in fact).
    let out = check_against(&bl);
    assert!(
        out.status.success(),
        "clean check failed: {}",
        stderr_of(&out)
    );
    assert!(stderr_of(&out).contains("baseline: OK"));

    // 3. Perturb one stage mean 1.5x beyond its ±2% band: the check
    //    must exit nonzero and name the drifted stage.
    let mut bad = base.clone();
    let stage = bad.sweeps[0]
        .stages
        .iter_mut()
        .find(|s| s.stage == "fabric.gate_wait")
        .expect("gate stage in baseline");
    stage.mean_ps *= 1.5;
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, serde_json::to_string_pretty(&bad).unwrap()).unwrap();
    let out = check_against(&bad_path);
    assert_eq!(out.status.code(), Some(1), "drift must exit 1");
    let err = stderr_of(&out);
    assert!(err.contains("DRIFT"), "stderr: {err}");
    assert!(
        err.contains("fabric.gate_wait"),
        "offending stage must be named: {err}"
    );
    assert!(err.contains("tolerance"), "delta report expected: {err}");

    // 3b. Perturb one *phase* band while leaving every stage-level mean
    //     untouched: drift confined to a workload phase must still exit
    //     1, naming both the stage and the phase.
    let mut phase_bad = base.clone();
    let (stage_name, phase_name) = {
        let stage = phase_bad.sweeps[0]
            .stages
            .iter_mut()
            .find(|s| s.phases.iter().any(|p| p.count > 0 && p.mean_ps > 0.0))
            .expect("a stage with a populated phase band");
        let phase = stage
            .phases
            .iter_mut()
            .find(|p| p.count > 0 && p.mean_ps > 0.0)
            .unwrap();
        phase.mean_ps *= 1.5;
        (stage.stage.clone(), phase.phase.clone())
    };
    let phase_bad_path = dir.join("phase_bad.json");
    std::fs::write(
        &phase_bad_path,
        serde_json::to_string_pretty(&phase_bad).unwrap(),
    )
    .unwrap();
    let out = check_against(&phase_bad_path);
    assert_eq!(out.status.code(), Some(1), "phase drift must exit 1");
    let err = stderr_of(&out);
    assert!(
        err.contains(&format!("[phase {phase_name}]")),
        "offending phase {phase_name} must be named: {err}"
    );
    assert!(
        err.contains(&stage_name),
        "offending stage {stage_name} must be named: {err}"
    );

    // 3b2. Perturb one stage *p999 tail band* while leaving the stage
    //      mean untouched: a fattened tail with an unmoved mean must
    //      still exit 1, and the report must say p999, not mean.
    let mut tail_bad = base.clone();
    let tail_stage = {
        let stage = tail_bad.sweeps[0]
            .stages
            .iter_mut()
            .find(|s| s.p999_ps > 0)
            .expect("a stage with a populated tail band");
        stage.p999_ps = (stage.p999_ps as f64 * 1.5) as u64;
        stage.stage.clone()
    };
    let tail_bad_path = dir.join("tail_bad.json");
    std::fs::write(
        &tail_bad_path,
        serde_json::to_string_pretty(&tail_bad).unwrap(),
    )
    .unwrap();
    let out = check_against(&tail_bad_path);
    assert_eq!(out.status.code(), Some(1), "tail drift must exit 1");
    let err = stderr_of(&out);
    assert!(
        err.contains(&tail_stage),
        "offending stage {tail_stage} must be named: {err}"
    );
    assert!(err.contains("p999"), "tail band must be named: {err}");

    // 3c. Perturb one *counter* utilization mean while leaving every
    //     stage and phase band untouched: drift confined to a counter
    //     track must still exit 1, naming `counter <name>`.
    let mut counter_bad = base.clone();
    let counter_name = {
        let counter = counter_bad.sweeps[0]
            .counters
            .iter_mut()
            .find(|c| c.mean > 0.0)
            .expect("a populated counter band in the baseline");
        counter.mean *= 1.5;
        counter.name.clone()
    };
    let counter_bad_path = dir.join("counter_bad.json");
    std::fs::write(
        &counter_bad_path,
        serde_json::to_string_pretty(&counter_bad).unwrap(),
    )
    .unwrap();
    let out = check_against(&counter_bad_path);
    assert_eq!(out.status.code(), Some(1), "counter drift must exit 1");
    let err = stderr_of(&out);
    assert!(
        err.contains(&format!("counter {counter_name}")),
        "offending counter {counter_name} must be named: {err}"
    );

    // 4a. A baseline recorded from a different command is refused.
    let mut foreign = base.clone();
    foreign.command = "fig4 --profile quick".into();
    let foreign_path = dir.join("foreign.json");
    std::fs::write(
        &foreign_path,
        serde_json::to_string_pretty(&foreign).unwrap(),
    )
    .unwrap();
    let out = check_against(&foreign_path);
    assert_eq!(out.status.code(), Some(2), "command mismatch must exit 2");
    assert!(stderr_of(&out).contains("refusing to compare"));

    // 4b. Malformed and missing files are refused too.
    let garbled = dir.join("garbled.json");
    std::fs::write(&garbled, "{not json").unwrap();
    assert_eq!(check_against(&garbled).status.code(), Some(2));
    assert_eq!(
        check_against(&dir.join("absent.json")).status.code(),
        Some(2)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
