//! Distribution-driven delay injection — the paper's stated future work
//! (§VII: *"we aim to improve the delay injection framework by enabling
//! injecting delays according to a distribution instead of fixed values"*).
//!
//! [`DelayDist`] samples a per-message extra delay; [`DistGate`] applies it
//! on top of (or instead of) the PERIOD gate, modelling a fabric whose
//! latency varies at short timescales.

use thymesim_sim::{Dur, Time, Xoshiro256};

/// A latency distribution for per-message injected delay.
#[derive(Clone, Debug, serde::Serialize)]
pub enum DelayDist {
    /// Always exactly this much (equivalent to a calibrated PERIOD).
    Constant(Dur),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: Dur, hi: Dur },
    /// Exponential with the given mean (M/M/1-style congestion).
    Exponential { mean: Dur },
    /// Pareto with scale `xm` and shape `alpha` (> 1): heavy-tailed
    /// congestion events, the classic model for datacenter tail latency.
    Pareto { xm: Dur, alpha: f64 },
    /// Replay a recorded trace, cycling when exhausted.
    Trace(std::sync::Arc<[Dur]>),
}

impl DelayDist {
    /// Sample one delay. `idx` selects the trace position for
    /// [`DelayDist::Trace`]; stochastic variants draw from `rng`.
    pub fn sample(&self, rng: &mut Xoshiro256, idx: u64) -> Dur {
        match self {
            DelayDist::Constant(d) => *d,
            DelayDist::Uniform { lo, hi } => {
                debug_assert!(hi >= lo);
                let span = hi.as_ps() - lo.as_ps();
                Dur::ps(lo.as_ps() + if span == 0 { 0 } else { rng.below(span + 1) })
            }
            DelayDist::Exponential { mean } => Dur::from_ns_f64(rng.exp(mean.as_ns_f64())),
            DelayDist::Pareto { xm, alpha } => {
                debug_assert!(*alpha > 1.0, "Pareto needs alpha > 1 for a finite mean");
                let u = 1.0 - rng.next_f64(); // (0, 1]
                Dur::from_ns_f64(xm.as_ns_f64() / u.powf(1.0 / alpha))
            }
            DelayDist::Trace(t) => {
                assert!(!t.is_empty(), "empty delay trace");
                t[(idx % t.len() as u64) as usize]
            }
        }
    }

    /// Analytic mean of the distribution (trace: empirical mean).
    pub fn mean(&self) -> Dur {
        match self {
            DelayDist::Constant(d) => *d,
            DelayDist::Uniform { lo, hi } => Dur::ps((lo.as_ps() + hi.as_ps()) / 2),
            DelayDist::Exponential { mean } => *mean,
            DelayDist::Pareto { xm, alpha } => {
                Dur::from_ns_f64(xm.as_ns_f64() * alpha / (alpha - 1.0))
            }
            DelayDist::Trace(t) => {
                if t.is_empty() {
                    Dur::ZERO
                } else {
                    Dur::ps(t.iter().map(|d| d.as_ps()).sum::<u64>() / t.len() as u64)
                }
            }
        }
    }
}

/// Transaction-level gate that injects a sampled delay per message while
/// preserving FIFO ordering (a message cannot overtake an earlier one,
/// exactly like the hardware stream).
#[derive(Clone, Debug)]
pub struct DistGate {
    dist: DelayDist,
    rng: Xoshiro256,
    next_idx: u64,
    last_exit: Time,
}

impl DistGate {
    pub fn new(dist: DelayDist, seed: u64) -> DistGate {
        DistGate {
            dist,
            rng: Xoshiro256::seed_from_u64(seed),
            next_idx: 0,
            last_exit: Time::ZERO,
        }
    }

    /// Delay a message arriving at `at`; returns its exit time.
    pub fn pass(&mut self, at: Time) -> Time {
        let d = self.dist.sample(&mut self.rng, self.next_idx);
        self.next_idx += 1;
        let exit = (at + d).max2(self.last_exit);
        self.last_exit = exit;
        thymesim_telemetry::latency("gate.delay", exit - at);
        exit
    }

    pub fn messages(&self) -> u64 {
        self.next_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant() {
        let d = DelayDist::Constant(Dur::us(3));
        let mut r = rng();
        for i in 0..10 {
            assert_eq!(d.sample(&mut r, i), Dur::us(3));
        }
        assert_eq!(d.mean(), Dur::us(3));
    }

    #[test]
    fn uniform_within_bounds_and_mean() {
        let d = DelayDist::Uniform {
            lo: Dur::ns(100),
            hi: Dur::ns(300),
        };
        let mut r = rng();
        let mut sum = 0u64;
        let n = 20_000;
        for i in 0..n {
            let s = d.sample(&mut r, i);
            assert!(s >= Dur::ns(100) && s <= Dur::ns(300));
            sum += s.as_ps();
        }
        let mean_ns = sum as f64 / n as f64 / 1000.0;
        assert!((195.0..205.0).contains(&mean_ns), "mean {mean_ns}");
        assert_eq!(d.mean(), Dur::ns(200));
    }

    #[test]
    fn exponential_mean_converges() {
        let d = DelayDist::Exponential { mean: Dur::us(5) };
        let mut r = rng();
        let n = 50_000;
        let sum: u64 = (0..n).map(|i| d.sample(&mut r, i).as_ps()).sum();
        let mean_us = sum as f64 / n as f64 / 1e6;
        assert!((4.9..5.1).contains(&mean_us), "mean {mean_us}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = DelayDist::Pareto {
            xm: Dur::us(1),
            alpha: 2.0,
        };
        let mut r = rng();
        let n = 50_000usize;
        let mut samples: Vec<u64> = (0..n).map(|i| d.sample(&mut r, i as u64).as_ps()).collect();
        samples.sort_unstable();
        let p50 = samples[n / 2] as f64;
        let p999 = samples[n * 999 / 1000] as f64;
        assert!(samples[0] >= Dur::us(1).as_ps(), "below scale");
        // For alpha=2: p50 = xm*sqrt(2) ≈ 1.41us, p99.9 = xm*sqrt(1000) ≈ 31.6us.
        assert!((1.3e6..1.55e6).contains(&p50), "p50={p50}");
        assert!(p999 > 20e6, "tail not heavy: p999={p999}");
        assert_eq!(d.mean(), Dur::us(2));
    }

    #[test]
    fn trace_cycles_in_order() {
        let d = DelayDist::Trace(vec![Dur::ns(1), Dur::ns(2), Dur::ns(3)].into());
        let mut r = rng();
        let got: Vec<Dur> = (0..7).map(|i| d.sample(&mut r, i)).collect();
        assert_eq!(
            got,
            vec![
                Dur::ns(1),
                Dur::ns(2),
                Dur::ns(3),
                Dur::ns(1),
                Dur::ns(2),
                Dur::ns(3),
                Dur::ns(1)
            ]
        );
        assert_eq!(d.mean(), Dur::ns(2));
    }

    #[test]
    fn dist_gate_preserves_fifo_order() {
        // Wildly varying delays must not reorder messages.
        let mut g = DistGate::new(
            DelayDist::Uniform {
                lo: Dur::ns(0),
                hi: Dur::us(100),
            },
            42,
        );
        let mut prev = Time::ZERO;
        for k in 0..1000u64 {
            let exit = g.pass(Time::ns(k * 10));
            assert!(exit >= prev, "reordered at message {k}");
            assert!(exit >= Time::ns(k * 10));
            prev = exit;
        }
        assert_eq!(g.messages(), 1000);
    }

    #[test]
    fn dist_gate_is_deterministic_per_seed() {
        let run = |seed| {
            let mut g = DistGate::new(DelayDist::Exponential { mean: Dur::us(1) }, seed);
            (0..50)
                .map(|k| g.pass(Time::ns(k * 100)).as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
