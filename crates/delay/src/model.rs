//! Transaction-level (analytic) model of the delay gate.
//!
//! Full workloads issue hundreds of millions of beats; simulating every
//! FPGA cycle would dominate run time. [`AnalyticGate`] computes each
//! beat's grant time in O(1) and is *provably equivalent* to
//! [`crate::gate::CycleDelayGate`] when the downstream is ready (the NIC's
//! TX FIFO never backpressures in the prototype — the 100 Gb/s link drains
//! a beat every ~2.6 cycles while the gate emits at most one per PERIOD):
//!
//! * a beat offered at cycle `a` fires at the smallest multiple of
//!   `PERIOD` that is ≥ `a` and strictly greater than the previous grant;
//! * since consecutive multiples differ by exactly `PERIOD`, that is
//!   `align_up(max(a, prev_grant + 1), PERIOD)`.
//!
//! The equivalence is additionally enforced by property tests against the
//! cycle-accurate gate (see `tests` below).

use crate::gate::PeriodSource;
use thymesim_sim::{Clock, Time};

/// O(1) grant-time calculator mirroring equation (1).
#[derive(Clone, Debug)]
pub struct AnalyticGate<P: PeriodSource> {
    period: P,
    clock: Clock,
    /// Cycle of the most recent grant, or `None` before the first.
    last_grant: Option<u64>,
    /// Beats granted so far.
    pub granted: u64,
    /// Does this gate own the point's `gate.busy` / `gate.queue_depth`
    /// counter tracks (exclusively claimed: first gate constructed
    /// records, so busy fractions stay within [0, 1] when several
    /// engines share one point)?
    tracked: bool,
}

#[inline]
fn align_up(x: u64, p: u64) -> u64 {
    x.div_ceil(p) * p
}

impl<P: PeriodSource> AnalyticGate<P> {
    pub fn new(period: P, clock: Clock) -> AnalyticGate<P> {
        AnalyticGate {
            period,
            clock,
            last_grant: None,
            granted: 0,
            tracked: thymesim_telemetry::claim("gate.busy") == 0,
        }
    }

    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Grant cycle for a beat that becomes valid at absolute cycle `a`.
    #[inline]
    pub fn grant_cycle(&mut self, a: u64) -> u64 {
        let earliest = match self.last_grant {
            Some(g) => a.max(g + 1),
            None => a,
        };
        // PERIOD may vary over time (piecewise schedules); the period in
        // effect at the earliest candidate slot decides the alignment.
        // For step schedules we iterate: aligning can cross a boundary into
        // a region with a different period, so re-align until stable.
        let mut slot = align_up(earliest, self.period.period_at(earliest));
        loop {
            let p = self.period.period_at(slot);
            let aligned = align_up(slot.max(earliest), p);
            if aligned == slot && slot.is_multiple_of(p) {
                break;
            }
            slot = aligned;
        }
        self.last_grant = Some(slot);
        self.granted += 1;
        slot
    }

    /// Time-domain wrapper: the instant the beat crosses the gate, for a
    /// beat arriving (valid) at instant `at`.
    ///
    /// The beat is granted at a cycle *boundary*; it lands downstream one
    /// full cycle later (the transfer occupies the granted cycle).
    #[inline]
    pub fn pass_one(&mut self, at: Time) -> Time {
        let a = self.clock.cycles_at(self.clock.next_edge(at));
        let g = self.grant_cycle(a);
        let t = self.clock.time_of_cycle(g + 1);
        // Injected-delay accounting: arrival-to-crossing per beat.
        thymesim_telemetry::latency("gate.delay", t - at);
        if self.tracked {
            // Each waiting beat is a unit level over [arrival, crossing);
            // overlapping segments sum to the instantaneous queue depth.
            thymesim_telemetry::counter_level("gate.queue_depth", at, t, 1);
            // The granted cycle occupies the gate (grants are ≥ PERIOD
            // apart, so the busy intervals never overlap).
            thymesim_telemetry::counter_busy("gate.busy", self.clock.time_of_cycle(g), t);
        }
        t
    }

    /// Pass a multi-beat message (e.g. a 3-beat write packet): beats become
    /// valid back-to-back; returns the time the **last** beat has crossed.
    pub fn pass_message(&mut self, at: Time, beats: u64) -> Time {
        assert!(beats >= 1);
        let mut done = at;
        for _ in 0..beats {
            done = self.pass_one(done.max(at));
        }
        done
    }

    /// Reset grant history (new run on the same configuration).
    pub fn reset(&mut self) {
        self.last_grant = None;
        self.granted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{ConstPeriod, CycleDelayGate, PiecewisePeriod};
    use proptest::prelude::*;
    use thymesim_axi::{Beat, Consumer, Producer, ReadyPattern, StreamSim};

    fn fpga() -> Clock {
        Clock::mhz(250)
    }

    #[test]
    fn grant_is_aligned_and_spaced() {
        let mut g = AnalyticGate::new(ConstPeriod(7), fpga());
        let mut prev = None;
        for a in [0u64, 1, 2, 3, 50, 50, 50, 51, 200] {
            let gc = g.grant_cycle(a);
            assert_eq!(gc % 7, 0);
            assert!(gc >= a);
            if let Some(p) = prev {
                assert!(gc >= p + 7);
            }
            prev = Some(gc);
        }
    }

    #[test]
    fn period_one_grants_immediately() {
        let mut g = AnalyticGate::new(ConstPeriod(1), fpga());
        assert_eq!(g.grant_cycle(0), 0);
        assert_eq!(g.grant_cycle(0), 1, "same-cycle second beat waits a cycle");
        assert_eq!(g.grant_cycle(10), 10);
    }

    #[test]
    fn pass_one_converts_time_correctly() {
        let mut g = AnalyticGate::new(ConstPeriod(10), fpga());
        // Arrival at 1 ns -> next edge cycle 1 -> grant cycle 10 -> crossed
        // at start of cycle 11 = 44 ns.
        assert_eq!(g.pass_one(Time::ns(1)), Time::ns(44));
    }

    #[test]
    fn pass_message_beats_are_serialized() {
        let mut g = AnalyticGate::new(ConstPeriod(5), fpga());
        let done = g.pass_message(Time::ZERO, 3);
        // Grants at cycles 0,5,10; last crossed at cycle 11 => 44ns.
        assert_eq!(done, Time::ns(44));
        assert_eq!(g.granted, 3);
    }

    #[test]
    fn reset_clears_history() {
        let mut g = AnalyticGate::new(ConstPeriod(5), fpga());
        let a = g.pass_one(Time::ZERO);
        g.reset();
        let b = g.pass_one(Time::ZERO);
        assert_eq!(a, b);
    }

    /// Replays the joint producer/gate semantics analytically: beat k is
    /// offered at the first `gap`-aligned cycle with the producer idle.
    fn analytic_fire_cycles(periods: &dyn PeriodSource, gap: u64, n: u64) -> Vec<u64> {
        struct Wrap<'a>(&'a dyn PeriodSource);
        impl PeriodSource for Wrap<'_> {
            fn period_at(&self, c: u64) -> u64 {
                self.0.period_at(c)
            }
        }
        let mut g = AnalyticGate::new(Wrap(periods), fpga());
        let mut fires = Vec::with_capacity(n as usize);
        let mut free_at = 0u64; // first cycle the producer can latch a new beat
        for _ in 0..n {
            let arrival = free_at.div_ceil(gap) * gap; // first gap-aligned cycle >= free_at
            let fire = g.grant_cycle(arrival);
            fires.push(fire);
            free_at = fire + 1;
        }
        fires
    }

    fn cycle_fire_cycles<P: PeriodSource + 'static>(
        period: P,
        gap: u64,
        n: u64,
        cycles: u64,
    ) -> Vec<u64> {
        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..n).map(Beat::new)).with_gap(gap));
        let g = sim.add(CycleDelayGate::new(period));
        let (c, rec) = Consumer::new(ReadyPattern::Always);
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(cycles);
        let r = rec.borrow().iter().map(|(cy, _)| *cy).collect();
        r
    }

    #[test]
    fn analytic_matches_cycle_level_basic() {
        for period in [1u64, 2, 3, 5, 8, 13, 50] {
            for gap in [1u64, 2, 3, 7] {
                let n = 25;
                let want = cycle_fire_cycles(ConstPeriod(period), gap, n, period * n * 3 + 200);
                let got = analytic_fire_cycles(&ConstPeriod(period), gap, n);
                assert_eq!(
                    want.len(),
                    n as usize,
                    "cycle sim did not drain (period={period} gap={gap})"
                );
                assert_eq!(got, want, "mismatch at period={period} gap={gap}");
            }
        }
    }

    #[test]
    fn analytic_matches_cycle_level_piecewise() {
        let mk = || PiecewisePeriod::new(vec![(0, 3), (60, 11), (200, 1)]);
        let n = 40;
        let want = cycle_fire_cycles(mk(), 2, n, 2000);
        let got = analytic_fire_cycles(&mk(), 2, n);
        assert_eq!(want.len(), n as usize);
        assert_eq!(got, want);
    }

    proptest! {
        /// Cycle-accurate and analytic gates agree for arbitrary
        /// (PERIOD, producer gap, beat count).
        #[test]
        fn prop_analytic_equals_cycle_level(
            period in 1u64..64,
            gap in 1u64..16,
            n in 1u64..60,
        ) {
            let horizon = (period.max(gap)) * n * 3 + 500;
            let want = cycle_fire_cycles(ConstPeriod(period), gap, n, horizon);
            let got = analytic_fire_cycles(&ConstPeriod(period), gap, n);
            prop_assert_eq!(want.len(), n as usize, "cycle sim incomplete");
            prop_assert_eq!(got, want);
        }

        /// Grant invariants hold for arbitrary arrival sequences.
        #[test]
        fn prop_grant_invariants(
            period in 1u64..1000,
            arrivals in proptest::collection::vec(0u64..10_000, 1..100),
        ) {
            let mut sorted = arrivals.clone();
            sorted.sort_unstable();
            let mut g = AnalyticGate::new(ConstPeriod(period), fpga());
            let mut prev: Option<u64> = None;
            for a in sorted {
                let gc = g.grant_cycle(a);
                prop_assert_eq!(gc % period, 0, "misaligned grant");
                prop_assert!(gc >= a, "granted before arrival");
                if let Some(p) = prev {
                    prop_assert!(gc >= p + period, "grants too close");
                }
                prev = Some(gc);
            }
        }
    }
}
