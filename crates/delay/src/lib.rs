//! # thymesim-delay
//!
//! The paper's delay-injection framework, reproduced at two fidelities:
//!
//! * [`gate::CycleDelayGate`] — the cycle-accurate AXI4-Stream module
//!   implementing equation (1),
//!   `READY_NEW = READY_OLD & (COUNTER % PERIOD == 0)`, exactly as the
//!   FPGA block between the NIC's routing and multiplexer stages;
//! * [`model::AnalyticGate`] — an O(1) transaction-level model of the same
//!   behaviour, property-tested to produce identical grant cycles, used on
//!   the workload hot path;
//! * [`dist`] — the paper's future-work extension: distribution-driven
//!   per-message delay (uniform / exponential / Pareto / trace replay);
//! * [`gate::PiecewisePeriod`] — PERIOD schedules that change during a run
//!   (§V: latency variation at short timescales);
//! * [`calibrate`] — PERIOD ↔ latency/bandwidth mappings used by the
//!   validation experiment (Fig. 2/3) and for choosing sweep points.
//!
//! ```
//! use thymesim_delay::{AnalyticGate, ConstPeriod};
//! use thymesim_sim::{Clock, Time};
//!
//! // One transaction per 100 FPGA cycles (400 ns at 250 MHz).
//! let mut gate = AnalyticGate::new(ConstPeriod(100), Clock::mhz(250));
//! let first = gate.pass_one(Time::ZERO);
//! let second = gate.pass_one(Time::ZERO); // queued behind the first
//! assert_eq!((second - first), thymesim_sim::Dur::ns(400));
//! ```

pub mod calibrate;
pub mod dist;
pub mod gate;
pub mod model;

pub use dist::{DelayDist, DistGate};
pub use gate::{BurstPeriod, ConstPeriod, CycleDelayGate, PeriodSource, PiecewisePeriod};
pub use model::AnalyticGate;
