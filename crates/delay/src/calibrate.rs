//! Calibration helpers mapping the PERIOD knob to expected latencies.
//!
//! §III-B of the paper validates the injector by showing (a) a strong
//! linear correlation between PERIOD and application-measured latency and
//! (b) coverage of the datacenter network latency envelope. These helpers
//! compute the model-predicted mapping used to label figure axes and to
//! cross-check the simulation output.

use crate::gate::{ConstPeriod, PeriodSource};
use crate::model::AnalyticGate;
use thymesim_sim::{linear_fit, Clock, Dur, LinearFit, Time};

/// Predicted steady-state per-request latency for a saturating workload
/// with `window` outstanding requests (each one gate beat):
/// every grant admits one request, so a request entering the queue waits
/// for `window` grants ≈ `window × PERIOD` cycles, plus the un-gated base
/// path latency.
pub fn predicted_latency(period: u64, window: u64, clock: Clock, base: Dur) -> Dur {
    // PERIOD=1 admits one beat per cycle, which is faster than the base
    // pipeline for realistic windows; the gate only dominates once
    // window×PERIOD cycles exceed the base latency.
    let gate = clock.cycles(window.saturating_mul(period));
    if gate > base {
        gate
    } else {
        base
    }
}

/// Predicted steady-state goodput in bytes/s when each granted beat moves
/// one `line_bytes` cache line and the gate is the bottleneck.
pub fn predicted_bandwidth(period: u64, clock: Clock, line_bytes: u64, link_bps: f64) -> f64 {
    let gate_bps = line_bytes as f64 / (clock.cycles(period).as_secs_f64());
    gate_bps.min(link_bps)
}

/// Empirically measure the gate's grant spacing at a given PERIOD using
/// the analytic gate under saturation, returning mean spacing.
pub fn measured_grant_spacing(period: u64, clock: Clock, n: u64) -> Dur {
    let mut g = AnalyticGate::new(ConstPeriod(period), clock);
    let mut prev = g.pass_one(Time::ZERO);
    let first = prev;
    for _ in 1..n {
        prev = g.pass_one(Time::ZERO);
    }
    Dur::ps((prev - first).as_ps() / (n - 1).max(1))
}

/// Fit latency = a·PERIOD + b over a sweep, as the paper does to validate
/// linearity of the injector.
pub fn fit_period_latency(points: &[(u64, Dur)]) -> LinearFit {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .map(|(p, d)| (*p as f64, d.as_us_f64()))
        .collect();
    linear_fit(&pts)
}

/// PERIOD that produces (approximately) a target injected per-request
/// latency for a saturating workload — the inverse mapping used to pick
/// sweep points matching datacenter percentiles.
pub fn period_for_latency(target: Dur, window: u64, clock: Clock) -> u64 {
    let per_grant = clock.cycle().as_ps() * window;
    (target.as_ps() / per_grant).max(1)
}

/// Convenience: does this period source ever change? (Constant schedules
/// allow cheaper fast paths in the fabric.)
pub fn is_constant<P: PeriodSource>(p: &P, horizon: u64) -> bool {
    let p0 = p.period_at(0);
    // Sample log-spaced points; exact for ConstPeriod, heuristic otherwise.
    let mut c = 1u64;
    while c < horizon {
        if p.period_at(c) != p0 {
            return false;
        }
        c = c.saturating_mul(2);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::PiecewisePeriod;

    fn fpga() -> Clock {
        Clock::mhz(250)
    }

    #[test]
    fn grant_spacing_equals_period() {
        for p in [1u64, 4, 32, 1000] {
            let spacing = measured_grant_spacing(p, fpga(), 100);
            assert_eq!(spacing, fpga().cycles(p), "period {p}");
        }
    }

    #[test]
    fn predicted_latency_floor_is_base() {
        let base = Dur::ns(1200);
        assert_eq!(predicted_latency(1, 128, fpga(), base), base);
        // 128 × 100 cycles × 4 ns = 51.2 us dominates the base.
        assert_eq!(
            predicted_latency(100, 128, fpga(), base),
            Dur::ns(128 * 100 * 4)
        );
    }

    #[test]
    fn predicted_bandwidth_is_link_capped() {
        let link = 12.5e9; // 100 Gb/s
        let bw1 = predicted_bandwidth(1, fpga(), 128, link);
        assert_eq!(bw1, link, "PERIOD=1 must be link-limited");
        let bw100 = predicted_bandwidth(100, fpga(), 128, link);
        // 128 B / 400 ns = 320 MB/s
        assert!((bw100 / 3.2e8 - 1.0).abs() < 1e-9, "bw100={bw100}");
    }

    #[test]
    fn bdp_is_constant_when_gate_dominates() {
        // window × line stays constant: latency × bandwidth must equal it.
        let window = 128u64;
        let line = 128u64;
        for p in [50u64, 100, 200, 300] {
            let lat = predicted_latency(p, window, fpga(), Dur::ns(1200));
            let bw = predicted_bandwidth(p, fpga(), line, 12.5e9);
            let bdp = lat.as_secs_f64() * bw;
            assert!(
                (bdp / (window * line) as f64 - 1.0).abs() < 1e-9,
                "BDP {bdp} at PERIOD {p}"
            );
        }
    }

    #[test]
    fn fit_is_perfectly_linear_for_model() {
        let pts: Vec<(u64, Dur)> = [10u64, 50, 100, 200, 300]
            .iter()
            .map(|&p| (p, predicted_latency(p, 128, fpga(), Dur::ns(1200))))
            .collect();
        let fit = fit_period_latency(&pts);
        assert!(fit.r > 0.999, "r={}", fit.r);
        // slope = window × cycle = 128 × 4ns = 0.512 us / PERIOD.
        assert!((fit.slope - 0.512).abs() < 1e-6, "slope={}", fit.slope);
    }

    #[test]
    fn period_for_latency_inverts_prediction() {
        let clock = fpga();
        for target_us in [10u64, 50, 150] {
            let p = period_for_latency(Dur::us(target_us), 128, clock);
            let achieved = predicted_latency(p, 128, clock, Dur::ZERO);
            let err = (achieved.as_us_f64() - target_us as f64).abs() / target_us as f64;
            assert!(err < 0.05, "target {target_us}us got {achieved}");
        }
    }

    #[test]
    fn is_constant_detects_schedules() {
        assert!(is_constant(&ConstPeriod(7), 1 << 40));
        let pw = PiecewisePeriod::new(vec![(0, 2), (64, 9)]);
        assert!(!is_constant(&pw, 1 << 20));
    }
}
