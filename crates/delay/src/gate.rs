//! The cycle-level delay-injection module.
//!
//! This is the paper's equation (1), reproduced bit-for-bit:
//!
//! ```text
//! READY_NEW = READY_OLD & (COUNTER % PERIOD == 0)
//! ```
//!
//! where `COUNTER` is the number of FPGA clock cycles since system start
//! and `READY_OLD` is the unmodified downstream READY. The module sits
//! between the routing and multiplexer blocks of the borrower-side NIC
//! egress; VALID and TDATA pass through untouched, so at most one beat is
//! forwarded every `PERIOD` cycles — *aligned to absolute multiples of
//! `PERIOD`*, a detail that matters for the analytic model's equivalence
//! proof.

use thymesim_axi::stage::{passthrough_offer, Flags, Offers, Stage, NO_FLAGS, NO_OFFERS};
use thymesim_sim::Clock;

/// Supplies the `PERIOD` value for a given cycle, enabling the paper's
/// future-work extension (varying delay within a run) without changing the
/// gate logic.
pub trait PeriodSource {
    /// PERIOD in effect at `cycle`; must be ≥ 1.
    fn period_at(&self, cycle: u64) -> u64;
}

/// The paper's configuration: one constant PERIOD for the whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstPeriod(pub u64);

impl PeriodSource for ConstPeriod {
    #[inline]
    fn period_at(&self, _cycle: u64) -> u64 {
        self.0
    }
}

/// Step schedule: `(from_cycle, period)` pairs, sorted by `from_cycle`.
/// Covers the paper's §V discussion of delay varying at short timescales.
#[derive(Clone, Debug)]
pub struct PiecewisePeriod {
    steps: Vec<(u64, u64)>,
}

impl PiecewisePeriod {
    /// `steps` must start at cycle 0 and be strictly increasing in cycle.
    pub fn new(steps: Vec<(u64, u64)>) -> PiecewisePeriod {
        assert!(!steps.is_empty(), "empty schedule");
        assert_eq!(steps[0].0, 0, "schedule must start at cycle 0");
        assert!(
            steps.windows(2).all(|w| w[0].0 < w[1].0),
            "schedule cycles must be strictly increasing"
        );
        assert!(steps.iter().all(|&(_, p)| p >= 1), "PERIOD must be >= 1");
        PiecewisePeriod { steps }
    }
}

impl PiecewisePeriod {
    /// Parse a schedule from text: one `<from_cycle> <period>` pair per
    /// line; blank lines and `#` comments allowed. The recorded schedules
    /// of real congestion events can be replayed this way.
    pub fn from_text(text: &str) -> Result<PiecewisePeriod, String> {
        let mut steps = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let cycle: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad cycle", lineno + 1))?;
            let period: u64 = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad period", lineno + 1))?;
            if it.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            steps.push((cycle, period));
        }
        if steps.is_empty() {
            return Err("empty schedule".into());
        }
        if steps[0].0 != 0 {
            return Err("schedule must start at cycle 0".into());
        }
        if !steps.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err("cycles must be strictly increasing".into());
        }
        if steps.iter().any(|&(_, p)| p == 0) {
            return Err("PERIOD must be >= 1".into());
        }
        Ok(PiecewisePeriod::new(steps))
    }
}

/// Periodic microbursts: the fabric alternates between a calm PERIOD and
/// a congested PERIOD on a fixed duty cycle — the short-timescale
/// variation §V says the constant injector cannot produce.
#[derive(Clone, Copy, Debug)]
pub struct BurstPeriod {
    /// PERIOD outside bursts.
    pub calm: u64,
    /// PERIOD inside bursts.
    pub burst: u64,
    /// Cycles per calm+burst pattern repetition.
    pub cycle_len: u64,
    /// Cycles of each repetition spent bursting (≤ cycle_len).
    pub burst_len: u64,
}

impl BurstPeriod {
    pub fn new(calm: u64, burst: u64, cycle_len: u64, burst_len: u64) -> BurstPeriod {
        assert!(calm >= 1 && burst >= 1);
        assert!(cycle_len >= 1 && burst_len <= cycle_len);
        BurstPeriod {
            calm,
            burst,
            cycle_len,
            burst_len,
        }
    }

    /// Fraction of time spent in the burst state.
    pub fn duty(&self) -> f64 {
        self.burst_len as f64 / self.cycle_len as f64
    }
}

impl PeriodSource for BurstPeriod {
    #[inline]
    fn period_at(&self, cycle: u64) -> u64 {
        if cycle % self.cycle_len < self.burst_len {
            self.burst
        } else {
            self.calm
        }
    }
}

impl PeriodSource for PiecewisePeriod {
    #[inline]
    fn period_at(&self, cycle: u64) -> u64 {
        match self.steps.binary_search_by_key(&cycle, |&(c, _)| c) {
            Ok(i) => self.steps[i].1,
            Err(i) => self.steps[i - 1].1,
        }
    }
}

/// Cycle-accurate delay gate: an AXI4-Stream [`Stage`] implementing
/// equation (1). No beat is ever stored; TDATA passes straight through.
///
/// The module is a two-port block: its slave-side READY is the paper's
/// `READY_NEW = READY_OLD & (COUNTER % PERIOD == 0)`, and — as in any
/// consistent hardware realization — the master-side VALID is exposed only
/// in the same cycles, so both handshakes of the wire fire together. If a
/// beat was exposed in an open cycle but the downstream stalled, VALID is
/// *held* (AXI forbids retraction) and the transfer completes as soon as
/// the downstream becomes ready. In the prototype's operating regime the
/// downstream TX path never backpressures, making this identical to a
/// strict reading of equation (1); the analytic model's equivalence tests
/// run in that regime.
pub struct CycleDelayGate<P: PeriodSource> {
    period: P,
    /// A beat was exposed downstream but not yet accepted (VALID held).
    pending: bool,
    /// Beats forwarded (for throughput assertions in tests).
    pub forwarded: u64,
    /// Cycles in which upstream was valid but the gate held READY low.
    pub gated_cycles: u64,
    /// When set, the gate emits virtual-time utilization counters
    /// (`gate.busy` per forwarded cycle, `gate.queue_depth` per gated
    /// cycle) by mapping cycle numbers through this clock — the same
    /// tracks the analytic model records, at cycle granularity.
    clock: Option<Clock>,
}

impl<P: PeriodSource> CycleDelayGate<P> {
    pub fn new(period: P) -> CycleDelayGate<P> {
        CycleDelayGate {
            period,
            pending: false,
            forwarded: 0,
            gated_cycles: 0,
            clock: None,
        }
    }

    /// Like [`CycleDelayGate::new`], but with a wall clock so the gate
    /// reports utilization counter tracks in virtual time. The tracks
    /// are claimed exclusively per point (shared with the analytic
    /// gate's): only the first claimant records, so busy fractions stay
    /// within [0, 1] when several gates run in one point.
    pub fn with_clock(period: P, clock: Clock) -> CycleDelayGate<P> {
        CycleDelayGate {
            clock: (thymesim_telemetry::claim("gate.busy") == 0).then_some(clock),
            ..CycleDelayGate::new(period)
        }
    }

    /// `COUNTER % PERIOD == 0` — the cycle admits a transfer.
    #[inline]
    fn open(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.period.period_at(cycle))
    }

    #[inline]
    fn exposing(&self, cycle: u64) -> bool {
        self.open(cycle) || self.pending
    }
}

impl<P: PeriodSource> Stage for CycleDelayGate<P> {
    fn ports(&self) -> (usize, usize) {
        (1, 1)
    }

    fn offer(&self, cycle: u64, inputs: &Offers) -> Offers {
        if self.exposing(cycle) {
            passthrough_offer(inputs)
        } else {
            NO_OFFERS
        }
    }

    fn ready(&self, cycle: u64, _inputs: &Offers, out_ready: &Flags) -> Flags {
        let mut r = NO_FLAGS;
        // READY_NEW = READY_OLD & (COUNTER % PERIOD == 0), with VALID-hold.
        r[0] = out_ready[0] && self.exposing(cycle);
        r
    }

    fn clock(&mut self, cycle: u64, inputs: &Offers, fired_in: &Offers, _fired_out: &Flags) {
        let exposed = inputs[0].is_some() && self.exposing(cycle);
        if fired_in[0].is_some() {
            self.forwarded += 1;
            self.pending = false;
            if let Some(ck) = self.clock {
                thymesim_telemetry::counter_busy(
                    "gate.busy",
                    ck.time_of_cycle(cycle),
                    ck.time_of_cycle(cycle + 1),
                );
            }
        } else {
            if inputs[0].is_some() {
                self.gated_cycles += 1;
                if let Some(ck) = self.clock {
                    thymesim_telemetry::counter_level(
                        "gate.queue_depth",
                        ck.time_of_cycle(cycle),
                        ck.time_of_cycle(cycle + 1),
                        1,
                    );
                }
            }
            self.pending = exposed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_axi::{Beat, Consumer, Producer, ReadyPattern, StreamSim};

    fn run_gate(period: u64, n_beats: u64, cycles: u64) -> Vec<(u64, Beat)> {
        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..n_beats).map(Beat::new)));
        let g = sim.add(CycleDelayGate::new(ConstPeriod(period)));
        let (c, rec) = Consumer::new(ReadyPattern::Always);
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(cycles);
        let r = rec.borrow().clone();
        r
    }

    #[test]
    fn period_one_is_transparent() {
        let got = run_gate(1, 50, 60);
        assert_eq!(got.len(), 50);
        // Back-to-back beats every cycle once flowing.
        for w in got.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 1);
        }
    }

    #[test]
    fn grants_align_to_absolute_multiples() {
        for period in [2u64, 3, 7, 16, 100] {
            let got = run_gate(period, 10, period * 15 + 10);
            assert_eq!(got.len(), 10, "period {period} lost beats");
            for (cycle, _) in &got {
                assert_eq!(
                    cycle % period,
                    0,
                    "grant at cycle {cycle} not aligned to PERIOD={period}"
                );
            }
            for w in got.windows(2) {
                assert_eq!(
                    w[1].0 - w[0].0,
                    period,
                    "saturated gate must grant exactly every PERIOD"
                );
            }
        }
    }

    #[test]
    fn throughput_is_one_over_period() {
        let period = 5;
        let got = run_gate(period, 40, 5 * 40 + 20);
        assert_eq!(got.len(), 40);
        let span = got.last().unwrap().0 - got.first().unwrap().0;
        let bpc = (got.len() - 1) as f64 / span as f64;
        assert!((bpc - 1.0 / period as f64).abs() < 1e-9, "bpc={bpc}");
    }

    #[test]
    fn respects_downstream_backpressure() {
        // Downstream ready every 3 cycles, gate period 2. A beat is exposed
        // at an open (even) cycle, holds VALID through the stall, and fires
        // at the next downstream-ready cycle: transfers land on multiples
        // of 3, never closer together than PERIOD.
        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..8).map(Beat::new)));
        let g = sim.add(CycleDelayGate::new(ConstPeriod(2)));
        let (c, rec) = Consumer::new(ReadyPattern::EveryK(3));
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(100);
        let got = rec.borrow();
        assert_eq!(got.len(), 8);
        for (cycle, _) in got.iter() {
            assert_eq!(cycle % 3, 0, "fired at {cycle} with downstream not ready");
        }
        for w in got.windows(2) {
            assert!(w[1].0 - w[0].0 >= 2, "beats closer than PERIOD");
        }
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn gated_cycles_are_counted() {
        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..4).map(Beat::new)));
        let g = sim.add(CycleDelayGate::new(ConstPeriod(10)));
        let (c, _rec) = Consumer::new(ReadyPattern::Always);
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(45);
        // 4 beats forwarded at cycles 0,10,20,30; most other cycles gated.
        // Reach into the sim to check counters via a fresh gate replay:
        // instead assert through the recorded behaviour of a direct gate.
        let mut gate = CycleDelayGate::new(ConstPeriod(10));
        use thymesim_axi::stage::{NO_FLAGS, NO_OFFERS};
        let mut ins = NO_OFFERS;
        ins[0] = Some(Beat::new(1));
        // cycle 1: valid input, not fired -> gated
        gate.clock(1, &ins, &NO_OFFERS, &NO_FLAGS);
        assert_eq!(gate.gated_cycles, 1);
        let mut fired = NO_OFFERS;
        fired[0] = Some(Beat::new(1));
        gate.clock(10, &ins, &fired, &NO_FLAGS);
        assert_eq!(gate.forwarded, 1);
    }

    #[test]
    fn piecewise_schedule_switches_period() {
        let sched = PiecewisePeriod::new(vec![(0, 2), (100, 10)]);
        assert_eq!(sched.period_at(0), 2);
        assert_eq!(sched.period_at(99), 2);
        assert_eq!(sched.period_at(100), 10);
        assert_eq!(sched.period_at(5000), 10);

        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..60).map(Beat::new)));
        let g = sim.add(CycleDelayGate::new(PiecewisePeriod::new(vec![
            (0, 2),
            (100, 10),
        ])));
        let (c, rec) = Consumer::new(ReadyPattern::Always);
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(400);
        let got = rec.borrow();
        assert_eq!(got.len(), 60);
        for (cycle, _) in got.iter() {
            if *cycle < 100 {
                assert_eq!(cycle % 2, 0);
            } else {
                assert_eq!(cycle % 10, 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "start at cycle 0")]
    fn piecewise_must_start_at_zero() {
        let _ = PiecewisePeriod::new(vec![(5, 2)]);
    }

    #[test]
    fn piecewise_parses_from_text() {
        let text = "# congestion event\n0 1\n250000 300   # spike\n\n500000 50\n";
        let sched = PiecewisePeriod::from_text(&text.replace("\\n", "\n")).unwrap();
        assert_eq!(sched.period_at(0), 1);
        assert_eq!(sched.period_at(300_000), 300);
        assert_eq!(sched.period_at(600_000), 50);
    }

    #[test]
    fn burst_period_alternates() {
        let b = BurstPeriod::new(1, 100, 1000, 250);
        assert_eq!(b.period_at(0), 100, "bursts lead each repetition");
        assert_eq!(b.period_at(249), 100);
        assert_eq!(b.period_at(250), 1);
        assert_eq!(b.period_at(999), 1);
        assert_eq!(b.period_at(1000), 100, "pattern repeats");
        assert!((b.duty() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bursty_gate_stalls_then_streams() {
        // 20-cycle bursts at PERIOD=20 alternating with calm PERIOD=1:
        // beats cluster in the calm windows.
        let mut sim = StreamSim::new();
        let p = sim.add(Producer::new((0..60).map(Beat::new)));
        let g = sim.add(CycleDelayGate::new(BurstPeriod::new(1, 20, 40, 20)));
        let (c, rec) = Consumer::new(ReadyPattern::Always);
        let c = sim.add(c);
        sim.connect(p, 0, g, 0);
        sim.connect(g, 0, c, 0);
        sim.run(400);
        let got = rec.borrow();
        assert_eq!(got.len(), 60);
        let in_calm = got.iter().filter(|(cy, _)| cy % 40 >= 20).count();
        assert!(
            in_calm * 4 >= got.len() * 3,
            "most beats should land in the calm half: {in_calm}/{}",
            got.len()
        );
    }

    #[test]
    fn piecewise_text_errors() {
        assert!(PiecewisePeriod::from_text("")
            .unwrap_err()
            .contains("empty"));
        assert!(PiecewisePeriod::from_text("5 2")
            .unwrap_err()
            .contains("start at cycle 0"));
        assert!(PiecewisePeriod::from_text("0 1\n0 2")
            .unwrap_err()
            .contains("increasing"));
        assert!(PiecewisePeriod::from_text("0 0")
            .unwrap_err()
            .contains(">= 1"));
        assert!(PiecewisePeriod::from_text("0 x")
            .unwrap_err()
            .contains("bad period"));
    }
}
