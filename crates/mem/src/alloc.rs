//! Simulated-memory allocation: a bump arena per region and typed vector
//! views, so workloads can lay out real data structures in the simulated
//! physical address space.

use crate::addr::Addr;
use crate::backing::Backing;
use crate::system::{MemSystem, RemoteBackend};
use std::marker::PhantomData;
use thymesim_sim::Time;

/// A bump allocator over a contiguous span of simulated physical memory.
#[derive(Clone, Copy, Debug)]
pub struct Arena {
    base: u64,
    end: u64,
    cursor: u64,
}

impl Arena {
    pub fn new(base: Addr, size: u64) -> Arena {
        Arena {
            base: base.0,
            end: base.0 + size,
            cursor: base.0,
        }
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = self.cursor.next_multiple_of(align);
        let end = start.checked_add(bytes).expect("arena allocation overflow");
        assert!(
            end <= self.end,
            "arena exhausted: need {bytes} B at {start:#x}, region ends at {:#x}",
            self.end
        );
        self.cursor = end;
        Addr(start)
    }

    /// Allocate a typed vector of `len` elements.
    pub fn alloc_vec<T: Scalar>(&mut self, len: u64) -> SimVec<T> {
        // Align vectors to the cache line so elements never straddle lines
        // in surprising ways and arrays are line-disjoint.
        let base = self.alloc(len * T::BYTES, 128.max(T::BYTES));
        SimVec {
            base,
            len,
            _t: PhantomData,
        }
    }

    pub fn remaining(&self) -> u64 {
        self.end - self.cursor
    }

    pub fn used(&self) -> u64 {
        self.cursor - self.base
    }
}

/// A fixed-width scalar that can live in simulated memory.
pub trait Scalar: Copy {
    const BYTES: u64;
    fn load(b: &Backing, a: Addr) -> Self;
    fn store(b: &mut Backing, a: Addr, v: Self);
}

impl Scalar for u8 {
    const BYTES: u64 = 1;
    fn load(b: &Backing, a: Addr) -> u8 {
        b.read_u8(a)
    }
    fn store(b: &mut Backing, a: Addr, v: u8) {
        b.write_u8(a, v);
    }
}

impl Scalar for u32 {
    const BYTES: u64 = 4;
    fn load(b: &Backing, a: Addr) -> u32 {
        b.read_u32(a)
    }
    fn store(b: &mut Backing, a: Addr, v: u32) {
        b.write_u32(a, v);
    }
}

impl Scalar for u64 {
    const BYTES: u64 = 8;
    fn load(b: &Backing, a: Addr) -> u64 {
        b.read_u64(a)
    }
    fn store(b: &mut Backing, a: Addr, v: u64) {
        b.write_u64(a, v);
    }
}

impl Scalar for f64 {
    const BYTES: u64 = 8;
    fn load(b: &Backing, a: Addr) -> f64 {
        b.read_f64(a)
    }
    fn store(b: &mut Backing, a: Addr, v: f64) {
        b.write_f64(a, v);
    }
}

/// A typed array in simulated memory. Element accesses go through the
/// timing model; `*_raw` variants touch only the data (for zero-time
/// initialization).
#[derive(Clone, Copy, Debug)]
pub struct SimVec<T: Scalar> {
    base: Addr,
    len: u64,
    _t: PhantomData<T>,
}

impl<T: Scalar> SimVec<T> {
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn base(&self) -> Addr {
        self.base
    }

    #[inline]
    pub fn addr(&self, i: u64) -> Addr {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        self.base.offset(i * T::BYTES)
    }

    /// Timed element read.
    #[inline]
    pub fn get<R: RemoteBackend>(&self, sys: &mut MemSystem<R>, at: Time, i: u64) -> (T, Time) {
        let a = self.addr(i);
        let t = sys.access(at, a, false);
        (T::load(sys.backing(), a), t)
    }

    /// Timed element write.
    #[inline]
    pub fn set<R: RemoteBackend>(&self, sys: &mut MemSystem<R>, at: Time, i: u64, v: T) -> Time {
        let a = self.addr(i);
        let t = sys.access(at, a, true);
        T::store(sys.backing_mut(), a, v);
        t
    }

    /// Untimed read (initialization / verification).
    #[inline]
    pub fn get_raw<R>(&self, sys: &MemSystem<R>, i: u64) -> T
    where
        R: RemoteBackend,
    {
        T::load(sys.backing(), self.addr(i))
    }

    /// Untimed write (initialization).
    #[inline]
    pub fn set_raw<R: RemoteBackend>(&self, sys: &mut MemSystem<R>, i: u64, v: T) {
        T::store(sys.backing_mut(), self.addr(i), v);
    }
}

impl SimVec<f64> {
    /// Untimed bulk read of elements `[i, i + out.len())` — one page walk
    /// per covered page instead of one per element.
    #[inline]
    pub fn get_raw_run<R: RemoteBackend>(&self, sys: &MemSystem<R>, i: u64, out: &mut [f64]) {
        debug_assert!(i + out.len() as u64 <= self.len, "run out of bounds");
        sys.backing().read_f64s(self.addr(i), out);
    }

    /// Untimed bulk write of elements `[i, i + vals.len())`.
    #[inline]
    pub fn set_raw_run<R: RemoteBackend>(&self, sys: &mut MemSystem<R>, i: u64, vals: &[f64]) {
        debug_assert!(i + vals.len() as u64 <= self.len, "run out of bounds");
        sys.backing_mut().write_f64s(self.addr(i), vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddressMap;
    use crate::cache::CacheConfig;
    use crate::dram::{shared, DramConfig};
    use crate::system::{NoRemote, SysTiming};

    fn sys() -> MemSystem<NoRemote> {
        MemSystem::new(
            AddressMap::new(1 << 20, 1 << 20, 128),
            CacheConfig::tiny(),
            shared(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        )
    }

    #[test]
    fn arena_bumps_and_aligns() {
        let mut a = Arena::new(Addr(0), 4096);
        let x = a.alloc(10, 1);
        let y = a.alloc(10, 64);
        assert_eq!(x, Addr(0));
        assert_eq!(y, Addr(64), "second allocation must be aligned up");
        assert_eq!(a.used(), 74);
        assert_eq!(a.remaining(), 4096 - 74);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn arena_overflow_panics() {
        let mut a = Arena::new(Addr(0), 128);
        let _ = a.alloc(200, 1);
    }

    #[test]
    fn simvec_round_trips_data() {
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 1 << 20);
        let v: SimVec<f64> = arena.alloc_vec(100);
        let mut t = Time::ZERO;
        for i in 0..100 {
            t = v.set(&mut s, t, i, i as f64 * 1.5);
        }
        for i in 0..100 {
            let (x, nt) = v.get(&mut s, t, i);
            assert_eq!(x, i as f64 * 1.5);
            t = nt;
        }
    }

    #[test]
    fn simvec_elements_are_dense() {
        let mut arena = Arena::new(Addr(0), 1 << 20);
        let v: SimVec<u32> = arena.alloc_vec(64);
        assert_eq!(v.addr(0), v.base());
        assert_eq!(v.addr(1).0 - v.addr(0).0, 4);
        assert_eq!(v.base().0 % 128, 0, "vector base must be line-aligned");
    }

    #[test]
    fn raw_accessors_do_not_touch_timing() {
        let mut s = sys();
        let mut arena = Arena::new(Addr(0), 1 << 20);
        let v: SimVec<u64> = arena.alloc_vec(16);
        v.set_raw(&mut s, 3, 99);
        assert_eq!(v.get_raw(&s, 3), 99);
        assert_eq!(s.cache_stats().accesses(), 0);
        assert_eq!(s.stats.reads + s.stats.writes, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds")]
    fn simvec_bounds_checked_in_debug() {
        let mut arena = Arena::new(Addr(0), 1 << 20);
        let v: SimVec<u64> = arena.alloc_vec(4);
        let _ = v.addr(4);
    }
}
