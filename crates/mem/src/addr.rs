//! Physical addresses, cache-line math, and the local/remote address map.
//!
//! ThymesisFlow hot-plugs the lender's reserved memory into the borrower's
//! physical address space at a fixed base; any cache miss above that base
//! is steered to the NIC instead of the local memory controller. We keep
//! the same single-flat-space model.

use std::fmt;

/// A simulated physical address on the borrower node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

/// Which memory a physical address resolves to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Borrower-local DRAM.
    Local,
    /// Disaggregated memory at the lender, reached through the NIC.
    Remote,
}

/// The borrower's physical memory layout.
#[derive(Clone, Copy, Debug)]
pub struct AddressMap {
    /// Bytes of borrower-local DRAM, mapped at `[0, local_size)`.
    pub local_size: u64,
    /// Base of the hot-plugged remote window.
    pub remote_base: u64,
    /// Bytes of remote memory mapped at `[remote_base, remote_base + remote_size)`.
    pub remote_size: u64,
    /// Cache-line size in bytes (128 on POWER9).
    pub line: u64,
}

impl AddressMap {
    pub fn new(local_size: u64, remote_size: u64, line: u64) -> AddressMap {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        // Leave a guard gap so off-by-one overruns fault loudly.
        let remote_base = (local_size + (1 << 30)).next_multiple_of(line);
        AddressMap {
            local_size,
            remote_base,
            remote_size,
            line,
        }
    }

    #[inline]
    pub fn region(&self, a: Addr) -> Region {
        if a.0 < self.local_size {
            Region::Local
        } else if a.0 >= self.remote_base && a.0 < self.remote_base + self.remote_size {
            Region::Remote
        } else {
            panic!("address {a:?} outside mapped memory");
        }
    }

    /// True if the address is mapped at all.
    #[inline]
    pub fn is_mapped(&self, a: Addr) -> bool {
        a.0 < self.local_size
            || (a.0 >= self.remote_base && a.0 < self.remote_base + self.remote_size)
    }

    /// Address of the cache line containing `a`.
    #[inline]
    pub fn line_of(&self, a: Addr) -> Addr {
        Addr(a.0 & !(self.line - 1))
    }

    /// Translate a borrower-side remote address to the lender-side offset,
    /// as the NIC's address-translation stage does.
    #[inline]
    pub fn remote_offset(&self, a: Addr) -> u64 {
        debug_assert_eq!(self.region(a), Region::Remote);
        a.0 - self.remote_base
    }

    pub fn local_base_addr(&self) -> Addr {
        Addr(0)
    }

    pub fn remote_base_addr(&self) -> Addr {
        Addr(self.remote_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(1 << 20, 1 << 20, 128)
    }

    #[test]
    fn regions_resolve() {
        let m = map();
        assert_eq!(m.region(Addr(0)), Region::Local);
        assert_eq!(m.region(Addr((1 << 20) - 1)), Region::Local);
        assert_eq!(m.region(m.remote_base_addr()), Region::Remote);
        assert_eq!(
            m.region(Addr(m.remote_base + (1 << 20) - 1)),
            Region::Remote
        );
    }

    #[test]
    #[should_panic(expected = "outside mapped memory")]
    fn gap_addresses_panic() {
        let m = map();
        let _ = m.region(Addr(1 << 20)); // in the guard gap
    }

    #[test]
    fn line_of_masks_low_bits() {
        let m = map();
        assert_eq!(m.line_of(Addr(0)), Addr(0));
        assert_eq!(m.line_of(Addr(127)), Addr(0));
        assert_eq!(m.line_of(Addr(128)), Addr(128));
        assert_eq!(m.line_of(Addr(130)), Addr(128));
    }

    #[test]
    fn remote_offset_translation() {
        let m = map();
        let a = m.remote_base_addr().offset(4096);
        assert_eq!(m.remote_offset(a), 4096);
    }

    #[test]
    fn remote_base_is_line_aligned_with_guard() {
        let m = map();
        assert_eq!(m.remote_base % 128, 0);
        assert!(m.remote_base >= m.local_size + (1 << 30));
        assert!(m.is_mapped(Addr(0)));
        assert!(!m.is_mapped(Addr(m.local_size + 5)));
    }
}
