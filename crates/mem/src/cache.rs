//! Set-associative last-level cache model.
//!
//! The paper's node is a dual-socket POWER9 with ~120 MiB of total cache
//! and 128-byte lines; STREAM is sized explicitly to exceed it. We model
//! the whole hierarchy as one set-associative write-back, write-allocate
//! LLC with true-LRU replacement: the characterization depends on miss
//! *rates* for working sets larger/smaller than the cache, which this
//! captures, not on per-level latencies.

use crate::addr::Addr;

/// Cache geometry.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line: u64,
}

impl CacheConfig {
    /// The paper's node: 65536 sets × 15 ways × 128 B = 120 MiB.
    pub fn power9_llc() -> CacheConfig {
        CacheConfig {
            sets: 65536,
            ways: 15,
            line: 128,
        }
    }

    /// A scaled-down geometry for fast tests: 256 sets × 8 ways × 128 B = 256 KiB.
    pub fn tiny() -> CacheConfig {
        CacheConfig {
            sets: 256,
            ways: 8,
            line: 128,
        }
    }

    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line
    }
}

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    Hit,
    /// Miss; if the victim way held a dirty line, its address must be
    /// written back.
    Miss {
        writeback: Option<Addr>,
    },
}

/// Counters exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
}

impl CacheStats {
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// Sentinel tag marking an empty way. Unreachable as a real tag: a tag is
/// `addr >> (line_shift + set_shift)`, so all-ones would require an
/// address with every bit set in a ≥64-byte-line cache.
const TAG_INVALID: u64 = u64::MAX;

/// Write-back, write-allocate, true-LRU set-associative cache.
///
/// Per-way metadata lives in flat arrays indexed `set * ways + way` for
/// cache-friendly scans; a 120 MiB LLC is ~1 M lines ≈ 13 MB of host
/// metadata. Validity is fused into the tag array ([`TAG_INVALID`]
/// sentinel) so the hit scan touches one array, and each set remembers
/// its most-recently-used way: workloads with spatial locality hit the
/// same line back to back, making the probe O(1) in the common case.
/// Both are pure lookup-order changes — hit/miss outcomes, LRU stamps,
/// and victim choice are bit-for-bit those of the plain scan.
pub struct Cache {
    cfg: CacheConfig,
    set_mask: u64,
    line_shift: u32,
    tags: Vec<u64>,
    dirty: Vec<bool>,
    stamp: Vec<u64>,
    /// Way index of the last hit or fill, per set.
    mru: Vec<u32>,
    tick: u64,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.line.is_power_of_two(), "line must be a power of two");
        assert!(cfg.ways >= 1);
        let n = cfg.sets * cfg.ways;
        Cache {
            cfg,
            set_mask: cfg.sets as u64 - 1,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![TAG_INVALID; n],
            dirty: vec![false; n],
            stamp: vec![0; n],
            mru: vec![0; cfg.sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_and_tag(&self, a: Addr) -> (usize, u64) {
        let lineno = a.0 >> self.line_shift;
        (
            (lineno & self.set_mask) as usize,
            lineno >> self.cfg.sets.trailing_zeros(),
        )
    }

    /// Access the line containing `a`; allocates on miss (write-allocate
    /// for both reads and writes) and returns what happened.
    #[inline]
    pub fn access(&mut self, a: Addr, write: bool) -> Lookup {
        self.access_entry(a, write).0
    }

    /// Like [`Cache::access`], also returning the `(set, way)` the line
    /// now occupies. The pair is an *execute-once* handle: a caller that
    /// knows its next accesses land on the same still-resident line (e.g.
    /// the scalars of one cache line, walked back to back with nothing
    /// evicting in between) replays them through [`Cache::touch`] instead
    /// of re-running the lookup — the `Stall(n-1)` half of the
    /// execute-once-then-stall interface.
    pub fn access_entry(&mut self, a: Addr, write: bool) -> (Lookup, u32, u32) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(a);
        debug_assert_ne!(tag, TAG_INVALID, "address collides with the sentinel");
        let base = set * self.cfg.ways;

        // Hit path: most-recently-used way first (tags are unique within
        // a set, so probe order cannot change the outcome).
        let m = self.mru[set] as usize;
        if self.tags[base + m] == tag {
            let i = base + m;
            self.stamp[i] = self.tick;
            if write {
                self.dirty[i] = true;
            }
            self.stats.hits += 1;
            return (Lookup::Hit, set as u32, m as u32);
        }

        // One fused scan finds the hit way, the first invalid way, and
        // the LRU victim — a thrashing workload (every line a miss, the
        // shape STREAM beyond the LLC produces) would otherwise walk the
        // set twice. Victim choice is bit-identical to the classic
        // two-pass form: a hit needs no victim, an invalid way preempts
        // eviction, and the LRU stamp comparison only ever saw the ways
        // before the first invalid one (the old scan broke there).
        let mut hit_way = None;
        let mut first_invalid = None;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.cfg.ways {
            let i = base + w;
            let t = self.tags[i];
            if t == tag {
                hit_way = Some(w);
                break;
            }
            if t == TAG_INVALID {
                if first_invalid.is_none() {
                    first_invalid = Some(i);
                }
            } else if first_invalid.is_none() && self.stamp[i] < victim_stamp {
                victim_stamp = self.stamp[i];
                victim = i;
            }
        }
        if let Some(w) = hit_way {
            let i = base + w;
            self.stamp[i] = self.tick;
            if write {
                self.dirty[i] = true;
            }
            self.mru[set] = w as u32;
            self.stats.hits += 1;
            return (Lookup::Hit, set as u32, w as u32);
        }

        // Miss: an invalid way wins, else the LRU way.
        self.stats.misses += 1;
        let found_invalid = first_invalid.is_some();
        if let Some(i) = first_invalid {
            victim = i;
        }

        let mut writeback = None;
        if !found_invalid {
            self.stats.evictions += 1;
            if self.dirty[victim] {
                self.stats.writebacks += 1;
                // Reconstruct the victim's address.
                let old_tag = self.tags[victim];
                let lineno = (old_tag << self.cfg.sets.trailing_zeros()) | set as u64;
                writeback = Some(Addr(lineno << self.line_shift));
            }
        }

        self.tags[victim] = tag;
        self.dirty[victim] = write;
        self.stamp[victim] = self.tick;
        let way = (victim - base) as u32;
        self.mru[set] = way;
        (Lookup::Miss { writeback }, set as u32, way)
    }

    /// Re-touch a line located by a previous [`Cache::access_entry`]
    /// *without* re-running the lookup — the stall half of the
    /// execute-once-then-stall interface. State evolves exactly as a full
    /// access that hits this way would: the LRU stamp advances, a write
    /// dirties the line, and the hit is counted.
    ///
    /// The caller guarantees the line is still resident at `(set, way)`:
    /// true whenever every access since the executing lookup hit (hits
    /// never evict). Violating that silently corrupts the LRU state, so
    /// debug builds verify residency did not change.
    #[inline]
    pub fn touch(&mut self, set: u32, way: u32, write: bool) {
        let i = set as usize * self.cfg.ways + way as usize;
        debug_assert!((way as usize) < self.cfg.ways);
        debug_assert_ne!(self.tags[i], TAG_INVALID, "touch of an empty way");
        self.tick += 1;
        self.stamp[i] = self.tick;
        if write {
            self.dirty[i] = true;
        }
        self.mru[set as usize] = way;
        self.stats.hits += 1;
    }

    /// Like [`Cache::access`], but stamped with the virtual time of the
    /// access so the miss rate is reported as a windowed utilization
    /// counter (`mem.llc_miss_rate`: misses / accesses per window).
    pub fn access_at(&mut self, at: thymesim_sim::Time, a: Addr, write: bool) -> Lookup {
        self.access_at_entry(at, a, write).0
    }

    /// [`Cache::access_at`] with the `(set, way)` execute-once handle.
    pub fn access_at_entry(
        &mut self,
        at: thymesim_sim::Time,
        a: Addr,
        write: bool,
    ) -> (Lookup, u32, u32) {
        let r = self.access_entry(a, write);
        let miss = matches!(r.0, Lookup::Miss { .. });
        thymesim_telemetry::counter_ratio("mem.llc_miss_rate", at, miss as u64, 1);
        r
    }

    /// The telemetry-stamped stall: identical counter stream to a hitting
    /// [`Cache::access_at`] at `at`, without the lookup.
    #[inline]
    pub fn touch_at(&mut self, at: thymesim_sim::Time, set: u32, way: u32, write: bool) {
        self.touch(set, way, write);
        thymesim_telemetry::counter_ratio("mem.llc_miss_rate", at, 0, 1);
    }

    /// Replay `rounds` round-robin passes over a group of resident lines
    /// in closed form: the final state (tick, LRU stamps, dirty bits,
    /// MRU hints, hit count) is exactly what `rounds` repetitions of
    /// `touch(set, way, write)` over the group in order would leave, at
    /// O(group) cost instead of O(rounds × group). The intermediate
    /// states are never observable because every replayed access is a
    /// hit — nothing can evict or probe between them.
    ///
    /// Caller contract: every `(set, way)` is resident (same as
    /// [`Cache::touch`]) and the group's ways are distinct — both are
    /// guaranteed when the handles come from one element's
    /// `access_entry` calls on lines verified via `resident_at`.
    pub fn touch_rounds(
        &mut self,
        touches: impl ExactSizeIterator<Item = (u32, u32, bool)>,
        rounds: u64,
    ) {
        let k = touches.len() as u64;
        if rounds == 0 || k == 0 {
            return;
        }
        // Stamps of the final round: the group's idx-th member was
        // touched at tick0 + (rounds-1)*k + idx + 1.
        let last_round_base = self.tick + (rounds - 1) * k;
        self.tick += rounds * k;
        self.stats.hits += rounds * k;
        for (idx, (set, way, write)) in touches.enumerate() {
            let i = set as usize * self.cfg.ways + way as usize;
            debug_assert!((way as usize) < self.cfg.ways);
            debug_assert_ne!(self.tags[i], TAG_INVALID, "touch of an empty way");
            self.stamp[i] = last_round_base + idx as u64 + 1;
            if write {
                self.dirty[i] = true;
            }
            self.mru[set as usize] = way;
        }
    }

    /// Does `(set, way)` currently hold the line containing `a`? Used to
    /// validate an execute-once handle before replaying stalls through
    /// it. Side-effect-free.
    #[inline]
    pub fn resident_at(&self, a: Addr, set: u32, way: u32) -> bool {
        let (s, tag) = self.set_and_tag(a);
        s == set as usize && self.tags[s * self.cfg.ways + way as usize] == tag
    }

    /// Probe without modifying state (used by tests and invariant checks).
    pub fn contains(&self, a: Addr) -> bool {
        let (set, tag) = self.set_and_tag(a);
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).any(|w| self.tags[base + w] == tag)
    }

    /// Invalidate everything (e.g. detach of the remote region).
    pub fn flush(&mut self) -> u64 {
        let mut dirty_lines = 0;
        for i in 0..self.tags.len() {
            if self.tags[i] != TAG_INVALID && self.dirty[i] {
                dirty_lines += 1;
            }
            self.tags[i] = TAG_INVALID;
            self.dirty[i] = false;
        }
        dirty_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line: 64,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(matches!(
            c.access(Addr(0), false),
            Lookup::Miss { writeback: None }
        ));
        assert_eq!(c.access(Addr(0), false), Lookup::Hit);
        assert_eq!(c.access(Addr(63), false), Lookup::Hit, "same line");
        assert!(
            matches!(c.access(Addr(64), false), Lookup::Miss { .. }),
            "next line"
        );
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: line numbers ≡ 0 mod 4 → addresses 0, 256, 512.
        c.access(Addr(0), false);
        c.access(Addr(256), false);
        // Touch 0 again so 256 is LRU.
        c.access(Addr(0), false);
        c.access(Addr(512), false); // evicts 256
        assert!(c.contains(Addr(0)));
        assert!(!c.contains(Addr(256)));
        assert!(c.contains(Addr(512)));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(Addr(0), true); // dirty
        c.access(Addr(256), false);
        let r = c.access(Addr(512), false); // evicts 0 (LRU, dirty)
        match r {
            Lookup::Miss { writeback: Some(a) } => assert_eq!(a, Addr(0)),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(Addr(0), false);
        c.access(Addr(256), false);
        let r = c.access(Addr(512), false);
        assert!(matches!(r, Lookup::Miss { writeback: None }));
        assert_eq!(c.stats.evictions, 1);
        assert_eq!(c.stats.writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(Addr(0), false); // clean fill
        c.access(Addr(0), true); // dirty it
        c.access(Addr(256), false);
        let r = c.access(Addr(512), false);
        assert!(matches!(r, Lookup::Miss { writeback: Some(_) }));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        // Lines 0..4 map to sets 0..3: no evictions among them.
        for i in 0..4u64 {
            c.access(Addr(i * 64), false);
        }
        for i in 0..4u64 {
            assert!(c.contains(Addr(i * 64)));
        }
        assert_eq!(c.stats.evictions, 0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 8 lines capacity
        let lines = 64u64;
        // Two sequential sweeps over 64 lines: LRU keeps nothing useful.
        for _ in 0..2 {
            for i in 0..lines {
                c.access(Addr(i * 64), false);
            }
        }
        assert_eq!(
            c.stats.hits, 0,
            "sequential sweep beyond capacity must thrash LRU"
        );
        assert_eq!(c.stats.misses, 2 * lines);
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = tiny();
        for _ in 0..10 {
            for i in 0..8u64 {
                c.access(Addr(i * 64), false);
            }
        }
        // 8 cold misses, everything else hits.
        assert_eq!(c.stats.misses, 8);
        assert_eq!(c.stats.hits, 72);
        assert!((c.stats.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn flush_invalidates_and_counts_dirty() {
        let mut c = tiny();
        c.access(Addr(0), true);
        c.access(Addr(64), false);
        let dirty = c.flush();
        assert_eq!(dirty, 1);
        assert!(!c.contains(Addr(0)));
        assert!(!c.contains(Addr(64)));
    }

    #[test]
    fn victim_address_reconstruction_round_trips() {
        let mut c = Cache::new(CacheConfig {
            sets: 16,
            ways: 1,
            line: 128,
        });
        // Fill a specific set with a dirty line at a high address, then
        // evict it and check the reported writeback address matches.
        let a = Addr(0xABCD00); // line 0x15E6*... set = lineno & 15
        c.access(a, true);
        let lineno = 0xABCD00u64 >> 7;
        let conflicting = Addr((lineno + 16) << 7);
        match c.access(conflicting, false) {
            Lookup::Miss {
                writeback: Some(wb),
            } => {
                assert_eq!(wb, Addr(lineno << 7), "reconstructed victim address wrong");
            }
            other => panic!("expected writeback, got {other:?}"),
        }
    }

    #[test]
    fn matches_reference_lru_model() {
        // Randomized trace vs a naive reference implementation (Vec of
        // (tag, dirty) per set, true LRU order by position).
        use thymesim_sim::Xoshiro256;
        let cfg = CacheConfig {
            sets: 8,
            ways: 4,
            line: 64,
        };
        let mut dut = Cache::new(cfg);
        let mut reference: Vec<Vec<(u64, bool)>> = vec![Vec::new(); cfg.sets];
        let mut rng = Xoshiro256::seed_from_u64(0xCAC4E);
        for step in 0..20_000 {
            let line = rng.below(256); // 256 lines over 8 sets: heavy conflict
            let addr = Addr(line * 64);
            let write = rng.chance(0.3);
            let set = (line % cfg.sets as u64) as usize;
            let tag = line / cfg.sets as u64;

            // Reference behaviour.
            let set_vec = &mut reference[set];
            let expected = match set_vec.iter().position(|&(t, _)| t == tag) {
                Some(pos) => {
                    let (t, d) = set_vec.remove(pos);
                    set_vec.push((t, d || write)); // MRU at the back
                    None // hit
                }
                None => {
                    let wb = if set_vec.len() == cfg.ways {
                        let (vt, vd) = set_vec.remove(0); // LRU at the front
                        vd.then_some(vt)
                    } else {
                        None
                    };
                    set_vec.push((tag, write));
                    Some(wb)
                }
            };

            let got = dut.access(addr, write);
            match (expected, got) {
                (None, Lookup::Hit) => {}
                (Some(None), Lookup::Miss { writeback: None }) => {}
                (
                    Some(Some(vtag)),
                    Lookup::Miss {
                        writeback: Some(wb),
                    },
                ) => {
                    let wb_line = wb.0 / 64;
                    assert_eq!(
                        (
                            wb_line / cfg.sets as u64,
                            (wb_line % cfg.sets as u64) as usize
                        ),
                        (vtag, set),
                        "step {step}: wrong victim"
                    );
                }
                (e, g) => panic!("step {step}: reference {e:?} vs dut {g:?}"),
            }
        }
        assert!(dut.stats.hits > 1000 && dut.stats.misses > 1000);
    }

    #[test]
    fn touch_is_equivalent_to_a_hitting_access() {
        // Two identical caches, same traffic — one replays same-line hits
        // through the execute-once handle, the other runs full lookups.
        // LRU stamps, dirty bits, and stats must come out identical,
        // observable through subsequent eviction decisions.
        let mut full = tiny();
        let mut stalled = tiny();
        let (r_f, ..) = full.access_entry(Addr(0), false);
        let (r_s, set, way) = stalled.access_entry(Addr(0), false);
        assert_eq!(r_f, r_s);
        // 3 more hits on the same line, one of them a write.
        for &w in &[false, true, false] {
            full.access(Addr(32), w); // same 64-byte line as Addr(0)
            stalled.touch(set, way, w);
        }
        assert_eq!(full.stats, stalled.stats);
        // Fill the set and evict: both must report the same dirty victim.
        full.access(Addr(256), false);
        stalled.access(Addr(256), false);
        let e_f = full.access(Addr(512), false);
        let e_s = stalled.access(Addr(512), false);
        assert_eq!(e_f, e_s);
        assert!(matches!(e_f, Lookup::Miss { writeback: Some(a) } if a == Addr(0)));
    }

    #[test]
    fn paper_llc_capacity_is_120_mib() {
        assert_eq!(CacheConfig::power9_llc().capacity_bytes(), 120 * (1 << 20));
    }
}
