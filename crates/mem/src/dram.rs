//! DRAM channel: a bandwidth-shared memory bus plus access latency.
//!
//! The contention experiments (§IV-E) hinge on one asymmetry: the lender's
//! memory bus moves hundreds of GB/s while the network moves ~12.5 GB/s.
//! The bus is modelled as a serial resource — each line transfer occupies
//! it for `bytes / bandwidth` — so concurrent clients (local STREAM
//! instances and incoming remote requests) share bandwidth naturally
//! through queueing, and the fixed DRAM access latency is added on top.

use crate::addr::Addr;
use std::cell::RefCell;
use std::rc::Rc;
use thymesim_sim::{Dur, Time};

/// Configuration of one node's memory subsystem timing.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct DramConfig {
    /// Sustained bus bandwidth in bytes/second (POWER9 AC922: ~140 GB/s
    /// per socket of measured STREAM bandwidth).
    pub bandwidth_bytes_per_sec: f64,
    /// Load-to-use latency of an uncontended access.
    pub latency: Dur,
    /// Independent banks: the *latency* portion overlaps across banks
    /// (line-interleaved), while the shared bus still serializes data
    /// transfer. 1 = the flat channel used by the paper experiments.
    pub banks: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bandwidth_bytes_per_sec: 140e9,
            latency: Dur::ns(120),
            banks: 1,
        }
    }
}

/// Outcome of a bus access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusAccess {
    /// When the transfer started occupying the bus.
    pub start: Time,
    /// When the data is available (bus occupancy + DRAM latency).
    pub done: Time,
}

/// A serial, bandwidth-limited memory channel with optional bank-level
/// latency overlap.
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    /// Picoseconds of bus occupancy per byte (pre-computed).
    ps_per_byte: f64,
    /// Memo of the last `(bytes, busy)` pair: line-granular traffic asks
    /// for the same transfer size almost every access, and the
    /// float-multiply-and-round is deterministic per size, so one compare
    /// replaces it on the hot path.
    last_bytes: u64,
    last_busy: Dur,
    next_free: Time,
    /// Per-bank row/CAS occupancy (the latency portion is per-bank).
    bank_free: Vec<Time>,
    /// Total bytes moved (for utilization reporting).
    pub bytes_moved: u64,
    /// Accesses served.
    pub accesses: u64,
    /// Accumulated queueing delay (start - arrival).
    pub queue_wait_ps: u128,
    /// Windowed busy-fraction counter track, opt-in via
    /// [`DramChannel::set_track`]. `None` records nothing.
    track: Option<&'static str>,
}

impl DramChannel {
    pub fn new(cfg: DramConfig) -> DramChannel {
        assert!(cfg.bandwidth_bytes_per_sec > 0.0);
        assert!(cfg.banks >= 1);
        DramChannel {
            ps_per_byte: 1e12 / cfg.bandwidth_bytes_per_sec,
            last_bytes: 0,
            last_busy: Dur::ZERO,
            next_free: Time::ZERO,
            bank_free: vec![Time::ZERO; cfg.banks],
            bytes_moved: 0,
            accesses: 0,
            queue_wait_ps: 0,
            track: None,
            cfg,
        }
    }

    /// Record this channel's bus occupancy on the named windowed
    /// busy-fraction track. The name is claimed exclusively per
    /// simulated point: only the first channel claiming it records, so
    /// the track always describes one serial bus and its window
    /// fractions stay within [0, 1] even when an experiment builds
    /// several nodes in one point. Idempotent on an already-labelled
    /// channel (pooling shares one lender bus across testbeds).
    pub fn set_track(&mut self, track: &'static str) {
        if self.track.is_none() && thymesim_telemetry::claim(track) == 0 {
            self.track = Some(track);
        }
    }

    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Move `bytes` over the bus starting no earlier than `at`.
    ///
    /// Arrivals may be slightly out of order across clients (the virtual-
    /// time executor steps processes, not individual bus grants); `max`
    /// with `next_free` makes the outcome insensitive to such permutations
    /// at equal load.
    pub fn access(&mut self, at: Time, addr: Addr, bytes: u64) -> BusAccess {
        if self.cfg.banks == 1 {
            // Flat channel: bus serialization + one latency adder.
            let start = at.max2(self.next_free);
            let busy = self.busy_for(bytes);
            self.next_free = start + busy;
            self.bytes_moved += bytes;
            self.accesses += 1;
            self.queue_wait_ps += (start - at).as_ps() as u128;
            if let Some(track) = self.track {
                thymesim_telemetry::counter_busy(track, start, start + busy);
            }
            return BusAccess {
                start,
                done: start + busy + self.cfg.latency,
            };
        }
        // Banked: the target bank must be free (its previous access's
        // latency phase done), then the shared bus moves the data.
        let bank = ((addr.0 / 128) % self.cfg.banks as u64) as usize;
        let start = at.max2(self.next_free).max2(self.bank_free[bank]);
        let busy = self.busy_for(bytes);
        self.next_free = start + busy;
        let done = start + busy + self.cfg.latency;
        self.bank_free[bank] = done;
        self.bytes_moved += bytes;
        self.accesses += 1;
        self.queue_wait_ps += (start - at).as_ps() as u128;
        if let Some(track) = self.track {
            thymesim_telemetry::counter_busy(track, start, start + busy);
        }
        BusAccess { start, done }
    }

    /// Bus occupancy of a `bytes`-sized transfer. Memoized on the last
    /// size seen; the computation is a pure function of `bytes`, so the
    /// memo is exactly the rounded product every time.
    #[inline]
    fn busy_for(&mut self, bytes: u64) -> Dur {
        if bytes != self.last_bytes {
            self.last_bytes = bytes;
            self.last_busy = Dur::ps((bytes as f64 * self.ps_per_byte).round() as u64);
        }
        self.last_busy
    }

    /// Mean queueing delay per access so far.
    pub fn mean_queue_wait(&self) -> Dur {
        if self.accesses == 0 {
            Dur::ZERO
        } else {
            Dur::ps((self.queue_wait_ps / self.accesses as u128) as u64)
        }
    }

    /// Fraction of `[0, horizon]` the bus spent busy.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        (self.bytes_moved as f64 * self.ps_per_byte) / horizon.as_ps() as f64
    }
}

/// Shared handle: the lender's bus is used by both its local workloads and
/// the NIC's incoming remote requests.
pub type SharedDram = Rc<RefCell<DramChannel>>;

pub fn shared(cfg: DramConfig) -> SharedDram {
    Rc::new(RefCell::new(DramChannel::new(cfg)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(bw_gbs: f64, lat_ns: u64) -> DramChannel {
        DramChannel::new(DramConfig {
            bandwidth_bytes_per_sec: bw_gbs * 1e9,
            latency: Dur::ns(lat_ns),
            banks: 1,
        })
    }

    #[test]
    fn uncontended_access_is_latency_plus_transfer() {
        let mut c = chan(128.0, 100); // 128 GB/s -> 1 ps/byte... (1e12/128e9 = 7.8125)
        let r = c.access(Time::ZERO, Addr(0), 128);
        assert_eq!(r.start, Time::ZERO);
        // 128 B at 128 GB/s = 1 ns transfer + 100 ns latency.
        assert_eq!(r.done, Time::ns(101));
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut c = chan(128.0, 0);
        let a = c.access(Time::ZERO, Addr(0), 128);
        let b = c.access(Time::ZERO, Addr(128), 128);
        assert_eq!(a.done, Time::ns(1));
        assert_eq!(b.start, Time::ns(1), "second transfer waits for the bus");
        assert_eq!(b.done, Time::ns(2));
        assert_eq!(c.mean_queue_wait(), Dur::ps(500));
    }

    #[test]
    fn sustained_bandwidth_matches_config() {
        let mut c = chan(100.0, 50);
        let n = 10_000u64;
        let mut done = Time::ZERO;
        for i in 0..n {
            done = c.access(Time::ZERO, Addr(i * 128), 128).done;
        }
        // Total bytes / total bus time (minus the final latency adder).
        let bus_time = (done - Time::ZERO).as_secs_f64() - 50e-9;
        let bw = (n * 128) as f64 / bus_time;
        assert!((bw / 100e9 - 1.0).abs() < 1e-3, "bw={bw}");
    }

    #[test]
    fn idle_gaps_are_not_carried_forward() {
        let mut c = chan(128.0, 0);
        c.access(Time::ZERO, Addr(0), 128);
        let r = c.access(Time::us(5), Addr(0), 128);
        assert_eq!(r.start, Time::us(5), "bus must be idle again");
    }

    #[test]
    fn two_clients_share_bandwidth_equally() {
        // Two closed-loop clients with one outstanding access each get
        // ~half the bus each.
        let mut c = chan(100.0, 0);
        let mut t_a = Time::ZERO;
        let mut t_b = Time::ZERO;
        let mut bytes_a = 0u64;
        for _ in 0..1000 {
            if t_a <= t_b {
                t_a = c.access(t_a, Addr(0), 128).done;
                bytes_a += 128;
            } else {
                t_b = c.access(t_b, Addr(1 << 20), 128).done;
            }
        }
        let total = t_a.max2(t_b);
        let bw_a = bytes_a as f64 / total.as_secs_f64();
        assert!((bw_a / 50e9 - 1.0).abs() < 0.05, "client A got {bw_a}");
    }

    #[test]
    fn banks_overlap_latency_but_share_the_bus() {
        // Single bank: a burst of 8 line reads serializes on the 120 ns
        // latency (each access waits for the bank).
        let mut flat = DramChannel::new(DramConfig {
            banks: 1,
            ..DramConfig::default()
        });
        let mut banked = DramChannel::new(DramConfig {
            banks: 8,
            ..DramConfig::default()
        });
        let mut flat_done = Time::ZERO;
        let mut banked_done = Time::ZERO;
        for i in 0..8u64 {
            flat_done = flat.access(Time::ZERO, Addr(i * 128), 128).done;
            banked_done = banked.access(Time::ZERO, Addr(i * 128), 128).done;
        }
        // Flat: the bus moves data back-to-back but the caller sees done
        // = last transfer + latency: ~8×0.9ns + 120ns.
        // Banked: same, since distinct banks absorb the latency overlap;
        // the real difference shows on *repeat* accesses to the same bank.
        assert!(banked_done <= flat_done);
        // Hammer one bank (same address): the banked channel serializes
        // on that bank's latency.
        let mut one_bank = DramChannel::new(DramConfig {
            banks: 8,
            ..DramConfig::default()
        });
        let mut t = Time::ZERO;
        for _ in 0..4 {
            t = one_bank.access(Time::ZERO, Addr(0), 128).done;
        }
        assert!(
            t >= Time::ns(4 * 120),
            "same-bank accesses must serialize on the bank: {t}"
        );
        // Round-robin across banks at the same offered load stays fast.
        let mut spread = DramChannel::new(DramConfig {
            banks: 8,
            ..DramConfig::default()
        });
        let mut t2 = Time::ZERO;
        for i in 0..4u64 {
            t2 = spread.access(Time::ZERO, Addr(i * 128), 128).done;
        }
        assert!(t2 < Time::ns(200), "spread accesses overlap: {t2}");
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut c = chan(128.0, 0);
        // 10 transfers of 128B = 10ns busy.
        for i in 0..10u64 {
            c.access(Time::ns(i * 10), Addr(0), 128);
        }
        let u = c.utilization(Time::ns(100));
        assert!((u - 0.1).abs() < 1e-6, "u={u}");
    }
}
