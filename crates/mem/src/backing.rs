//! Byte-addressable backing store for the simulated physical memory.
//!
//! Workloads run *for real*: STREAM moves actual `f64`s, BFS chases actual
//! adjacency lists. The backing store holds those bytes, while all timing
//! flows through the cache/DRAM/fabric models. Pages are allocated lazily
//! so a sparsely touched multi-GiB address space costs only what is used.

use crate::addr::Addr;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 16; // 64 KiB pages
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, lazily allocated byte store over the full simulated address
/// space (local and remote regions alike — the *data* is the same bytes
/// wherever it physically lives; only the timing differs).
#[derive(Default)]
pub struct Backing {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Backing {
    pub fn new() -> Backing {
        Backing::default()
    }

    #[inline]
    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap())
    }

    /// Read `N` bytes; unallocated memory reads as zero.
    #[inline]
    pub fn read<const N: usize>(&self, a: Addr) -> [u8; N] {
        debug_assert!(
            N <= 16 && (a.0 as usize).is_multiple_of(N),
            "unaligned scalar access"
        );
        let page = a.0 >> PAGE_SHIFT;
        let off = (a.0 as usize) & (PAGE_SIZE - 1);
        match self.pages.get(&page) {
            Some(p) => {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                out
            }
            None => [0u8; N],
        }
    }

    /// Write `N` bytes, allocating the page on first touch.
    #[inline]
    pub fn write<const N: usize>(&mut self, a: Addr, bytes: [u8; N]) {
        debug_assert!(
            N <= 16 && (a.0 as usize).is_multiple_of(N),
            "unaligned scalar access"
        );
        let page = a.0 >> PAGE_SHIFT;
        let off = (a.0 as usize) & (PAGE_SIZE - 1);
        self.page_mut(page)[off..off + N].copy_from_slice(&bytes);
    }

    #[inline]
    pub fn read_u8(&self, a: Addr) -> u8 {
        self.read::<1>(a)[0]
    }
    #[inline]
    pub fn write_u8(&mut self, a: Addr, v: u8) {
        self.write::<1>(a, [v]);
    }
    #[inline]
    pub fn read_u32(&self, a: Addr) -> u32 {
        u32::from_le_bytes(self.read::<4>(a))
    }
    #[inline]
    pub fn write_u32(&mut self, a: Addr, v: u32) {
        self.write::<4>(a, v.to_le_bytes());
    }
    #[inline]
    pub fn read_u64(&self, a: Addr) -> u64 {
        u64::from_le_bytes(self.read::<8>(a))
    }
    #[inline]
    pub fn write_u64(&mut self, a: Addr, v: u64) {
        self.write::<8>(a, v.to_le_bytes());
    }
    #[inline]
    pub fn read_f64(&self, a: Addr) -> f64 {
        f64::from_le_bytes(self.read::<8>(a))
    }
    #[inline]
    pub fn write_f64(&mut self, a: Addr, v: f64) {
        self.write::<8>(a, v.to_le_bytes());
    }

    /// Bulk copy into the store (bypasses scalar alignment checks).
    pub fn write_bytes(&mut self, a: Addr, bytes: &[u8]) {
        let mut addr = a.0;
        let mut rest = bytes;
        while !rest.is_empty() {
            let page = addr >> PAGE_SHIFT;
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            self.page_mut(page)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Bulk read from the store.
    pub fn read_bytes(&self, a: Addr, out: &mut [u8]) {
        let mut addr = a.0;
        let mut rest: &mut [u8] = out;
        while !rest.is_empty() {
            let page = addr >> PAGE_SHIFT;
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            match self.pages.get(&page) {
                Some(p) => rest[..n].copy_from_slice(&p[off..off + n]),
                None => rest[..n].fill(0),
            }
            addr += n as u64;
            rest = &mut rest[n..];
        }
    }

    /// Host memory currently committed, in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut b = Backing::new();
        b.write_u64(Addr(0x1000), 0xDEAD_BEEF_1234_5678);
        assert_eq!(b.read_u64(Addr(0x1000)), 0xDEAD_BEEF_1234_5678);
        b.write_f64(Addr(0x2000), -3.5);
        assert_eq!(b.read_f64(Addr(0x2000)), -3.5);
        b.write_u32(Addr(0x3000), 77);
        assert_eq!(b.read_u32(Addr(0x3000)), 77);
        b.write_u8(Addr(0x3004), 9);
        assert_eq!(b.read_u8(Addr(0x3004)), 9);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let b = Backing::new();
        assert_eq!(b.read_u64(Addr(0xFFFF_0000)), 0);
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut b = Backing::new();
        b.write_u8(Addr(0), 1);
        assert_eq!(b.resident_bytes(), PAGE_SIZE);
        b.write_u8(Addr(1), 1); // same page
        assert_eq!(b.resident_bytes(), PAGE_SIZE);
        b.write_u8(Addr((PAGE_SIZE as u64) * 10), 1);
        assert_eq!(b.resident_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn bulk_ops_cross_page_boundaries() {
        let mut b = Backing::new();
        let base = Addr((PAGE_SIZE - 8) as u64);
        let data: Vec<u8> = (0..32u8).collect();
        b.write_bytes(base, &data);
        let mut out = vec![0u8; 32];
        b.read_bytes(base, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn distant_addresses_do_not_alias() {
        let mut b = Backing::new();
        b.write_u64(Addr(0), 1);
        b.write_u64(Addr(1 << 40), 2);
        assert_eq!(b.read_u64(Addr(0)), 1);
        assert_eq!(b.read_u64(Addr(1 << 40)), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unaligned")]
    fn unaligned_scalar_asserts_in_debug() {
        let b = Backing::new();
        let _ = b.read_u64(Addr(3));
    }
}
