//! Byte-addressable backing store for the simulated physical memory.
//!
//! Workloads run *for real*: STREAM moves actual `f64`s, BFS chases actual
//! adjacency lists. The backing store holds those bytes, while all timing
//! flows through the cache/DRAM/fabric models. Pages are allocated lazily
//! so a sparsely touched multi-GiB address space costs only what is used.
//!
//! # Hot-path layout
//!
//! Every timed access ends in a page lookup here, so the store keeps two
//! tiers:
//!
//! - **Dense ranges** (registered via [`Backing::with_ranges`], typically
//!   the local and remote regions of an `AddressMap`): a flat
//!   `Vec<Option<Box<Page>>>` indexed by `page - start`, i.e. one
//!   subtraction and a bounds check instead of a hash probe.
//! - **Overflow map** for anything outside the registered ranges, hashed
//!   with a Fx-style multiply hash — `u64` page numbers don't need SipHash
//!   (no attacker-controlled keys in a simulator), and the default hasher
//!   dominated the access path before this split.
//!
//! Both tiers hold the same kind of lazily allocated 64 KiB pages;
//! unallocated memory reads as zero either way.

use crate::addr::Addr;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 16; // 64 KiB pages
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

type Page = [u8; PAGE_SIZE];

fn new_page() -> Box<Page> {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("sized above")
}

/// Fx-style multiply hasher for `u64` page numbers: a rotate-xor-multiply
/// per word, no per-hash setup. Not DoS-resistant — irrelevant here, the
/// keys are simulated physical page numbers.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// A contiguous page span backed by a flat vector.
struct DenseRange {
    start_page: u64,
    pages: Vec<Option<Box<Page>>>,
}

/// Sparse, lazily allocated byte store over the full simulated address
/// space (local and remote regions alike — the *data* is the same bytes
/// wherever it physically lives; only the timing differs).
#[derive(Default)]
pub struct Backing {
    ranges: Vec<DenseRange>,
    overflow: HashMap<u64, Box<Page>, FxBuild>,
}

impl Backing {
    pub fn new() -> Backing {
        Backing::default()
    }

    /// A store with dense page tables over the given `(start, len)` byte
    /// ranges (typically the local and remote regions of an address map).
    /// Addresses inside a range resolve with one subtraction; everything
    /// else falls back to the overflow map.
    pub fn with_ranges(ranges: &[(u64, u64)]) -> Backing {
        let mut b = Backing::new();
        for &(start, len) in ranges {
            if len == 0 {
                continue;
            }
            let start_page = start >> PAGE_SHIFT;
            let end_page = (start + len - 1) >> PAGE_SHIFT;
            let n = (end_page - start_page + 1) as usize;
            b.ranges.push(DenseRange {
                start_page,
                pages: std::iter::repeat_with(|| None).take(n).collect(),
            });
        }
        b
    }

    #[inline]
    fn page(&self, page: u64) -> Option<&Page> {
        for r in &self.ranges {
            let idx = page.wrapping_sub(r.start_page);
            if (idx as usize) < r.pages.len() {
                return r.pages[idx as usize].as_deref();
            }
        }
        self.overflow.get(&page).map(|p| &**p)
    }

    #[inline]
    fn page_mut(&mut self, page: u64) -> &mut Page {
        for r in &mut self.ranges {
            let idx = page.wrapping_sub(r.start_page);
            if (idx as usize) < r.pages.len() {
                return r.pages[idx as usize].get_or_insert_with(new_page);
            }
        }
        self.overflow.entry(page).or_insert_with(new_page)
    }

    /// Read `N` bytes; unallocated memory reads as zero.
    #[inline]
    pub fn read<const N: usize>(&self, a: Addr) -> [u8; N] {
        debug_assert!(
            N <= 16 && (a.0 as usize).is_multiple_of(N),
            "unaligned scalar access"
        );
        let off = (a.0 as usize) & (PAGE_SIZE - 1);
        match self.page(a.0 >> PAGE_SHIFT) {
            Some(p) => {
                let mut out = [0u8; N];
                out.copy_from_slice(&p[off..off + N]);
                out
            }
            None => [0u8; N],
        }
    }

    /// Write `N` bytes, allocating the page on first touch.
    #[inline]
    pub fn write<const N: usize>(&mut self, a: Addr, bytes: [u8; N]) {
        debug_assert!(
            N <= 16 && (a.0 as usize).is_multiple_of(N),
            "unaligned scalar access"
        );
        let off = (a.0 as usize) & (PAGE_SIZE - 1);
        self.page_mut(a.0 >> PAGE_SHIFT)[off..off + N].copy_from_slice(&bytes);
    }

    #[inline]
    pub fn read_u8(&self, a: Addr) -> u8 {
        self.read::<1>(a)[0]
    }
    #[inline]
    pub fn write_u8(&mut self, a: Addr, v: u8) {
        self.write::<1>(a, [v]);
    }
    #[inline]
    pub fn read_u32(&self, a: Addr) -> u32 {
        u32::from_le_bytes(self.read::<4>(a))
    }
    #[inline]
    pub fn write_u32(&mut self, a: Addr, v: u32) {
        self.write::<4>(a, v.to_le_bytes());
    }
    #[inline]
    pub fn read_u64(&self, a: Addr) -> u64 {
        u64::from_le_bytes(self.read::<8>(a))
    }
    #[inline]
    pub fn write_u64(&mut self, a: Addr, v: u64) {
        self.write::<8>(a, v.to_le_bytes());
    }
    #[inline]
    pub fn read_f64(&self, a: Addr) -> f64 {
        f64::from_le_bytes(self.read::<8>(a))
    }
    #[inline]
    pub fn write_f64(&mut self, a: Addr, v: f64) {
        self.write::<8>(a, v.to_le_bytes());
    }

    /// Bulk copy into the store (bypasses scalar alignment checks).
    pub fn write_bytes(&mut self, a: Addr, bytes: &[u8]) {
        let mut addr = a.0;
        let mut rest = bytes;
        while !rest.is_empty() {
            let page = addr >> PAGE_SHIFT;
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            self.page_mut(page)[off..off + n].copy_from_slice(&rest[..n]);
            addr += n as u64;
            rest = &rest[n..];
        }
    }

    /// Bulk read from the store.
    pub fn read_bytes(&self, a: Addr, out: &mut [u8]) {
        let mut addr = a.0;
        let mut rest: &mut [u8] = out;
        while !rest.is_empty() {
            let page = addr >> PAGE_SHIFT;
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min(PAGE_SIZE - off);
            match self.page(page) {
                Some(p) => rest[..n].copy_from_slice(&p[off..off + n]),
                None => rest[..n].fill(0),
            }
            addr += n as u64;
            rest = &mut rest[n..];
        }
    }

    /// Read a run of consecutive `f64`s; unallocated memory reads as
    /// zero. One page walk per covered page instead of one per element —
    /// the data-op half of a bulk-stalled STREAM line-step.
    pub fn read_f64s(&self, a: Addr, out: &mut [f64]) {
        debug_assert!((a.0 as usize).is_multiple_of(8), "unaligned f64 run");
        let mut addr = a.0;
        let mut rest: &mut [f64] = out;
        while !rest.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min((PAGE_SIZE - off) / 8);
            match self.page(addr >> PAGE_SHIFT) {
                Some(p) => {
                    for (d, ch) in rest[..n]
                        .iter_mut()
                        .zip(p[off..off + n * 8].chunks_exact(8))
                    {
                        *d = f64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
                    }
                }
                None => rest[..n].fill(0.0),
            }
            addr += (n * 8) as u64;
            rest = &mut rest[n..];
        }
    }

    /// Write a run of consecutive `f64`s, allocating pages on first touch.
    pub fn write_f64s(&mut self, a: Addr, vals: &[f64]) {
        debug_assert!((a.0 as usize).is_multiple_of(8), "unaligned f64 run");
        let mut addr = a.0;
        let mut rest = vals;
        while !rest.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = rest.len().min((PAGE_SIZE - off) / 8);
            let p = self.page_mut(addr >> PAGE_SHIFT);
            for (ch, v) in p[off..off + n * 8].chunks_exact_mut(8).zip(&rest[..n]) {
                ch.copy_from_slice(&v.to_le_bytes());
            }
            addr += (n * 8) as u64;
            rest = &rest[n..];
        }
    }

    /// Host memory currently committed, in bytes.
    pub fn resident_bytes(&self) -> usize {
        let dense: usize = self
            .ranges
            .iter()
            .map(|r| r.pages.iter().filter(|p| p.is_some()).count())
            .sum();
        (dense + self.overflow.len()) * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut b = Backing::new();
        b.write_u64(Addr(0x1000), 0xDEAD_BEEF_1234_5678);
        assert_eq!(b.read_u64(Addr(0x1000)), 0xDEAD_BEEF_1234_5678);
        b.write_f64(Addr(0x2000), -3.5);
        assert_eq!(b.read_f64(Addr(0x2000)), -3.5);
        b.write_u32(Addr(0x3000), 77);
        assert_eq!(b.read_u32(Addr(0x3000)), 77);
        b.write_u8(Addr(0x3004), 9);
        assert_eq!(b.read_u8(Addr(0x3004)), 9);
    }

    #[test]
    fn untouched_memory_reads_zero() {
        let b = Backing::new();
        assert_eq!(b.read_u64(Addr(0xFFFF_0000)), 0);
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut b = Backing::new();
        b.write_u8(Addr(0), 1);
        assert_eq!(b.resident_bytes(), PAGE_SIZE);
        b.write_u8(Addr(1), 1); // same page
        assert_eq!(b.resident_bytes(), PAGE_SIZE);
        b.write_u8(Addr((PAGE_SIZE as u64) * 10), 1);
        assert_eq!(b.resident_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn bulk_ops_cross_page_boundaries() {
        let mut b = Backing::new();
        let base = Addr((PAGE_SIZE - 8) as u64);
        let data: Vec<u8> = (0..32u8).collect();
        b.write_bytes(base, &data);
        let mut out = vec![0u8; 32];
        b.read_bytes(base, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn distant_addresses_do_not_alias() {
        let mut b = Backing::new();
        b.write_u64(Addr(0), 1);
        b.write_u64(Addr(1 << 40), 2);
        assert_eq!(b.read_u64(Addr(0)), 1);
        assert_eq!(b.read_u64(Addr(1 << 40)), 2);
    }

    #[test]
    fn dense_ranges_behave_like_sparse() {
        // Same traffic against a ranged store and a plain one: identical
        // bytes and identical residency accounting.
        let ranges = [(0u64, 1 << 20), (1 << 40, 1 << 20)];
        let mut dense = Backing::with_ranges(&ranges);
        let mut sparse = Backing::new();
        let probe = [
            Addr(0),
            Addr(8),
            Addr((1 << 20) - 8),      // last page of range 0
            Addr(1 << 40),            // first page of range 1
            Addr((1 << 40) + 0x8000), // inside range 1
            Addr(1 << 50),            // overflow territory
        ];
        for (i, &a) in probe.iter().enumerate() {
            dense.write_u64(a, i as u64 * 31 + 7);
            sparse.write_u64(a, i as u64 * 31 + 7);
        }
        for &a in &probe {
            assert_eq!(dense.read_u64(a), sparse.read_u64(a), "at {a:?}");
        }
        assert_eq!(dense.resident_bytes(), sparse.resident_bytes());
        // Unallocated reads are zero in both tiers.
        assert_eq!(dense.read_u64(Addr(0x10000)), 0);
        assert_eq!(dense.read_u64(Addr(1 << 45)), 0);
    }

    #[test]
    fn dense_range_boundary_spill() {
        // Bulk writes crossing out of a dense range land in overflow and
        // read back seamlessly.
        let mut b = Backing::with_ranges(&[(0, PAGE_SIZE as u64)]);
        let base = Addr((PAGE_SIZE - 8) as u64);
        let data: Vec<u8> = (0..32u8).collect();
        b.write_bytes(base, &data);
        let mut out = vec![0u8; 32];
        b.read_bytes(base, &mut out);
        assert_eq!(out, data);
        assert_eq!(b.resident_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unaligned")]
    fn unaligned_scalar_asserts_in_debug() {
        let b = Backing::new();
        let _ = b.read_u64(Addr(3));
    }
}
