//! # thymesim-mem
//!
//! The node memory subsystem: physical address map with a hot-plugged
//! remote window ([`addr`]), real byte storage ([`backing`]), a
//! set-associative write-back LLC ([`cache`]), bandwidth-shared DRAM
//! channels ([`dram`]), the combined timed hierarchy ([`system`]), and
//! simulated-memory allocation with typed views ([`alloc`]).
//!
//! The split between *data* and *time* is the crate's core idea: workloads
//! compute on genuine bytes (BFS results are verifiable, STREAM sums
//! check out) while every access's latency comes from the cache/DRAM/
//! fabric models. The [`system::RemoteBackend`] trait is the seam where
//! `thymesim-fabric` plugs in the disaggregated-memory NIC.
//!
//! ```
//! use thymesim_mem::*;
//! use thymesim_sim::Time;
//!
//! let map = AddressMap::new(1 << 20, 1 << 20, 128);
//! let mut sys = MemSystem::new(
//!     map,
//!     CacheConfig::tiny(),
//!     shared_dram(DramConfig::default()),
//!     SysTiming::default(),
//!     NoRemote, // no disaggregated memory on this node
//! );
//! let t1 = sys.write_u64(Time::ZERO, Addr(0x1000), 42);
//! let (v, t2) = sys.read_u64(t1, Addr(0x1000));
//! assert_eq!(v, 42);
//! assert!(t2 > t1); // even an LLC hit takes time
//! ```

pub mod addr;
pub mod alloc;
pub mod backing;
pub mod cache;
pub mod dram;
pub mod system;

pub use addr::{Addr, AddressMap, Region};
pub use alloc::{Arena, Scalar, SimVec};
pub use backing::Backing;
pub use cache::{Cache, CacheConfig, CacheStats, Lookup};
pub use dram::{shared as shared_dram, BusAccess, DramChannel, DramConfig, SharedDram};
pub use system::{
    timed_accesses_total, LineTouch, MemStats, MemSystem, NoRemote, RemoteBackend, SysTiming,
};
