//! The node-level memory system: LLC + local DRAM + (optionally) a remote
//! backend behind the cache-coherent interface.
//!
//! Every workload access flows through [`MemSystem::access`]: an LLC
//! lookup, then on a miss either the local DRAM channel or the remote
//! fabric, with dirty victims written back to wherever they live. Data and
//! timing travel together — the typed accessors return both the value and
//! the completion time.

use crate::addr::{Addr, AddressMap, Region};
use crate::backing::Backing;
use crate::cache::{Cache, CacheConfig, Lookup};
use crate::dram::SharedDram;
use std::sync::atomic::{AtomicU64, Ordering};
use thymesim_sim::{Dur, Histogram, Time};

/// Process-wide count of timed memory accesses, flushed once per
/// [`MemSystem`] lifetime (on drop) so the hot path never touches it.
/// `repro --bench-json` reads this to report simulator events/sec.
static TIMED_ACCESSES: AtomicU64 = AtomicU64::new(0);

/// Total timed accesses completed by all dropped `MemSystem`s so far.
pub fn timed_accesses_total() -> u64 {
    TIMED_ACCESSES.load(Ordering::Relaxed)
}

/// The remote-memory side of the node, implemented by the fabric crate
/// (or by [`NoRemote`] for a node without disaggregated memory).
pub trait RemoteBackend {
    /// Fetch one cache line whose miss was detected at `at`; returns the
    /// time the line is available to the core.
    fn fetch_line(&mut self, at: Time, addr: Addr) -> Time;

    /// Posted write-back of a dirty line. Does not block the demand miss;
    /// the backend accounts for its bandwidth internally.
    fn writeback_line(&mut self, at: Time, addr: Addr);
}

/// A node with no remote memory attached (e.g. the lender's own CPU).
/// Any remote access is a configuration bug and panics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoRemote;

impl RemoteBackend for NoRemote {
    fn fetch_line(&mut self, _at: Time, addr: Addr) -> Time {
        panic!("remote access to {addr:?} but no disaggregated memory is attached");
    }
    fn writeback_line(&mut self, _at: Time, addr: Addr) {
        panic!("remote writeback to {addr:?} but no disaggregated memory is attached");
    }
}

/// Latency constants for the on-chip part of the hierarchy.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct SysTiming {
    /// Effective load-to-use time for an LLC hit (folds L1/L2/L3 into one).
    pub llc_hit: Dur,
}

impl Default for SysTiming {
    fn default() -> Self {
        SysTiming {
            llc_hit: Dur::ns(4),
        }
    }
}

/// Access counters split by where misses were served.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    pub reads: u64,
    pub writes: u64,
    pub local_miss: u64,
    pub remote_miss: u64,
    pub local_writebacks: u64,
    pub remote_writebacks: u64,
    /// Latency of demand misses served from remote memory.
    pub remote_latency: Histogram,
    /// Latency of demand misses served from local DRAM.
    pub local_latency: Histogram,
}

/// Handle to a line resident in the LLC, returned by
/// [`MemSystem::access_entry`] and consumed by [`MemSystem::retouch`].
#[derive(Clone, Copy, Debug)]
pub struct LineTouch {
    set: u32,
    way: u32,
}

/// One node's memory hierarchy with real data and simulated time.
pub struct MemSystem<R> {
    pub map: AddressMap,
    cache: Cache,
    timing: SysTiming,
    local: SharedDram,
    remote: R,
    backing: Backing,
    pub stats: MemStats,
}

impl<R: RemoteBackend> MemSystem<R> {
    pub fn new(
        map: AddressMap,
        cache_cfg: CacheConfig,
        local: SharedDram,
        timing: SysTiming,
        remote: R,
    ) -> MemSystem<R> {
        assert_eq!(
            cache_cfg.line, map.line,
            "cache line and address-map line must agree"
        );
        MemSystem {
            map,
            cache: Cache::new(cache_cfg),
            timing,
            local,
            remote,
            // Dense page tables over the two mapped regions: every timed
            // access resolves with a subtraction instead of a hash probe.
            backing: Backing::with_ranges(&[
                (0, map.local_size),
                (map.remote_base, map.remote_size),
            ]),
            stats: MemStats::default(),
        }
    }

    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats
    }

    pub fn remote(&self) -> &R {
        &self.remote
    }

    pub fn remote_mut(&mut self) -> &mut R {
        &mut self.remote
    }

    /// Raw backing store (zero-time initialization of working sets).
    pub fn backing_mut(&mut self) -> &mut Backing {
        &mut self.backing
    }

    pub fn backing(&self) -> &Backing {
        &self.backing
    }

    /// Timed access to the line containing `addr`. Returns the completion
    /// time of the *demand* access; dirty-victim write-backs are posted.
    #[inline]
    pub fn access(&mut self, at: Time, addr: Addr, write: bool) -> Time {
        self.access_info(at, addr, write).0
    }

    /// Like [`MemSystem::access`], also reporting whether the access
    /// missed the LLC (i.e. allocated an MSHR / fetch). Workload issue
    /// models use this to bound their outstanding line fetches.
    #[inline]
    pub fn access_info(&mut self, at: Time, addr: Addr, write: bool) -> (Time, bool) {
        let (t, miss, _) = self.access_entry(at, addr, write);
        (t, miss)
    }

    /// The execute-once half of the execute-once-then-stall interface:
    /// like [`MemSystem::access_info`] but also returning a [`LineTouch`]
    /// handle locating the line in the LLC. A caller walking the
    /// remaining scalars of the same (now guaranteed-resident) line
    /// replays them through [`MemSystem::retouch`] — same counters, same
    /// telemetry, no repeated lookup, decode, or region dispatch.
    pub fn access_entry(&mut self, at: Time, addr: Addr, write: bool) -> (Time, bool, LineTouch) {
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let line = self.map.line_of(addr);
        let (lookup, set, way) = self.cache.access_at_entry(at, line, write);
        let touch = LineTouch { set, way };
        match lookup {
            Lookup::Hit => (at + self.timing.llc_hit, false, touch),
            Lookup::Miss { writeback } => {
                // Retire the victim first (posted; costs bandwidth, not
                // demand latency).
                if let Some(victim) = writeback {
                    match self.map.region(victim) {
                        Region::Local => {
                            self.stats.local_writebacks += 1;
                            thymesim_telemetry::add("mem.local_writebacks", 1);
                            let line = self.map.line;
                            self.local.borrow_mut().access(at, victim, line);
                        }
                        Region::Remote => {
                            self.stats.remote_writebacks += 1;
                            thymesim_telemetry::add("mem.remote_writebacks", 1);
                            self.remote.writeback_line(at, victim);
                        }
                    }
                }
                // Fetch the demanded line.
                let filled = match self.map.region(line) {
                    Region::Local => {
                        self.stats.local_miss += 1;
                        let line_bytes = self.map.line;
                        let done = self.local.borrow_mut().access(at, line, line_bytes).done;
                        self.stats.local_latency.record((done - at).as_ps());
                        thymesim_telemetry::latency("mem.local_miss", done - at);
                        done
                    }
                    Region::Remote => {
                        self.stats.remote_miss += 1;
                        let done = self.remote.fetch_line(at, line);
                        self.stats.remote_latency.record((done - at).as_ps());
                        thymesim_telemetry::latency("mem.remote_miss", done - at);
                        done
                    }
                };
                // Sampled hit/miss/eviction counters: emitted every 256
                // misses so even huge runs keep a bounded timeline. The
                // LLC-hit path itself stays probe-free — it is the
                // hottest path in the simulator.
                if thymesim_telemetry::enabled() {
                    let misses = self.stats.local_miss + self.stats.remote_miss;
                    if misses.is_multiple_of(256) {
                        let c = self.cache.stats;
                        thymesim_telemetry::counter("mem.cache_hits", filled, c.hits as f64);
                        thymesim_telemetry::counter("mem.cache_misses", filled, c.misses as f64);
                        thymesim_telemetry::counter(
                            "mem.cache_evictions",
                            filled,
                            c.evictions as f64,
                        );
                    }
                }
                (filled + self.timing.llc_hit, true, touch)
            }
        }
    }

    /// Is the line containing `addr` still resident where `touch`
    /// located it? Callers use this to validate an execute-once handle
    /// before replaying stalls through it. Side-effect-free.
    #[inline]
    pub fn line_resident(&self, addr: Addr, touch: LineTouch) -> bool {
        self.cache
            .resident_at(self.map.line_of(addr), touch.set, touch.way)
    }

    /// The stall half of the execute-once-then-stall interface: replay a
    /// guaranteed hit on the line located by a previous
    /// [`MemSystem::access_entry`]. Counters, LRU state, and the
    /// telemetry stream evolve exactly as a full hitting access at `at`
    /// would; only the lookup work is skipped. The caller guarantees the
    /// line is still resident — true as long as every access since the
    /// executing one hit (hits never evict).
    #[inline]
    pub fn retouch(&mut self, at: Time, touch: LineTouch, write: bool) -> Time {
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.cache.touch_at(at, touch.set, touch.way, write);
        at + self.timing.llc_hit
    }

    /// Bulk form of [`MemSystem::retouch`]: replay `rounds` round-robin
    /// passes over a group of resident lines in closed form. Counters
    /// and cache state end up exactly as `rounds` repetitions of
    /// `retouch` over the group in order would leave them, at O(group)
    /// cost. Unlike `retouch` this emits **no** telemetry probes, so it
    /// is only byte-equivalent when tracing is disabled — callers must
    /// gate on `!thymesim_telemetry::enabled()` and fall back to the
    /// per-access path under tracing.
    pub fn retouch_rounds(&mut self, touches: &[(LineTouch, bool)], rounds: u64) {
        for &(_, write) in touches {
            if write {
                self.stats.writes += rounds;
            } else {
                self.stats.reads += rounds;
            }
        }
        self.cache
            .touch_rounds(touches.iter().map(|&(t, w)| (t.set, t.way, w)), rounds);
    }

    /// Drop every cached line (detach / barrier); dirty remote lines are
    /// written back as posted traffic at time `at`.
    pub fn flush_cache(&mut self, at: Time) {
        let _ = at;
        let _dirty = self.cache.flush();
        // Timing of a full flush is dominated by the workload-visible
        // barrier the caller models; data is already coherent in `backing`.
    }

    // -- typed, timed data accessors -------------------------------------

    pub fn read_u64(&mut self, at: Time, a: Addr) -> (u64, Time) {
        let t = self.access(at, a, false);
        (self.backing.read_u64(a), t)
    }

    pub fn write_u64(&mut self, at: Time, a: Addr, v: u64) -> Time {
        let t = self.access(at, a, true);
        self.backing.write_u64(a, v);
        t
    }

    pub fn read_u32(&mut self, at: Time, a: Addr) -> (u32, Time) {
        let t = self.access(at, a, false);
        (self.backing.read_u32(a), t)
    }

    pub fn write_u32(&mut self, at: Time, a: Addr, v: u32) -> Time {
        let t = self.access(at, a, true);
        self.backing.write_u32(a, v);
        t
    }

    pub fn read_f64(&mut self, at: Time, a: Addr) -> (f64, Time) {
        let t = self.access(at, a, false);
        (self.backing.read_f64(a), t)
    }

    pub fn write_f64(&mut self, at: Time, a: Addr, v: f64) -> Time {
        let t = self.access(at, a, true);
        self.backing.write_f64(a, v);
        t
    }
}

impl<R> Drop for MemSystem<R> {
    fn drop(&mut self) {
        // One relaxed add per system lifetime keeps the events/sec
        // accounting entirely off the access path.
        TIMED_ACCESSES.fetch_add(self.stats.reads + self.stats.writes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::{shared, DramConfig};

    struct FixedRemote {
        latency: Dur,
        fetches: u64,
        writebacks: u64,
    }

    impl RemoteBackend for FixedRemote {
        fn fetch_line(&mut self, at: Time, _addr: Addr) -> Time {
            self.fetches += 1;
            at + self.latency
        }
        fn writeback_line(&mut self, _at: Time, _addr: Addr) {
            self.writebacks += 1;
        }
    }

    fn sys(remote_lat_ns: u64) -> MemSystem<FixedRemote> {
        let map = AddressMap::new(1 << 20, 1 << 20, 128);
        MemSystem::new(
            map,
            CacheConfig {
                sets: 4,
                ways: 2,
                line: 128,
            },
            shared(DramConfig {
                bandwidth_bytes_per_sec: 128e9,
                latency: Dur::ns(100),
                banks: 1,
            }),
            SysTiming {
                llc_hit: Dur::ns(4),
            },
            FixedRemote {
                latency: Dur::ns(remote_lat_ns),
                fetches: 0,
                writebacks: 0,
            },
        )
    }

    #[test]
    fn hit_is_fast_miss_is_slow() {
        let mut s = sys(1200);
        let a = Addr(0);
        let t_miss = s.access(Time::ZERO, a, false);
        // local miss: 1ns transfer + 100ns latency + 4ns hit
        assert_eq!(t_miss, Time::ns(105));
        let t_hit = s.access(t_miss, a, false);
        assert_eq!(t_hit, t_miss + Dur::ns(4));
    }

    #[test]
    fn remote_miss_goes_through_backend() {
        let mut s = sys(1200);
        let a = s.map.remote_base_addr();
        let t = s.access(Time::ZERO, a, false);
        assert_eq!(t, Time::ns(1204));
        assert_eq!(s.remote().fetches, 1);
        assert_eq!(s.stats.remote_miss, 1);
        assert_eq!(s.stats.local_miss, 0);
    }

    #[test]
    fn dirty_remote_victim_is_written_back_remotely() {
        let mut s = sys(1000);
        let base = s.map.remote_base_addr();
        // Cache geometry: 4 sets × 128B lines → same set every 512B.
        s.access(Time::ZERO, base, true); // dirty remote line, set 0
        s.access(Time::ZERO, base.offset(512), false); // same set
        s.access(Time::ZERO, base.offset(1024), false); // evicts the dirty line
        assert_eq!(s.remote().writebacks, 1);
        assert_eq!(s.stats.remote_writebacks, 1);
    }

    #[test]
    fn dirty_local_victim_uses_local_bus() {
        let mut s = sys(1000);
        s.access(Time::ZERO, Addr(0), true);
        s.access(Time::ZERO, Addr(512), false);
        s.access(Time::ZERO, Addr(1024), false);
        assert_eq!(s.stats.local_writebacks, 1);
        assert_eq!(s.remote().writebacks, 0);
    }

    #[test]
    fn typed_accessors_return_data_and_time() {
        let mut s = sys(1200);
        let a = s.map.remote_base_addr();
        let t1 = s.write_f64(Time::ZERO, a, 2.5);
        let (v, t2) = s.read_f64(t1, a);
        assert_eq!(v, 2.5);
        assert_eq!(t2, t1 + Dur::ns(4), "second access must hit");
    }

    #[test]
    fn same_line_scalars_share_one_miss() {
        let mut s = sys(1200);
        let a = s.map.remote_base_addr();
        s.read_u64(Time::ZERO, a);
        s.read_u64(Time::ZERO, a.offset(8));
        s.read_u64(Time::ZERO, a.offset(120));
        assert_eq!(s.stats.remote_miss, 1, "one line, one miss");
        assert_eq!(s.cache_stats().hits, 2);
    }

    #[test]
    #[should_panic(expected = "no disaggregated memory")]
    fn no_remote_panics_on_remote_access() {
        let map = AddressMap::new(1 << 20, 1 << 20, 128);
        let mut s = MemSystem::new(
            map,
            CacheConfig::tiny(),
            shared(DramConfig::default()),
            SysTiming::default(),
            NoRemote,
        );
        let a = s.map.remote_base_addr();
        s.access(Time::ZERO, a, false);
    }

    #[test]
    fn latency_histograms_populated() {
        let mut s = sys(2000);
        s.access(Time::ZERO, s.map.remote_base_addr(), false);
        s.access(Time::ZERO, Addr(0), false);
        assert_eq!(s.stats.remote_latency.count(), 1);
        assert_eq!(s.stats.local_latency.count(), 1);
        assert!(s.stats.remote_latency.mean() > s.stats.local_latency.mean());
    }

    #[test]
    fn retouch_is_equivalent_to_a_hitting_access() {
        // Walk the 16 scalars of one line two ways: full per-scalar
        // accesses vs execute-once-then-retouch. Completion times, stats,
        // and subsequent LRU behavior must be identical.
        let mut full = sys(1200);
        let mut stalled = sys(1200);
        let a = Addr(0);
        let (t0, miss0) = full.access_info(Time::ZERO, a, false);
        let (t1, miss1, touch) = stalled.access_entry(Time::ZERO, a, false);
        assert_eq!((t0, miss0), (t1, miss1));
        let mut t_full = t0;
        let mut t_stall = t1;
        for i in 1..16u64 {
            let write = i % 3 == 0;
            let (t, miss) = full.access_info(t_full, a.offset(i * 8), write);
            assert!(!miss);
            t_full = t;
            t_stall = stalled.retouch(t_stall, touch, write);
            assert_eq!(t_full, t_stall, "scalar {i}");
        }
        assert_eq!(full.stats.reads, stalled.stats.reads);
        assert_eq!(full.stats.writes, stalled.stats.writes);
        assert_eq!(full.cache_stats(), stalled.cache_stats());
        // The line was dirtied through both paths: evicting it must
        // write back in both systems.
        for s in [&mut full, &mut stalled] {
            s.access(Time::ZERO, Addr(512), false);
            s.access(Time::ZERO, Addr(1024), false);
        }
        assert_eq!(full.stats.local_writebacks, 1);
        assert_eq!(stalled.stats.local_writebacks, 1);
    }

    #[test]
    fn retouch_rounds_is_equivalent_to_repeated_retouches() {
        // Three lines resident in one system, replayed 15 rounds two
        // ways: per-access retouch vs the closed-form bulk. Stats,
        // cache counters, and subsequent LRU/writeback behavior must be
        // identical.
        let mut per = sys(1200);
        let mut bulk = sys(1200);
        let addrs = [Addr(0), Addr(128), Addr(256)];
        let writes = [false, false, true];
        let mut handles = Vec::new();
        for s in [&mut per, &mut bulk] {
            handles.clear();
            for (&a, &w) in addrs.iter().zip(&writes) {
                let (_, _, t) = s.access_entry(Time::ZERO, a, w);
                handles.push((t, w));
            }
            for (&a, &(t, _)) in addrs.iter().zip(&handles) {
                assert!(s.line_resident(a, t));
            }
        }
        let rounds = 15;
        for _ in 0..rounds {
            for &(t, w) in &handles {
                per.retouch(Time::ns(7), t, w);
            }
        }
        bulk.retouch_rounds(&handles, rounds);
        assert_eq!(per.stats.reads, bulk.stats.reads);
        assert_eq!(per.stats.writes, bulk.stats.writes);
        assert_eq!(per.cache_stats(), bulk.cache_stats());
        // LRU stamps must agree too: force evictions in the shared set
        // and require identical victim choices (observable as identical
        // writeback counters and residency).
        for s in [&mut per, &mut bulk] {
            s.access(Time::ZERO, Addr(512), false); // set 0, third way needed
            s.access(Time::ZERO, Addr(1024), false);
            s.access(Time::ZERO, Addr(1536), false);
        }
        assert_eq!(per.cache_stats(), bulk.cache_stats());
        assert_eq!(per.stats.local_writebacks, bulk.stats.local_writebacks);
    }

    #[test]
    fn dropped_systems_accumulate_timed_access_totals() {
        let before = timed_accesses_total();
        {
            let mut s = sys(1200);
            s.access(Time::ZERO, Addr(0), false);
            s.access(Time::ZERO, Addr(8), true);
            s.access(Time::ZERO, Addr(16), false);
        } // drop flushes
        assert!(timed_accesses_total() >= before + 3);
    }

    #[test]
    fn flush_makes_next_access_miss() {
        let mut s = sys(1200);
        let a = Addr(0);
        s.access(Time::ZERO, a, false);
        s.access(Time::ZERO, a, false);
        assert_eq!(s.cache_stats().hits, 1);
        s.flush_cache(Time::ZERO);
        s.access(Time::ZERO, a, false);
        assert_eq!(s.cache_stats().misses, 2);
    }
}
