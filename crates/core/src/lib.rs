//! # thymesim-core
//!
//! The characterization framework: a two-node [`testbed::Testbed`]
//! (borrower + lender + ThymesisFlow-style fabric + control plane),
//! workload [`runners`], and the paper's experiment campaigns under
//! [`experiments`]:
//!
//! * [`experiments::validate`] — Fig. 2/3 delay sweep + §III-B checks;
//! * [`experiments::resilience`] — Fig. 4 stress sweep (incl. the
//!   PERIOD=10000 attach failure);
//! * [`experiments::apps`] — Table I and Fig. 5 application impact;
//! * [`experiments::contention`] — Fig. 6 (MCBN) and Fig. 7 (MCLN);
//! * [`experiments::dist`] — the future-work distribution-driven injector.
//!
//! [`report`] renders every series as the paper's tables (markdown) or
//! figure data (CSV/JSON).

pub mod config;
pub mod experiments;
pub mod report;
pub mod runners;
pub mod sweep;
pub mod testbed;

/// Flat re-exports of the common entry points.
pub mod prelude {
    pub use crate::config::{NodeConfig, TestbedConfig};
    pub use crate::experiments::ablate::{
        kv_pipelining, wb_gating, window_sweep, KvPipelinePoint, WbGatingPoint, WindowPoint,
    };
    pub use crate::experiments::apps::{
        fig5, table1, AppScale, Fig5Point, Table1Row, FIG5_PERIODS,
    };
    pub use crate::experiments::beyond::{
        congestion_sweep, emulation_fidelity, pooling_sweep, rack_topology, CongestionPoint,
        EmulationReport, PoolingPoint, TopologyPoint,
    };
    pub use crate::experiments::contention::{
        mcbn, mcln, McbnPoint, MclnPoint, FIG6_COUNTS, FIG7_COUNTS,
    };
    pub use crate::experiments::dist::{dist_sweep, DistPoint};
    pub use crate::experiments::placement::{placement_study, PlacementPoint, PlacementPolicy};
    pub use crate::experiments::qos::{
        admission_study, page_migration_study, plan_migration, profile_arrays, serve_tail,
        ArrayProfile, QosPoint, ServeContention, ServeTailPoint,
    };
    pub use crate::experiments::resilience::{
        resilience_sweep, ResilienceOutcome, ResiliencePoint, FIG4_PERIODS,
    };
    pub use crate::experiments::sensitivity::{tornado, Knob, SensitivityRow};
    pub use crate::experiments::validate::{
        probe_delay_sweep, stream_delay_sweep, validate_injection, DelaySweepPoint,
        ProbeSweepPoint, ValidationReport, FIG2_PERIODS,
    };
    pub use crate::runners::{
        graph500_local_baseline, kv_local_baseline, run_graph500, run_kv, run_stream,
        run_stream_on_testbed, stream_local_baseline, GraphKernel, Placement,
    };
    pub use crate::sweep::{SweepCtx, SweepOptions, SweepOutcome};
    pub use crate::testbed::Testbed;
    pub use thymesim_fabric::{Crash, DelaySpec};
    pub use thymesim_net::{TreeConfig, TreeTopology};
    pub use thymesim_serve::{AdmissionPolicy, ArrivalPattern, ServeConfig};
    pub use thymesim_workloads::graph500::Graph500Config;
    pub use thymesim_workloads::kv::KvConfig;
    pub use thymesim_workloads::probe::{ChaseTable, ProbeConfig};
    pub use thymesim_workloads::stream::{StreamConfig, StreamReport};
}
