//! Workload-on-testbed runners and local baselines.
//!
//! Every experiment needs the same moves: place a workload's data in
//! disaggregated or local memory, run it to completion from the attach
//! point, and extract its metric. The paper's degradation ratios divide a
//! delayed run by either the local-memory run (Table I) or the vanilla
//! remote run (Fig. 5); both baselines live here.

use crate::config::{NodeConfig, TestbedConfig};
use crate::testbed::Testbed;
use thymesim_mem::{
    shared_dram, Addr, AddressMap, Arena, MemSystem, NoRemote, RemoteBackend, SimVec,
};
use thymesim_sim::{Process, Step, Time};
use thymesim_workloads::graph500::{self, Graph500Config, Graph500Report};
use thymesim_workloads::kv::{self, KvConfig, KvReport, KvStore};
use thymesim_workloads::stream::{StreamArrays, StreamConfig, StreamProcess, StreamReport};

/// Where a workload's data lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// In the hot-plugged disaggregated window.
    Remote,
    /// In borrower-local DRAM (the paper's "local memory" baseline).
    Local,
}

/// A standalone local-memory node (baseline runs need no fabric at all).
pub fn local_system(node: &NodeConfig, size: u64) -> (MemSystem<NoRemote>, Arena) {
    let map = AddressMap::new(size, node.cache.line, node.cache.line);
    let sys = MemSystem::new(
        map,
        node.cache,
        shared_dram(node.dram),
        node.timing,
        NoRemote,
    );
    (sys, Arena::new(Addr(0), size))
}

// ---------------------------------------------------------------------------
// STREAM
// ---------------------------------------------------------------------------

/// Run one STREAM instance on an existing testbed.
pub fn run_stream(tb: &mut Testbed, cfg: &StreamConfig, placement: Placement) -> StreamReport {
    let arena = match placement {
        Placement::Remote => &mut tb.remote_arena,
        Placement::Local => &mut tb.local_arena,
    };
    let arrays = StreamArrays::alloc(arena, cfg.elements);
    arrays.init(&mut tb.borrower);
    let p = StreamProcess::new(*cfg, arrays, tb.attach.ready_at);
    p.run_to_completion(&mut tb.borrower)
}

/// Build a testbed from `cfg` and run STREAM out of remote memory — the
/// §IV-B experiment in one call.
pub fn run_stream_on_testbed(cfg: &TestbedConfig, stream: &StreamConfig) -> StreamReport {
    let mut tb = Testbed::build(cfg).expect("attach failed (is PERIOD extreme?)");
    run_stream(&mut tb, stream, Placement::Remote)
}

/// STREAM on plain local memory (no fabric anywhere).
pub fn stream_local_baseline(node: &NodeConfig, cfg: &StreamConfig) -> StreamReport {
    let bytes = cfg.elements * 8 * 3 + (1 << 20);
    let (mut sys, mut arena) = local_system(node, bytes.next_power_of_two());
    let arrays = StreamArrays::alloc(&mut arena, cfg.elements);
    arrays.init(&mut sys);
    StreamProcess::new(*cfg, arrays, Time::ZERO).run_to_completion(&mut sys)
}

// ---------------------------------------------------------------------------
// KV (Redis + memtier)
// ---------------------------------------------------------------------------

/// Run the memtier-style KV benchmark on the testbed.
pub fn run_kv(tb: &mut Testbed, cfg: &KvConfig, placement: Placement) -> KvReport {
    let arena = match placement {
        Placement::Remote => &mut tb.remote_arena,
        Placement::Local => &mut tb.local_arena,
    };
    let store = KvStore::build(cfg, &mut tb.borrower, arena);
    kv::run_memtier(cfg, &mut tb.borrower, &store)
}

/// KV on plain local memory.
pub fn kv_local_baseline(node: &NodeConfig, cfg: &KvConfig) -> KvReport {
    let bytes = cfg.working_set_bytes() * 2 + (1 << 22);
    let (mut sys, mut arena) = local_system(node, bytes.next_power_of_two());
    let store = KvStore::build(cfg, &mut sys, &mut arena);
    kv::run_memtier(cfg, &mut sys, &store)
}

// ---------------------------------------------------------------------------
// Graph500
// ---------------------------------------------------------------------------

/// Which Graph500 kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum GraphKernel {
    Bfs,
    Sssp,
}

/// Run Graph500 (BFS or SSSP phase) on the testbed.
pub fn run_graph500(
    tb: &mut Testbed,
    cfg: &Graph500Config,
    kernel: GraphKernel,
    placement: Placement,
    validate: bool,
) -> Graph500Report {
    let arena = match placement {
        Placement::Remote => &mut tb.remote_arena,
        Placement::Local => &mut tb.local_arena,
    };
    let g = graph500::build_csr(cfg, &mut tb.borrower, arena);
    let out: SimVec<u32> = arena.alloc_vec(g.n);
    match kernel {
        GraphKernel::Bfs => graph500::run_bfs_benchmark(cfg, &mut tb.borrower, &g, &out, validate),
        GraphKernel::Sssp => {
            graph500::run_sssp_benchmark(cfg, &mut tb.borrower, &g, &out, validate)
        }
    }
}

/// Graph500 on plain local memory.
pub fn graph500_local_baseline(
    node: &NodeConfig,
    cfg: &Graph500Config,
    kernel: GraphKernel,
) -> Graph500Report {
    let bytes = cfg.edges() * 2 * 8 + cfg.vertices() * 24 + (1 << 22);
    let (mut sys, mut arena) = local_system(node, bytes.next_power_of_two());
    let g = graph500::build_csr(cfg, &mut sys, &mut arena);
    let out: SimVec<u32> = arena.alloc_vec(g.n);
    match kernel {
        GraphKernel::Bfs => graph500::run_bfs_benchmark(cfg, &mut sys, &g, &out, false),
        GraphKernel::Sssp => graph500::run_sssp_benchmark(cfg, &mut sys, &g, &out, false),
    }
}

// ---------------------------------------------------------------------------
// Process adapters (contention experiments)
// ---------------------------------------------------------------------------

/// Adapter: a [`StreamProcess`] as a `thymesim_sim::Process` over any
/// memory system.
pub struct StreamProc(pub StreamProcess);

impl<R: RemoteBackend> Process<MemSystem<R>> for StreamProc {
    fn next_time(&self) -> Time {
        self.0.next_time()
    }
    fn step(&mut self, shared: &mut MemSystem<R>) -> Step {
        self.0.step_on(shared)
    }
}

/// A STREAM instance bound to one side of the testbed (for MCLN, where
/// borrower and lender instances advance on one virtual timeline).
pub enum NodeStream {
    Borrower(StreamProcess),
    Lender(StreamProcess),
}

impl NodeStream {
    pub fn inner(&self) -> &StreamProcess {
        match self {
            NodeStream::Borrower(p) | NodeStream::Lender(p) => p,
        }
    }
}

impl Process<Testbed> for NodeStream {
    fn next_time(&self) -> Time {
        self.inner().next_time()
    }
    fn step(&mut self, shared: &mut Testbed) -> Step {
        match self {
            NodeStream::Borrower(p) => p.step_on(&mut shared.borrower),
            NodeStream::Lender(p) => p.step_on(&mut shared.lender),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thymesim_sim::run_processes;

    fn tiny_tb() -> TestbedConfig {
        TestbedConfig::tiny()
    }

    #[test]
    fn stream_remote_slower_than_local() {
        let cfg = tiny_tb();
        let mut scfg = StreamConfig::tiny();
        scfg.elements = 32_768;
        let remote = run_stream_on_testbed(&cfg, &scfg);
        let local = stream_local_baseline(&cfg.borrower, &scfg);
        assert!(remote.verified && local.verified);
        assert!(
            local.best_bandwidth_gib_s() > remote.best_bandwidth_gib_s(),
            "local {} GiB/s should beat remote {} GiB/s",
            local.best_bandwidth_gib_s(),
            remote.best_bandwidth_gib_s()
        );
    }

    #[test]
    fn delay_injection_slows_stream() {
        let mut scfg = StreamConfig::tiny();
        scfg.elements = 16_384;
        let vanilla = run_stream_on_testbed(&tiny_tb().with_period(1), &scfg);
        let delayed = run_stream_on_testbed(&tiny_tb().with_period(100), &scfg);
        assert!(
            delayed.miss_latency_mean > vanilla.miss_latency_mean * 10,
            "PERIOD=100 latency {} vs vanilla {}",
            delayed.miss_latency_mean,
            vanilla.miss_latency_mean
        );
        assert!(delayed.best_bandwidth_gib_s() < vanilla.best_bandwidth_gib_s() / 5.0);
    }

    #[test]
    fn kv_runs_on_remote_and_verifies() {
        let mut tb = Testbed::build(&tiny_tb()).unwrap();
        let kcfg = KvConfig::tiny();
        let report = run_kv(&mut tb, &kcfg, Placement::Remote);
        assert!(report.data_ok);
        assert_eq!(report.requests, kcfg.total_requests());
        assert!(tb.borrower.remote().stats.reads > 0, "no remote traffic");
    }

    #[test]
    fn graph500_remote_validates() {
        let mut tb = Testbed::build(&tiny_tb()).unwrap();
        let gcfg = Graph500Config::tiny();
        let report = run_graph500(&mut tb, &gcfg, GraphKernel::Bfs, Placement::Remote, true);
        assert!(report.validated);
        assert!(tb.borrower.remote().stats.reads > 0);
    }

    #[test]
    fn two_streams_share_fabric_bandwidth() {
        let mut tb = Testbed::build(&tiny_tb()).unwrap();
        let mut scfg = StreamConfig::tiny();
        scfg.elements = 16_384;
        let mut procs = Vec::new();
        for _ in 0..2 {
            let arrays = StreamArrays::alloc(&mut tb.remote_arena, scfg.elements);
            arrays.init(&mut tb.borrower);
            procs.push(StreamProc(StreamProcess::new(
                scfg,
                arrays,
                tb.attach.ready_at,
            )));
        }
        let stats = run_processes(&mut procs, &mut tb.borrower, Time::NEVER);
        assert_eq!(stats.finished, 2);
        // Each instance sees roughly half the solo bandwidth.
        let solo = {
            let mut tb2 = Testbed::build(&tiny_tb()).unwrap();
            run_stream(&mut tb2, &scfg, Placement::Remote).best_bandwidth_gib_s()
        };
        for p in &procs {
            let bw = p.0.mean_bandwidth_gib_s();
            assert!(
                bw < solo * 0.75,
                "shared instance got {bw} vs solo {solo} — no contention visible"
            );
        }
    }
}
