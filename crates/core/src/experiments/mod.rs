//! The paper's experiments (E1–E10 in DESIGN.md §5), one module per
//! table/figure family.

pub mod ablate;
pub mod apps;
pub mod beyond;
pub mod contention;
pub mod dist;
pub mod placement;
pub mod qos;
pub mod resilience;
pub mod sensitivity;
pub mod validate;
