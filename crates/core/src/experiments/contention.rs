//! E6/E7 — resource contention (Figs. 6 and 7, §IV-E).
//!
//! * **MCBN** — N STREAM instances on the borrower all using disaggregated
//!   memory: they compete for the NIC/network and split its bandwidth
//!   roughly equally (Fig. 6).
//! * **MCLN** — one borrower STREAM instance over disaggregated memory
//!   while N STREAM instances hammer the lender's local memory: the
//!   lender's bus is so much faster than the network that the borrower's
//!   bandwidth barely moves (Fig. 7).

use crate::config::TestbedConfig;
use crate::runners::{NodeStream, StreamProc};
use crate::sweep;
use crate::testbed::Testbed;
use serde::{Deserialize, Serialize};
use thymesim_sim::{run_processes, Time};
use thymesim_workloads::stream::{StreamArrays, StreamConfig, StreamProcess};

/// Instance counts used in the paper's contention figures.
pub const FIG6_COUNTS: [usize; 4] = [1, 2, 4, 8];
pub const FIG7_COUNTS: [usize; 5] = [0, 1, 2, 4, 8];

/// The full configuration of one contention point.
#[derive(Clone, Debug, Serialize)]
struct ContentionPoint {
    instances: usize,
    cfg: TestbedConfig,
    stream: StreamConfig,
}

fn contention_grid(
    base: &TestbedConfig,
    stream: &StreamConfig,
    counts: &[usize],
) -> Vec<ContentionPoint> {
    counts
        .iter()
        .map(|&instances| ContentionPoint {
            instances,
            cfg: base.clone(),
            stream: *stream,
        })
        .collect()
}

/// One Fig. 6 point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct McbnPoint {
    pub instances: usize,
    /// Mean STREAM-reported bandwidth per instance, GiB/s.
    pub per_instance_gib_s: f64,
    /// Sum across instances.
    pub aggregate_gib_s: f64,
}

/// Run MCBN at each instance count.
pub fn mcbn(base: &TestbedConfig, stream: &StreamConfig, counts: &[usize]) -> Vec<McbnPoint> {
    let grid = contention_grid(base, stream, counts);
    let mut points = sweep::run("contention/mcbn", &grid, |_ctx, pt| {
        let n = pt.instances;
        assert!(n >= 1);
        let mut tb = Testbed::build(&pt.cfg).expect("MCBN attach");
        let mut procs = Vec::with_capacity(n);
        for _ in 0..n {
            let arrays = StreamArrays::alloc(&mut tb.remote_arena, pt.stream.elements);
            arrays.init(&mut tb.borrower);
            procs.push(StreamProc(StreamProcess::new(
                pt.stream,
                arrays,
                tb.attach.ready_at,
            )));
        }
        let stats = run_processes(&mut procs, &mut tb.borrower, Time::NEVER);
        assert_eq!(stats.finished, n, "instances did not finish");
        let bws: Vec<f64> = procs.iter().map(|p| p.0.mean_bandwidth_gib_s()).collect();
        let agg: f64 = bws.iter().sum();
        McbnPoint {
            instances: n,
            per_instance_gib_s: agg / n as f64,
            aggregate_gib_s: agg,
        }
    });
    points.sort_by_key(|p| p.instances);
    points
}

/// One Fig. 7 point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MclnPoint {
    pub lender_instances: usize,
    /// The borrower instance's STREAM bandwidth, GiB/s.
    pub borrower_gib_s: f64,
    /// Aggregate bandwidth of the lender-side instances, GiB/s.
    pub lender_aggregate_gib_s: f64,
}

/// Run MCLN at each lender instance count.
pub fn mcln(base: &TestbedConfig, stream: &StreamConfig, counts: &[usize]) -> Vec<MclnPoint> {
    let grid = contention_grid(base, stream, counts);
    let mut points = sweep::run("contention/mcln", &grid, |_ctx, pt| {
        let n = pt.instances;
        let mut tb = Testbed::build(&pt.cfg).expect("MCLN attach");
        let mut procs: Vec<NodeStream> = Vec::with_capacity(n + 1);
        // The measured borrower instance, over disaggregated memory.
        let arrays = StreamArrays::alloc(&mut tb.remote_arena, pt.stream.elements);
        arrays.init(&mut tb.borrower);
        procs.push(NodeStream::Borrower(StreamProcess::new(
            pt.stream,
            arrays,
            tb.attach.ready_at,
        )));
        // Contending instances on the lender's own memory. Lender-side
        // STREAM keeps a resident working set on its local DRAM;
        // Graph500-class MLP is irrelevant — they just burn bus
        // bandwidth.
        for _ in 0..n {
            let arrays = StreamArrays::alloc(&mut tb.lender_arena, pt.stream.elements);
            arrays.init(&mut tb.lender);
            procs.push(NodeStream::Lender(StreamProcess::new(
                pt.stream,
                arrays,
                tb.attach.ready_at,
            )));
        }
        let stats = run_processes(&mut procs, &mut tb, Time::NEVER);
        assert_eq!(stats.finished, n + 1);
        let borrower_gib_s = procs[0].inner().mean_bandwidth_gib_s();
        let lender_aggregate_gib_s = procs[1..]
            .iter()
            .map(|p| p.inner().mean_bandwidth_gib_s())
            .sum();
        MclnPoint {
            lender_instances: n,
            borrower_gib_s,
            lender_aggregate_gib_s,
        }
    });
    points.sort_by_key(|p| p.lender_instances);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_stream() -> StreamConfig {
        let mut s = StreamConfig::tiny();
        s.elements = 16_384;
        s
    }

    #[test]
    fn mcbn_divides_bandwidth_equally() {
        let points = mcbn(&TestbedConfig::tiny(), &quick_stream(), &[1, 2, 4]);
        let solo = points[0].per_instance_gib_s;
        // Aggregate stays ~flat (the shared bottleneck is saturated);
        // per-instance bandwidth divides by N.
        for p in &points {
            assert!(
                (p.aggregate_gib_s / points[0].aggregate_gib_s - 1.0).abs() < 0.25,
                "aggregate should stay ~constant: {points:?}"
            );
            let expected = solo / p.instances as f64;
            let err = (p.per_instance_gib_s - expected).abs() / expected;
            assert!(
                err < 0.3,
                "N={}: per-instance {} vs expected {expected}",
                p.instances,
                p.per_instance_gib_s
            );
        }
    }

    #[test]
    fn mcln_borrower_bandwidth_is_flat() {
        let points = mcln(&TestbedConfig::tiny(), &quick_stream(), &[0, 2, 4]);
        let solo = points[0].borrower_gib_s;
        for p in &points {
            let drop = 1.0 - p.borrower_gib_s / solo;
            assert!(
                drop < 0.10,
                "lender contention ({} instances) cost the borrower {:.1}% — \
                 the network, not the lender bus, must be the bottleneck",
                p.lender_instances,
                drop * 100.0
            );
        }
        // And the lender instances really did move data.
        assert!(points.last().unwrap().lender_aggregate_gib_s > 10.0);
    }

    #[test]
    fn mcln_lender_instances_share_their_bus() {
        let points = mcln(&TestbedConfig::tiny(), &quick_stream(), &[1, 4]);
        let one = points[0].lender_aggregate_gib_s;
        let four = points[1].lender_aggregate_gib_s;
        // Four instances move more in aggregate, but less than 4x (the
        // bus saturates).
        assert!(four > one, "{points:?}");
        assert!(four < one * 4.0, "{points:?}");
    }
}
