//! E4/E5 — application performance impact (Table I and Fig. 5, §IV-C/D).
//!
//! Table I: completion-time (or throughput) degradation of Redis and
//! Graph500 BFS/SSSP at PERIOD ∈ {1, 1000}, relative to **local memory**.
//! Fig. 5: degradation across a PERIOD sweep relative to **vanilla
//! ThymesisFlow** (PERIOD = 1 remote).
//!
//! Per DESIGN.md §5, Graph500 runs in its fully threaded configuration
//! for Table I (128 SMT contexts saturate the NIC window → catastrophic
//! queueing at extreme PERIOD) and in the moderate-MLP reference
//! configuration for the Fig. 5 sweep.

use crate::config::TestbedConfig;
use crate::runners::{
    graph500_local_baseline, kv_local_baseline, run_graph500, run_kv, GraphKernel, Placement,
};
use crate::sweep;
use crate::testbed::Testbed;
use serde::Serialize;
use thymesim_workloads::graph500::Graph500Config;
use thymesim_workloads::kv::KvConfig;

/// Workload sizes for the application experiments (paper-scale by
/// default; scale down for tests/CI).
#[derive(Clone, Debug)]
pub struct AppScale {
    pub kv: KvConfig,
    /// Graph500 in the fully threaded (Table I) configuration.
    pub graph_parallel: Graph500Config,
    /// Graph500 in the reference (Fig. 5) configuration.
    pub graph_reference: Graph500Config,
}

impl Default for AppScale {
    fn default() -> Self {
        AppScale {
            kv: KvConfig::default(),
            graph_parallel: Graph500Config::parallel(),
            graph_reference: Graph500Config::reference(),
        }
    }
}

impl AppScale {
    /// Small instances for tests. The graph must exceed the tiny 256 KiB
    /// LLC (scale 12 × edgefactor 16 → ~1.2 MiB of CSR) or the workload
    /// degenerates to cache hits and shows no remote sensitivity.
    pub fn tiny() -> AppScale {
        let base = Graph500Config {
            scale: 12,
            edgefactor: 16,
            roots: 2,
            ..Graph500Config::tiny()
        };
        AppScale {
            kv: KvConfig::tiny(),
            graph_parallel: Graph500Config { cores: 32, ..base },
            graph_reference: Graph500Config { cores: 4, ..base },
        }
    }
}

/// One Table I cell: degradation of `app` at `period` vs local memory.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    pub app: String,
    /// Degradation at PERIOD=1 (vanilla remote vs local).
    pub degradation_p1: f64,
    /// Degradation at PERIOD=1000.
    pub degradation_p1000: f64,
}

/// Degradation helper: larger is worse.
fn time_ratio(delayed_s: f64, baseline_s: f64) -> f64 {
    delayed_s / baseline_s
}

/// The workload one application cell runs.
#[derive(Clone, Debug, Serialize)]
enum AppWork {
    Kv(KvConfig),
    Graph(Graph500Config, GraphKernel),
}

/// One (application, PERIOD) cell of an application experiment.
#[derive(Clone, Debug, Serialize)]
struct AppPoint {
    app: String,
    period: u64,
    cfg: TestbedConfig,
    work: AppWork,
}

/// Grid for `periods × {Redis, BFS, SSSP}`, apps innermost.
fn app_grid(
    base: &TestbedConfig,
    kv: &KvConfig,
    graph: &Graph500Config,
    periods: &[u64],
) -> Vec<AppPoint> {
    let mut grid = Vec::with_capacity(periods.len() * 3);
    for &period in periods {
        let cfg = base.clone().with_period(period);
        grid.push(AppPoint {
            app: "Redis".into(),
            period,
            cfg: cfg.clone(),
            work: AppWork::Kv(*kv),
        });
        for kernel in [GraphKernel::Bfs, GraphKernel::Sssp] {
            grid.push(AppPoint {
                app: format!("Graph500 {kernel:?}"),
                period,
                cfg: cfg.clone(),
                work: AppWork::Graph(*graph, kernel),
            });
        }
    }
    grid
}

/// Run one cell remote; the metric is ops/s for KV, seconds for graphs.
fn run_cell(pt: &AppPoint) -> f64 {
    let mut tb = Testbed::build(&pt.cfg).expect("app periods attach");
    match &pt.work {
        AppWork::Kv(kv) => run_kv(&mut tb, kv, Placement::Remote).ops_per_sec,
        AppWork::Graph(g, kernel) => run_graph500(&mut tb, g, *kernel, Placement::Remote, false)
            .total_time
            .as_secs_f64(),
    }
}

/// Run the full Table I experiment.
pub fn table1(base: &TestbedConfig, scale: &AppScale) -> Vec<Table1Row> {
    // Local baselines (no fabric).
    let kv_local = kv_local_baseline(&base.borrower, &scale.kv);
    let bfs_local =
        graph500_local_baseline(&base.borrower, &scale.graph_parallel, GraphKernel::Bfs);
    let sssp_local =
        graph500_local_baseline(&base.borrower, &scale.graph_parallel, GraphKernel::Sssp);

    // Six independent cells: {1, 1000} × {Redis, BFS, SSSP}.
    let grid = app_grid(base, &scale.kv, &scale.graph_parallel, &[1, 1000]);
    let cells = sweep::run("apps/table1", &grid, |_ctx, pt| run_cell(pt));
    let (kv1, bfs1, sssp1) = (cells[0], cells[1], cells[2]);
    let (kv1000, bfs1000, sssp1000) = (cells[3], cells[4], cells[5]);

    vec![
        Table1Row {
            app: "Redis".into(),
            // Redis's metric is throughput: degradation = local/delayed.
            degradation_p1: kv_local.ops_per_sec / kv1,
            degradation_p1000: kv_local.ops_per_sec / kv1000,
        },
        Table1Row {
            app: "Graph500 BFS".into(),
            degradation_p1: time_ratio(bfs1, bfs_local.total_time.as_secs_f64()),
            degradation_p1000: time_ratio(bfs1000, bfs_local.total_time.as_secs_f64()),
        },
        Table1Row {
            app: "Graph500 SSSP".into(),
            degradation_p1: time_ratio(sssp1, sssp_local.total_time.as_secs_f64()),
            degradation_p1000: time_ratio(sssp1000, sssp_local.total_time.as_secs_f64()),
        },
    ]
}

/// The Fig. 5 sweep points (PERIOD values).
pub const FIG5_PERIODS: [u64; 6] = [1, 50, 100, 200, 400, 800];

/// One Fig. 5 point: degradation vs the vanilla remote run (PERIOD = 1).
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Point {
    pub period: u64,
    pub redis: f64,
    pub bfs: f64,
    pub sssp: f64,
}

/// Run the Fig. 5 sweep.
pub fn fig5(base: &TestbedConfig, scale: &AppScale, periods: &[u64]) -> Vec<Fig5Point> {
    // Raw metrics per (period, app) cell; normalization to the vanilla
    // remote baseline happens after collection so the cached unit stays
    // one independent simulation.
    let grid = app_grid(base, &scale.kv, &scale.graph_reference, periods);
    let cells = sweep::run("apps/fig5", &grid, |_ctx, pt| run_cell(pt));
    let raw: Vec<(u64, f64, f64, f64)> = periods
        .iter()
        .enumerate()
        .map(|(i, &period)| (period, cells[3 * i], cells[3 * i + 1], cells[3 * i + 2]))
        .collect();

    let baseline = raw
        .iter()
        .find(|r| r.0 == 1)
        .expect("sweep must include PERIOD=1 as the vanilla baseline");
    let (_, kv0, bfs0, sssp0) = *baseline;
    let mut points: Vec<Fig5Point> = raw
        .iter()
        .map(|&(period, kv, bfs, sssp)| Fig5Point {
            period,
            redis: kv0 / kv,
            bfs: bfs / bfs0,
            sssp: sssp / sssp0,
        })
        .collect();
    points.sort_by_key(|p| p.period);
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1(&TestbedConfig::tiny(), &AppScale::tiny());
        assert_eq!(rows.len(), 3);
        let redis = &rows[0];
        let bfs = &rows[1];
        let sssp = &rows[2];

        // Redis barely degrades at vanilla, noticeably at PERIOD=1000,
        // but stays within a small factor (paper: 1.01x → 1.73x).
        assert!(
            redis.degradation_p1 < 1.15,
            "Redis vanilla degradation {}",
            redis.degradation_p1
        );
        assert!(
            redis.degradation_p1000 > redis.degradation_p1,
            "delay must cost Redis something"
        );
        assert!(
            redis.degradation_p1000 < 4.0,
            "Redis must stay usable: {}",
            redis.degradation_p1000
        );

        // Graph500 degrades by orders of magnitude at PERIOD=1000
        // (paper: 2209x/1800x), and single-digit factors at vanilla.
        assert!(
            bfs.degradation_p1 > 1.5 && bfs.degradation_p1 < 30.0,
            "BFS vanilla degradation {}",
            bfs.degradation_p1
        );
        assert!(
            bfs.degradation_p1000 > 100.0,
            "BFS extreme degradation only {}",
            bfs.degradation_p1000
        );
        assert!(
            sssp.degradation_p1000 > 60.0,
            "SSSP extreme degradation only {}",
            sssp.degradation_p1000
        );
        // The divergence insight: Graph500 suffers orders of magnitude
        // more than Redis.
        assert!(bfs.degradation_p1000 / redis.degradation_p1000 > 50.0);
    }

    #[test]
    fn fig5_redis_flat_graph_steep() {
        let points = fig5(&TestbedConfig::tiny(), &AppScale::tiny(), &[1, 100, 400]);
        assert_eq!(points.len(), 3);
        let last = points.last().unwrap();
        assert!(
            last.redis < 1.6,
            "Redis should stay near flat vs vanilla remote: {}",
            last.redis
        );
        assert!(
            last.bfs > 2.0,
            "BFS should degrade steeply vs vanilla remote: {}",
            last.bfs
        );
        assert!(last.sssp > 1.5, "SSSP should degrade: {}", last.sssp);
        // Both graph kernels degrade steeply and within a small factor of
        // each other (the paper orders BFS slightly above SSSP; our model
        // slightly reverses it — see EXPERIMENTS.md).
        assert!(
            last.bfs > last.sssp * 0.4 && last.sssp > last.bfs * 0.4,
            "graph kernels should degrade comparably: bfs {} sssp {}",
            last.bfs,
            last.sssp
        );
        // The PERIOD=1 point is the baseline by construction.
        assert!((points[0].redis - 1.0).abs() < 1e-9);
        assert!((points[0].bfs - 1.0).abs() < 1e-9);
    }
}
