//! E15 — sensitivity of the headline results to the model's calibration
//! constants.
//!
//! Every reproduction carries constants the paper does not pin down
//! (window depth, link rate, pipeline latencies). This experiment
//! perturbs each one ±50% and reports how the two headline metrics move:
//! the Fig. 2 slope (µs of latency per PERIOD) and the vanilla remote
//! latency floor. Constants whose perturbation barely moves the results
//! don't need precise calibration; the ones that do are exactly the
//! quantities the paper measured (window — via the BDP — and the base
//! path latency).

use crate::config::TestbedConfig;
use crate::experiments::validate::{stream_delay_sweep, validate_injection};
use serde::Serialize;
use thymesim_sim::Dur;
use thymesim_workloads::stream::StreamConfig;

/// A perturbable model constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Knob {
    /// The workload's outstanding line fetches (core MSHRs + prefetch).
    Mshr,
    /// The NIC's transaction credits.
    Window,
    LinkRate,
    EgressLatency,
    IngressLatency,
    LenderBusRate,
}

pub const ALL_KNOBS: [Knob; 6] = [
    Knob::Mshr,
    Knob::Window,
    Knob::LinkRate,
    Knob::EgressLatency,
    Knob::IngressLatency,
    Knob::LenderBusRate,
];

fn apply(
    base: &TestbedConfig,
    stream: &StreamConfig,
    knob: Knob,
    factor: f64,
) -> (TestbedConfig, StreamConfig) {
    let mut cfg = base.clone();
    let mut s = *stream;
    match knob {
        Knob::Mshr => {
            s.mlp = ((stream.mlp as f64 * factor).round() as usize).max(1);
        }
        Knob::Window => {
            cfg.fabric.window = ((base.fabric.window as f64 * factor).round() as usize).max(1);
        }
        Knob::LinkRate => {
            cfg.fabric.link.bits_per_sec = base.fabric.link.bits_per_sec * factor;
        }
        Knob::EgressLatency => {
            cfg.fabric.egress_latency =
                Dur::ps((base.fabric.egress_latency.as_ps() as f64 * factor) as u64);
        }
        Knob::IngressLatency => {
            cfg.fabric.ingress_latency =
                Dur::ps((base.fabric.ingress_latency.as_ps() as f64 * factor) as u64);
        }
        Knob::LenderBusRate => {
            cfg.lender.dram.bandwidth_bytes_per_sec =
                base.lender.dram.bandwidth_bytes_per_sec * factor;
        }
    }
    (cfg, s)
}

/// One row of the tornado table.
#[derive(Clone, Debug, Serialize)]
pub struct SensitivityRow {
    pub knob: Knob,
    /// Relative change of the Fig. 2 slope at factor 0.5 / 1.5.
    pub slope_lo: f64,
    pub slope_hi: f64,
    /// Relative change of the vanilla latency floor at factor 0.5 / 1.5.
    pub floor_lo: f64,
    pub floor_hi: f64,
}

fn headline(cfg: &TestbedConfig, stream: &StreamConfig) -> (f64, f64) {
    let points = stream_delay_sweep(cfg, stream, &[1, 50, 150, 300]);
    let v = validate_injection(&points);
    (v.fit_slope_us_per_period, points[0].latency_us)
}

/// Perturb each knob ±50% and report headline shifts (relative to base).
///
/// The knob loop itself is serial: every internal `headline` call fans out
/// through the swept [`stream_delay_sweep`], so parallelism *and*
/// memoization already happen per simulated point — the right
/// granularity, since neighbouring knobs share the unperturbed base
/// points.
pub fn tornado(base: &TestbedConfig, stream: &StreamConfig) -> Vec<SensitivityRow> {
    let (slope0, floor0) = headline(base, stream);
    let mut rows: Vec<SensitivityRow> = ALL_KNOBS
        .iter()
        .map(|&knob| {
            let (cfg_lo, s_lo) = apply(base, stream, knob, 0.5);
            let (slope_lo, floor_lo) = headline(&cfg_lo, &s_lo);
            let (cfg_hi, s_hi) = apply(base, stream, knob, 1.5);
            let (slope_hi, floor_hi) = headline(&cfg_hi, &s_hi);
            SensitivityRow {
                knob,
                slope_lo: slope_lo / slope0 - 1.0,
                slope_hi: slope_hi / slope0 - 1.0,
                floor_lo: floor_lo / floor0 - 1.0,
                floor_hi: floor_hi / floor0 - 1.0,
            }
        })
        .collect();
    // Sort by total slope swing, biggest lever first.
    rows.sort_by(|a, b| {
        let sa = a.slope_lo.abs() + a.slope_hi.abs();
        let sb = b.slope_lo.abs() + b.slope_hi.abs();
        sb.total_cmp(&sa)
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mshr_count_dominates_the_slope() {
        let mut stream = StreamConfig::tiny();
        stream.elements = 16_384;
        let rows = tornado(&TestbedConfig::tiny(), &stream);
        assert_eq!(rows.len(), ALL_KNOBS.len());
        // The measured latency includes the NIC doorbell queue, so the
        // slope tracks the *workload's* outstanding fetches: halving the
        // MSHRs halves the slope. (The NIC window only decides *where*
        // the queueing happens once MSHRs exceed it.)
        assert_eq!(rows[0].knob, Knob::Mshr, "{rows:?}");
        assert!(
            (-0.6..=-0.4).contains(&rows[0].slope_lo),
            "halving the MSHRs should halve the slope: {rows:?}"
        );
        // Fixed pipeline latencies barely touch the slope (<10%).
        let egress = rows.iter().find(|r| r.knob == Knob::EgressLatency).unwrap();
        assert!(
            egress.slope_lo.abs() < 0.1 && egress.slope_hi.abs() < 0.1,
            "egress latency must not drive the slope: {egress:?}"
        );
        // Nor does the NIC window, once the workload can overrun it.
        let window = rows.iter().find(|r| r.knob == Knob::Window).unwrap();
        assert!(window.slope_lo.abs() < 0.1, "{window:?}");
    }

    #[test]
    fn latency_floor_follows_the_bottleneck() {
        let mut stream = StreamConfig::tiny();
        stream.elements = 16_384;
        let rows = tornado(&TestbedConfig::tiny(), &stream);
        let link = rows.iter().find(|r| r.knob == Knob::LinkRate).unwrap();
        let bus = rows.iter().find(|r| r.knob == Knob::LenderBusRate).unwrap();
        // The vanilla floor is link-drain dominated: halving the link
        // rate raises it substantially; the (much faster) lender bus is
        // irrelevant — the Fig. 7 asymmetry, seen from another angle.
        assert!(
            link.floor_lo > 0.3,
            "slower link should raise the floor: {link:?}"
        );
        assert!(
            bus.floor_lo.abs() < 0.05,
            "the lender bus must not matter: {bus:?}"
        );
    }
}
