//! E11/E12 — beyond rack-scale, the regime the paper's characterization
//! is meant to anticipate (§II-B, §V).
//!
//! * **Switched-fabric congestion (E11)** — multiple borrower–lender
//!   pairs share an oversubscribed fabric segment. Background pairs
//!   congest the foreground pair's traffic, producing *emergent* latency.
//!   [`emulation_fidelity`] then closes the paper's core methodological
//!   loop: it picks the constant-injection PERIOD whose mean latency
//!   matches the congested run and compares the resulting degradation —
//!   quantifying how well delay injection emulates real congestion (and
//!   where the constant injector misses the tail, per §V's limitation).
//! * **Memory pooling (E12)** — §V argues that with CPU-less memory
//!   pools "the bottleneck could shift from the network to the memory
//!   pool itself". Several borrowers share one lender/pool bus; sweeping
//!   the pool's bandwidth shows exactly that shift: with a server-class
//!   bus the borrowers stay network-bound (Fig. 7's regime), with a
//!   pool-class device they collapse together.

use crate::config::TestbedConfig;
use crate::sweep;
use crate::testbed::Testbed;
use serde::{Deserialize, Serialize};
use thymesim_fabric::{shared_link, SharedLink};
use thymesim_mem::{shared_dram, DramConfig, SharedDram};
use thymesim_net::{LinkConfig, TreeConfig, TreeTopology};
use thymesim_sim::{run_processes, Process, Step, Time};
use thymesim_workloads::stream::{StreamArrays, StreamConfig, StreamProcess};

/// Several independent borrower–lender pairs advancing on one timeline.
pub struct MultiPair {
    pub testbeds: Vec<Testbed>,
}

impl MultiPair {
    pub fn len(&self) -> usize {
        self.testbeds.len()
    }
    pub fn is_empty(&self) -> bool {
        self.testbeds.is_empty()
    }
}

/// A STREAM instance bound to one pair.
struct PairStream {
    idx: usize,
    p: StreamProcess,
}

impl Process<MultiPair> for PairStream {
    fn next_time(&self) -> Time {
        self.p.next_time()
    }
    fn step(&mut self, shared: &mut MultiPair) -> Step {
        self.p.step_on(&mut shared.testbeds[self.idx].borrower)
    }
}

fn run_pairs(mut pairs: MultiPair, stream: &StreamConfig) -> (MultiPair, Vec<StreamProcess>) {
    let mut procs: Vec<PairStream> = Vec::with_capacity(pairs.testbeds.len());
    for idx in 0..pairs.testbeds.len() {
        let tb = &mut pairs.testbeds[idx];
        let arrays = StreamArrays::alloc(&mut tb.remote_arena, stream.elements);
        arrays.init(&mut tb.borrower);
        let start = tb.attach.ready_at;
        procs.push(PairStream {
            idx,
            p: StreamProcess::new(*stream, arrays, start),
        });
    }
    let stats = run_processes(&mut procs, &mut pairs, Time::NEVER);
    assert_eq!(stats.finished, procs.len(), "pairs did not finish");
    (pairs, procs.into_iter().map(|ps| ps.p).collect())
}

// ---------------------------------------------------------------------------
// E11: switched-fabric congestion
// ---------------------------------------------------------------------------

/// One congestion-sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CongestionPoint {
    /// Total pairs sharing the fabric segment (1 = uncongested).
    pub pairs: usize,
    /// Foreground pair's mean remote latency.
    pub fg_latency_us: f64,
    pub fg_p99_us: f64,
    pub fg_bandwidth_gib_s: f64,
}

/// Build `n` pairs whose NIC traffic shares one fabric segment.
pub fn build_congested_pairs(base: &TestbedConfig, uplink: LinkConfig, n: usize) -> MultiPair {
    assert!(n >= 1);
    let up: SharedLink = shared_link(uplink);
    let down: SharedLink = shared_link(uplink);
    let testbeds = (0..n)
        .map(|_| {
            let mut tb = Testbed::build(base).expect("pair attach");
            tb.borrower
                .remote_mut()
                .set_shared_fabric(SharedLink::clone(&up), SharedLink::clone(&down));
            tb
        })
        .collect();
    MultiPair { testbeds }
}

/// Sweep the number of pairs contending for the shared segment.
pub fn congestion_sweep(
    base: &TestbedConfig,
    stream: &StreamConfig,
    uplink: LinkConfig,
    counts: &[usize],
) -> Vec<CongestionPoint> {
    #[derive(Clone, Debug, Serialize)]
    struct Point {
        pairs: usize,
        uplink: LinkConfig,
        cfg: TestbedConfig,
        stream: StreamConfig,
    }
    let grid: Vec<Point> = counts
        .iter()
        .map(|&pairs| Point {
            pairs,
            uplink,
            cfg: base.clone(),
            stream: *stream,
        })
        .collect();
    sweep::run("beyond/congestion", &grid, |_ctx, pt| {
        let pairs = build_congested_pairs(&pt.cfg, pt.uplink, pt.pairs);
        let (pairs, procs) = run_pairs(pairs, &pt.stream);
        let fg = &pairs.testbeds[0];
        let lat = &fg.borrower.remote().stats.read_latency;
        CongestionPoint {
            pairs: pt.pairs,
            fg_latency_us: lat.mean() / 1e6,
            fg_p99_us: lat.p99() as f64 / 1e6,
            fg_bandwidth_gib_s: procs[0].mean_bandwidth_gib_s(),
        }
    })
}

/// How well constant injection emulates real congestion.
#[derive(Clone, Debug, Serialize)]
pub struct EmulationReport {
    /// The congested measurement being emulated.
    pub congested: CongestionPoint,
    /// PERIOD chosen so the injected mean latency matches.
    pub matched_period: u64,
    pub injected_latency_us: f64,
    pub injected_p99_us: f64,
    pub injected_bandwidth_gib_s: f64,
    /// Relative mean-latency matching error (should be small).
    pub mean_error: f64,
    /// p99/mean under congestion vs under constant injection: constant
    /// injection's known blind spot (§V) is the tail.
    pub congested_tail_ratio: f64,
    pub injected_tail_ratio: f64,
}

/// Run `pairs` congested pairs, then find the constant-injection PERIOD
/// whose mean latency matches the foreground pair's and compare.
pub fn emulation_fidelity(
    base: &TestbedConfig,
    stream: &StreamConfig,
    uplink: LinkConfig,
    pairs: usize,
) -> EmulationReport {
    let sweep = congestion_sweep(base, stream, uplink, &[pairs]);
    let congested = sweep.into_iter().next().expect("one point");

    // Binary-search PERIOD for a matching mean latency. Attach at the
    // vanilla setting and program the PERIOD register afterwards, so even
    // extreme candidate values can be probed. The search is inherently
    // sequential, but each probe is a single-point sweep so candidate
    // PERIODs hit the memoization cache on re-runs.
    #[derive(Clone, Debug, Serialize)]
    struct Probe {
        period: u64,
        cfg: TestbedConfig,
        stream: StreamConfig,
    }
    let measure = |period: u64| -> (f64, f64, f64) {
        let probe = Probe {
            period,
            cfg: base.clone(),
            stream: *stream,
        };
        let mut out = sweep::run("beyond/emulation-probe", &[probe], |_ctx, pt| {
            let mut tb = Testbed::build(&pt.cfg).expect("attach");
            tb.borrower
                .remote_mut()
                .set_delay(thymesim_fabric::DelaySpec::Period(pt.period));
            let report =
                crate::runners::run_stream(&mut tb, &pt.stream, crate::runners::Placement::Remote);
            let lat = &tb.borrower.remote().stats.read_latency;
            (
                lat.mean() / 1e6,
                lat.p99() as f64 / 1e6,
                report.best_bandwidth_gib_s(),
            )
        });
        out.pop().expect("one probe point")
    };
    let (mut lo, mut hi) = (1u64, 4096u64);
    while lo < hi {
        let mid = lo.midpoint(hi);
        let (mean, _, _) = measure(mid);
        if mean < congested.fg_latency_us {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let matched_period = lo;
    let (injected_latency_us, injected_p99_us, injected_bandwidth_gib_s) = measure(matched_period);

    EmulationReport {
        matched_period,
        injected_latency_us,
        injected_p99_us,
        injected_bandwidth_gib_s,
        mean_error: (injected_latency_us - congested.fg_latency_us).abs() / congested.fg_latency_us,
        congested_tail_ratio: congested.fg_p99_us / congested.fg_latency_us,
        injected_tail_ratio: injected_p99_us / injected_latency_us,
        congested,
    }
}

// ---------------------------------------------------------------------------
// E11b: rack topology — intra-rack vs cross-rack borrowing
// ---------------------------------------------------------------------------

/// Outcome of the rack-topology comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyPoint {
    pub placement: String,
    pub background_pairs: usize,
    pub fg_latency_us: f64,
    pub fg_bandwidth_gib_s: f64,
}

/// One foreground pair borrowing intra-rack vs cross-rack, with
/// `background` cross-rack pairs loading the same uplink. Cross-rack
/// borrowing pays two switch hops *and* shares the oversubscribed uplink
/// — quantifying what "beyond rack-scale" costs relative to the paper's
/// rack-local prototype.
pub fn rack_topology(
    base: &TestbedConfig,
    stream: &StreamConfig,
    tree: TreeConfig,
    background: usize,
) -> Vec<TopologyPoint> {
    #[derive(Clone, Debug, Serialize)]
    struct Point {
        placement: String,
        cross: bool,
        background: usize,
        tree: TreeConfig,
        cfg: TestbedConfig,
        stream: StreamConfig,
    }
    let grid: Vec<Point> = [("intra-rack", false), ("cross-rack", true)]
        .iter()
        .map(|&(label, cross)| Point {
            placement: label.into(),
            cross,
            background,
            tree,
            cfg: base.clone(),
            stream: *stream,
        })
        .collect();
    sweep::run("beyond/rack-topology", &grid, |_ctx, pt| {
        let topo = TreeTopology::new(pt.tree);
        let mut testbeds = Vec::new();
        // Foreground pair: rack 0 borrower; lender in rack 0 or rack 1.
        {
            let mut tb = Testbed::build(&pt.cfg).expect("fg attach");
            let (fwd, rev) = topo.route_pair(0, if pt.cross { 1 } else { 0 });
            tb.borrower
                .remote_mut()
                .set_route(fwd.hops, rev.hops, fwd.hop_latency);
            testbeds.push(tb);
        }
        // Background pairs always borrow cross-rack from rack 0 to rack 1.
        for _ in 0..pt.background {
            let mut tb = Testbed::build(&pt.cfg).expect("bg attach");
            let (fwd, rev) = topo.route_pair(0, 1);
            tb.borrower
                .remote_mut()
                .set_route(fwd.hops, rev.hops, fwd.hop_latency);
            testbeds.push(tb);
        }
        let (pairs, procs) = run_pairs(MultiPair { testbeds }, &pt.stream);
        let fg = &pairs.testbeds[0];
        TopologyPoint {
            placement: pt.placement.clone(),
            background_pairs: pt.background,
            fg_latency_us: fg.borrower.remote().stats.read_latency.mean() / 1e6,
            fg_bandwidth_gib_s: procs[0].mean_bandwidth_gib_s(),
        }
    })
}

// ---------------------------------------------------------------------------
// E12: memory pooling
// ---------------------------------------------------------------------------

/// One pooling-sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PoolingPoint {
    pub borrowers: usize,
    /// Pool/lender bus bandwidth in GB/s.
    pub pool_gb_s: f64,
    /// Mean per-borrower STREAM bandwidth.
    pub per_borrower_gib_s: f64,
    /// Mean queueing delay at the pool's bus.
    pub pool_queue_us: f64,
}

/// `n` borrowers, each with its own NIC/link, all hammering one pool.
pub fn build_pooled_borrowers(
    base: &TestbedConfig,
    pool_bw_bytes_per_sec: f64,
    n: usize,
) -> (MultiPair, SharedDram) {
    assert!(n >= 1);
    let pool: SharedDram = shared_dram(DramConfig {
        bandwidth_bytes_per_sec: pool_bw_bytes_per_sec,
        ..base.lender.dram
    });
    let testbeds = (0..n)
        .map(|_| {
            Testbed::build_with_lender_bus(base, Time::ZERO, SharedDram::clone(&pool))
                .expect("borrower attach")
        })
        .collect();
    (MultiPair { testbeds }, pool)
}

/// Sweep borrower count at a given pool bandwidth.
pub fn pooling_sweep(
    base: &TestbedConfig,
    stream: &StreamConfig,
    pool_gb_s: f64,
    counts: &[usize],
) -> Vec<PoolingPoint> {
    #[derive(Clone, Debug, Serialize)]
    struct Point {
        borrowers: usize,
        pool_gb_s: f64,
        cfg: TestbedConfig,
        stream: StreamConfig,
    }
    let grid: Vec<Point> = counts
        .iter()
        .map(|&borrowers| Point {
            borrowers,
            pool_gb_s,
            cfg: base.clone(),
            stream: *stream,
        })
        .collect();
    sweep::run("beyond/pooling", &grid, |_ctx, pt| {
        let (pairs, pool) = build_pooled_borrowers(&pt.cfg, pt.pool_gb_s * 1e9, pt.borrowers);
        let (_pairs, procs) = run_pairs(pairs, &pt.stream);
        let agg: f64 = procs.iter().map(|p| p.mean_bandwidth_gib_s()).sum();
        let queue_us = pool.borrow().mean_queue_wait().as_us_f64();
        PoolingPoint {
            borrowers: pt.borrowers,
            pool_gb_s: pt.pool_gb_s,
            per_borrower_gib_s: agg / pt.borrowers as f64,
            pool_queue_us: queue_us,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_stream() -> StreamConfig {
        let mut s = StreamConfig::tiny();
        s.elements = 16_384;
        s
    }

    #[test]
    fn congestion_grows_with_pairs() {
        let points = congestion_sweep(
            &TestbedConfig::tiny(),
            &quick_stream(),
            LinkConfig::copper_100g(),
            &[1, 4],
        );
        assert!(
            points[1].fg_latency_us > points[0].fg_latency_us * 2.0,
            "4 pairs should congest the shared segment: {points:?}"
        );
        assert!(points[1].fg_bandwidth_gib_s < points[0].fg_bandwidth_gib_s * 0.5);
    }

    #[test]
    fn constant_injection_matches_congested_mean() {
        let r = emulation_fidelity(
            &TestbedConfig::tiny(),
            &quick_stream(),
            LinkConfig::copper_100g(),
            4,
        );
        assert!(
            r.mean_error < 0.25,
            "PERIOD={} should match the congested mean within 25%: {r:?}",
            r.matched_period
        );
        assert!(r.matched_period > 1, "congestion must map to a real PERIOD");
    }

    #[test]
    fn cross_rack_borrowing_costs_more_under_load() {
        let tree = TreeConfig {
            racks: 2,
            ..TreeConfig::default()
        };
        let points = rack_topology(&TestbedConfig::tiny(), &quick_stream(), tree, 3);
        let intra = points.iter().find(|p| p.placement == "intra-rack").unwrap();
        let cross = points.iter().find(|p| p.placement == "cross-rack").unwrap();
        // The intra-rack pair dodges the loaded uplink: lower latency,
        // higher bandwidth.
        assert!(
            cross.fg_latency_us > intra.fg_latency_us * 1.5,
            "cross-rack should pay for the shared uplink: {points:?}"
        );
        assert!(cross.fg_bandwidth_gib_s < intra.fg_bandwidth_gib_s);
    }

    #[test]
    fn pooling_shifts_the_bottleneck() {
        // Server-class bus: borrowers stay network-bound (per-borrower BW
        // roughly flat, like Fig. 7). Pool-class bus: they collapse.
        let base = TestbedConfig::tiny();
        let s = quick_stream();
        let server = pooling_sweep(&base, &s, 140.0, &[1, 4]);
        let pool = pooling_sweep(&base, &s, 8.0, &[1, 4]);
        let server_drop = 1.0 - server[1].per_borrower_gib_s / server[0].per_borrower_gib_s;
        let pool_drop = 1.0 - pool[1].per_borrower_gib_s / pool[0].per_borrower_gib_s;
        assert!(
            server_drop < 0.35,
            "server-class bus should stay ~network-bound: dropped {:.0}%",
            server_drop * 100.0
        );
        assert!(
            pool_drop > 0.5,
            "pool-class bus should become the bottleneck: dropped {:.0}%",
            pool_drop * 100.0
        );
        assert!(
            pool[1].pool_queue_us > server[1].pool_queue_us * 2.0,
            "queueing must concentrate at the pool"
        );
    }
}
