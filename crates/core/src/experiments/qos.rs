//! E13 — a page-migration QoS mechanism built from the paper's §IV-D
//! insight: "applications with higher sensitivity to remote memory access
//! latency can benefit from additional resource allocation such as …
//! page migration to local memory".
//!
//! The study profiles Graph500's per-array access density (accesses per
//! byte), lets a greedy migrator fill a local-memory budget with the
//! densest arrays, and measures the JCT improvement under delay —
//! exactly the decision an OS-level hot-page migrator converges to,
//! evaluated at object granularity.

use crate::config::TestbedConfig;
use crate::runners::GraphKernel;
use crate::sweep;
use crate::testbed::Testbed;
use serde::Serialize;
use thymesim_fabric::DelaySpec;
use thymesim_mem::SimVec;
use thymesim_sim::Time;
use thymesim_workloads::graph500::{self, Graph500Config, GraphArray, GraphPlacement};

/// Estimated traffic profile of one CSR array for a BFS/SSSP run.
#[derive(Clone, Debug, Serialize)]
pub struct ArrayProfile {
    pub array: String,
    pub bytes: u64,
    /// Estimated accesses over the run.
    pub accesses: u64,
    /// Expected to stay LLC-resident (no sustained remote traffic)?
    pub cache_resident: bool,
    /// Expected *remote misses* per byte — the migration figure of
    /// merit. Cache-resident arrays score ~0: they are fetched once and
    /// served from the LLC thereafter, so migrating them buys nothing.
    pub density: f64,
}

/// Estimate per-array remote-miss density from the graph shape and the
/// LLC size (the same arithmetic an OS extracts from page-heat counters
/// minus the LLC's filtering).
pub fn profile_arrays(
    cfg: &Graph500Config,
    kernel: GraphKernel,
    llc_bytes: u64,
) -> Vec<ArrayProfile> {
    let n = cfg.vertices();
    let m2 = cfg.edges() * 2; // directed CSR entries
    let roots = cfg.roots as u64;
    // Per root: every reached vertex reads its row bounds (2 accesses);
    // every directed edge is scanned once (BFS) or ~1.3x (SSSP
    // re-relaxation); the output array is touched 1-2x per edge.
    let relax_factor = match kernel {
        GraphKernel::Bfs => 1.0,
        GraphKernel::Sssp => 1.3,
    };
    let mk = |array: GraphArray, bytes: u64, accesses: f64| {
        let accesses = accesses as u64;
        // An array well under the LLC's capacity is fetched once (cold
        // misses) and then served on-chip.
        let cache_resident = bytes * 2 <= llc_bytes;
        let density = if cache_resident {
            // Cold misses only: one per line over the whole run.
            (bytes as f64 / 128.0) / bytes.max(1) as f64
        } else {
            accesses as f64 / bytes.max(1) as f64
        };
        ArrayProfile {
            array: format!("{array:?}"),
            bytes,
            accesses,
            cache_resident,
            density,
        }
    };
    let mut out = vec![
        mk(GraphArray::Xadj, (n + 1) * 8, (2 * n * roots) as f64),
        mk(
            GraphArray::Adj,
            m2 * 4,
            m2 as f64 * relax_factor * roots as f64,
        ),
        mk(
            GraphArray::Out,
            n * 4,
            m2 as f64 * 1.5 * relax_factor * roots as f64,
        ),
    ];
    if kernel == GraphKernel::Sssp {
        out.push(mk(
            GraphArray::Weights,
            m2 * 4,
            m2 as f64 * relax_factor * roots as f64,
        ));
    }
    out.sort_by(|a, b| b.density.total_cmp(&a.density));
    out
}

/// Pick the placement a greedy migrator chooses under `local_budget`
/// bytes of spare local memory: densest arrays first.
pub fn plan_migration(
    cfg: &Graph500Config,
    kernel: GraphKernel,
    llc_bytes: u64,
    local_budget: u64,
) -> GraphPlacement {
    let mut placement = GraphPlacement::all_remote();
    let mut budget = local_budget;
    for p in profile_arrays(cfg, kernel, llc_bytes) {
        if p.cache_resident {
            continue; // the LLC already absorbs this array
        }
        if p.bytes <= budget {
            budget -= p.bytes;
            match p.array.as_str() {
                "Xadj" => placement.xadj_remote = false,
                "Adj" => placement.adj_remote = false,
                "Weights" => placement.weights_remote = false,
                "Out" => placement.out_remote = false,
                _ => unreachable!(),
            }
        }
    }
    placement
}

/// One policy's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct QosPoint {
    pub policy: String,
    pub local_bytes: u64,
    pub jct_ms: f64,
    /// Speedup over the all-remote baseline.
    pub speedup: f64,
}

fn run_placed(
    base: &TestbedConfig,
    gcfg: &Graph500Config,
    kernel: GraphKernel,
    period: u64,
    placement: GraphPlacement,
) -> (f64, u64) {
    let mut tb = Testbed::build(base).expect("attach");
    tb.borrower
        .remote_mut()
        .set_delay(DelaySpec::Period(period));
    let Testbed {
        borrower,
        local_arena,
        remote_arena,
        ..
    } = &mut tb;
    let g = graph500::build_csr_placed(gcfg, borrower, local_arena, remote_arena, placement);
    let out: SimVec<u32> = if placement.out_remote {
        remote_arena.alloc_vec(g.n)
    } else {
        local_arena.alloc_vec(g.n)
    };
    let report = match kernel {
        GraphKernel::Bfs => graph500::run_bfs_benchmark(gcfg, borrower, &g, &out, false),
        GraphKernel::Sssp => graph500::run_sssp_benchmark(gcfg, borrower, &g, &out, false),
    };
    let local_bytes = [
        (!placement.xadj_remote).then_some((g.n + 1) * 8),
        (!placement.adj_remote).then_some(g.m2 * 4),
        (!placement.weights_remote).then_some(g.m2 * 4),
        (!placement.out_remote).then_some(g.n * 4),
    ]
    .into_iter()
    .flatten()
    .sum();
    let _ = Time::ZERO;
    (report.total_time.as_ms_f64(), local_bytes)
}

/// Compare all-remote, migrated (budgeted), and all-local placements
/// under an injected delay.
pub fn page_migration_study(
    base: &TestbedConfig,
    gcfg: &Graph500Config,
    kernel: GraphKernel,
    period: u64,
    local_budget: u64,
) -> Vec<QosPoint> {
    #[derive(Clone, Debug, Serialize)]
    struct Point {
        policy: String,
        period: u64,
        placement: GraphPlacement,
        cfg: TestbedConfig,
        graph: Graph500Config,
        kernel: GraphKernel,
    }
    let llc = base.borrower.cache.capacity_bytes();
    let migrated = plan_migration(gcfg, kernel, llc, local_budget);
    let mk = |policy: String, placement: GraphPlacement| Point {
        policy,
        period,
        placement,
        cfg: base.clone(),
        graph: *gcfg,
        kernel,
    };
    let grid = vec![
        mk("all-remote".into(), GraphPlacement::all_remote()),
        mk(
            format!("migrated (budget {} MiB)", local_budget >> 20),
            migrated,
        ),
        mk("all-local".into(), GraphPlacement::all_local()),
    ];
    let cells: Vec<(f64, u64)> = sweep::run("qos/page-migration", &grid, |_ctx, pt| {
        run_placed(&pt.cfg, &pt.graph, pt.kernel, pt.period, pt.placement)
    });
    let remote_ms = cells[0].0;
    grid.iter()
        .zip(&cells)
        .map(|(pt, &(jct_ms, local_bytes))| QosPoint {
            policy: pt.policy.clone(),
            local_bytes,
            jct_ms,
            speedup: remote_ms / jct_ms,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gcfg() -> Graph500Config {
        Graph500Config {
            scale: 12,
            edgefactor: 16,
            roots: 2,
            cores: 4,
            ..Graph500Config::tiny()
        }
    }

    const TINY_LLC: u64 = 256 << 10;

    #[test]
    fn profile_separates_resident_from_thrashing() {
        let profiles = profile_arrays(&gcfg(), GraphKernel::Bfs, TINY_LLC);
        // At scale 12 / 256 KiB LLC: parent (16 KiB) and xadj (32 KiB)
        // are resident; the 512 KiB adjacency array thrashes and is the
        // only array whose remote traffic migration can remove.
        let adj = profiles.iter().find(|p| p.array == "Adj").unwrap();
        let out = profiles.iter().find(|p| p.array == "Out").unwrap();
        assert!(!adj.cache_resident);
        assert!(out.cache_resident);
        assert!(adj.density > out.density * 10.0);
        assert_eq!(profiles[0].array, "Adj", "Adj must top the ranking");
    }

    #[test]
    fn migration_plan_respects_budget() {
        let g = gcfg();
        // Budget below the adjacency array's size: nothing worth moving.
        let small = plan_migration(&g, GraphKernel::Bfs, TINY_LLC, 64 << 10);
        assert!(small.adj_remote && small.out_remote && small.xadj_remote);
        // Budget covering Adj: it migrates, the resident arrays stay put.
        let big = plan_migration(&g, GraphKernel::Bfs, TINY_LLC, 1 << 20);
        assert!(!big.adj_remote, "Adj fits and should migrate");
        assert!(big.out_remote, "resident arrays are not worth a slot");
    }

    #[test]
    fn zero_budget_migrates_nothing() {
        let plan = plan_migration(&gcfg(), GraphKernel::Bfs, TINY_LLC, 0);
        assert!(plan.out_remote && plan.xadj_remote && plan.adj_remote);
    }

    #[test]
    fn migration_recovers_performance_under_delay() {
        let g = gcfg();
        let budget = 1 << 20; // fits the thrashing adjacency array
        let points =
            page_migration_study(&TestbedConfig::tiny(), &g, GraphKernel::Bfs, 400, budget);
        let remote = &points[0];
        let migrated = &points[1];
        let local = &points[2];
        assert!(
            migrated.speedup > 3.0,
            "migrating the thrashing array should recover most of the loss: {points:?}"
        );
        assert!(
            local.speedup >= migrated.speedup * 0.95,
            "all-local is the upper bound: {points:?}"
        );
        assert!(remote.jct_ms > local.jct_ms);
    }
}
